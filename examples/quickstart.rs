//! Quickstart: sparsify a graph once, then keep the sparsifier fresh under
//! a stream of edge insertions with inGRASS.
//!
//! Run with: `cargo run --release --example quickstart`

use ingrass_repro::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. A workload graph: a 64×64 grid with varied conductances.
    // ------------------------------------------------------------------
    let g0 = grid_2d(64, 64, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 1);
    println!(
        "original graph G(0): {} nodes, {} edges",
        g0.num_nodes(),
        g0.num_edges()
    );

    // ------------------------------------------------------------------
    // 2. Initial sparsifier H(0) via the GRASS-style baseline: spanning
    //    tree + 10 % of the off-tree edges ranked by spectral distortion.
    // ------------------------------------------------------------------
    let h0 = GrassSparsifier::default().by_offtree_density(&g0, 0.10)?;
    let kappa0 = estimate_condition_number(&g0, &h0.graph, &ConditionOptions::default())?.kappa;
    println!(
        "initial sparsifier H(0): {} edges, κ(L_G, L_H) = {kappa0:.1}",
        h0.graph.num_edges()
    );

    // ------------------------------------------------------------------
    // 3. inGRASS setup phase (once): resistance embedding + multilevel
    //    low-resistance-diameter decomposition.
    // ------------------------------------------------------------------
    let t = Instant::now();
    let mut engine = InGrassEngine::setup(&h0.graph, &SetupConfig::default())?;
    println!(
        "setup: {} LRD levels in {:.1} ms",
        engine.setup_report().levels,
        t.elapsed().as_secs_f64() * 1e3
    );

    // ------------------------------------------------------------------
    // 4. Stream new edges in ten batches; inGRASS filters each batch in
    //    O(log N) per edge against the target condition number.
    // ------------------------------------------------------------------
    let stream = InsertionStream::paper_default(&g0, 7);
    let update_cfg = UpdateConfig {
        target_condition: kappa0,
        ..Default::default()
    };
    let mut g = DynGraph::from_graph(&g0);
    let t = Instant::now();
    let mut totals = (0usize, 0usize, 0usize);
    for batch in stream.batches() {
        for &(u, v, w) in batch {
            g.add_edge(u.into(), v.into(), w)?;
        }
        let r = engine.insert_batch(batch, &update_cfg)?;
        totals.0 += r.included;
        totals.1 += r.merged;
        totals.2 += r.redistributed;
    }
    let update_time = t.elapsed();
    println!(
        "updates: {} new edges in {:.2} ms — {} included, {} merged, {} redistributed",
        stream.total_edges(),
        update_time.as_secs_f64() * 1e3,
        totals.0,
        totals.1,
        totals.2
    );

    // ------------------------------------------------------------------
    // 5. Quality check: condition number of the maintained sparsifier
    //    against the *updated* graph.
    // ------------------------------------------------------------------
    let g_now = g.to_graph();
    let h_now = engine.sparsifier_graph();
    let kappa_now = estimate_condition_number(&g_now, &h_now, &ConditionOptions::default())?.kappa;
    let d = SparsifierDensity::new(g_now.num_nodes()).report_graphs(&h_now, &g0);
    println!(
        "after stream: H has {} edges (off-tree density {:.1} %), κ = {kappa_now:.1}",
        h_now.num_edges(),
        100.0 * d.off_tree
    );
    println!(
        "keeping every new edge would have raised the off-tree density to {:.1} %",
        100.0
            * SparsifierDensity::new(g_now.num_nodes())
                .report(h0.graph.num_edges() + stream.total_edges(), g0.num_edges())
                .off_tree
    );
    Ok(())
}
