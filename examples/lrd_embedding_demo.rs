//! Reproduces the idea of paper **Fig. 2**: the multilevel LRD
//! decomposition assigns every node a cluster index per level; the vector
//! of indices is the node's resistance embedding, and the resistance
//! between two nodes is bounded by the diameter of the first cluster that
//! contains both.
//!
//! Run with: `cargo run --release --example lrd_embedding_demo`

use ingrass_repro::core::LrdHierarchy;
use ingrass_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small sparsifier-like graph: two tight 7-node communities bridged
    // by a single weak edge (mirrors the figure's two-lobe layout).
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    for base in [0usize, 7] {
        for i in 0..7 {
            // ring + chords: tightly coupled community
            edges.push((base + i, base + (i + 1) % 7, 4.0));
            if i % 2 == 0 {
                edges.push((base + i, base + (i + 2) % 7, 2.0));
            }
        }
    }
    edges.push((5, 9, 0.25)); // the weak bridge
    let h0 = Graph::from_edges(14, &edges)?;

    // Exact per-edge resistances make the demo deterministic and sharp.
    let exact = ExactResistance::dense(&h0)?;
    let r: Vec<f64> = exact.edge_resistances(&h0);
    let hierarchy = LrdHierarchy::build(&h0, &r, None, 4.0, 16)?;

    println!(
        "LRD decomposition of a 14-node sparsifier — {} levels\n",
        hierarchy.num_levels()
    );
    print!("node |");
    for l in 0..hierarchy.num_levels() {
        print!(" L{l} ");
    }
    println!("  ← embedding vector (cluster index per level)");
    for u in 0..14usize {
        let v = hierarchy.embedding_vector(u.into());
        print!("{u:>4} |");
        for c in &v {
            print!("{c:>3} ");
        }
        println!();
    }

    println!("\nper-level cluster stats:");
    for (l, lvl) in hierarchy.levels().iter().enumerate() {
        println!(
            "  level {l}: {:>2} clusters, max size {:>2}, diameter budget {:.3}",
            lvl.num_clusters,
            lvl.max_cluster_size(),
            lvl.threshold
        );
    }

    // The paper's example query: nodes from opposite lobes merge only at
    // the top; the resistance bound is that cluster's diameter.
    let (u, v) = (NodeId::new(2), NodeId::new(11));
    let level = hierarchy.first_common_level(u, v).unwrap();
    println!(
        "\nnodes {u} and {v} first share a cluster at level {level}; \
         resistance bound {:.3} vs exact {:.3}",
        hierarchy.resistance_bound(u, v),
        exact.resistance(u, v)
    );
    let (a, b) = (NodeId::new(2), NodeId::new(4));
    println!(
        "nodes {a} and {b} (same lobe) merge at level {}; bound {:.3} vs exact {:.3}",
        hierarchy.first_common_level(a, b).unwrap(),
        hierarchy.resistance_bound(a, b),
        exact.resistance(a, b)
    );
    Ok(())
}
