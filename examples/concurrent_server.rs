//! A concurrent Laplacian server: one writer churns the graph while reader
//! threads keep serving solves and resistance queries off immutable
//! snapshots — the snapshot-isolated serving layer end to end.
//!
//! Topology:
//!
//! * the **writer** (main thread) replays a churn stream through a
//!   `SnapshotEngine`; every state-changing batch publishes a fresh
//!   epoch-tagged `SparsifierSnapshot`, and the writer pairs it with the
//!   matching original-graph Laplacian on a shared "front desk";
//! * three **reader threads** grab whatever snapshot/Laplacian pair is
//!   current, answer an exact effective-resistance query straight off the
//!   snapshot's factor, and submit a potential-solve request to a shared
//!   `ConcurrentSolveService`;
//! * the writer **drains** the service between batches: requests that
//!   arrived against the same snapshot were admission-batched into one
//!   group, requests against an older snapshot are still answered — with
//!   the answer tagged by the epoch/version it was served from.
//!
//! Readers never block the writer (snapshot loads are an `Arc` clone under
//! a briefly-held lock), and the writer never invalidates a reader's view
//! (old snapshots live until their last holder drops them).
//!
//! Run with: `cargo run --release --example concurrent_server`

use ingrass_repro::churn_to_update_ops;
use ingrass_repro::linalg::CsrMatrix;
use ingrass_repro::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The snapshot/Laplacian pair readers serve from: updated atomically (one
/// lock) by the writer so a reader can never pair a snapshot with the
/// wrong epoch's Laplacian.
struct FrontDesk {
    snapshot: Arc<SparsifierSnapshot>,
    laplacian: Arc<CsrMatrix>,
}

const READERS: usize = 3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g0 = power_grid(&PowerGridConfig {
        width: 30,
        height: 30,
        seed: 42,
        ..Default::default()
    });
    let n = g0.num_nodes();
    println!(
        "concurrent_server: |V| = {n}, |E| = {} — 1 writer, {READERS} readers\n",
        g0.num_edges()
    );

    // Solve-grade sparsifier; an eager drift policy makes the demo show a
    // mid-stream re-setup (epoch bump) without minutes of churn.
    let h0 = GrassSparsifier::default().by_offtree_density(&g0, 0.30)?;
    let mut engine = SnapshotEngine::setup(
        &h0.graph,
        &SetupConfig::default().with_drift(DriftPolicy {
            max_deleted_weight_fraction: 0.004,
            ..Default::default()
        }),
    )?;
    let service = ConcurrentSolveService::new(SolveConfig::default());
    let desk = Mutex::new(FrontDesk {
        snapshot: engine.snapshot(),
        laplacian: Arc::new(g0.laplacian()),
    });

    let churn = ChurnStream::paper_default(&g0, 42 ^ 0xc4a2);
    let mut g_live = DynGraph::from_graph(&g0);
    let done = AtomicBool::new(false);
    let queries = AtomicUsize::new(0);

    std::thread::scope(|s| -> Result<(), Box<dyn std::error::Error>> {
        // Readers: resistance queries answered inline off the snapshot's
        // exact factor; potential solves submitted for the next drain.
        for reader in 0..READERS {
            let (service, desk, done, queries) = (&service, &desk, &done, &queries);
            s.spawn(move || {
                let mut k = 0u64;
                while !done.load(Ordering::Acquire) {
                    // Client think-time + admission throttle: keep the
                    // queue bounded so the demo's drains stay readable
                    // (and the writer isn't starved on small hosts).
                    std::thread::sleep(std::time::Duration::from_micros(500));
                    if service.pending() >= READERS * 8 {
                        std::thread::yield_now();
                        continue;
                    }
                    let (snap, lap) = {
                        let d = desk.lock().expect("front desk");
                        (Arc::clone(&d.snapshot), Arc::clone(&d.laplacian))
                    };
                    assert!(snap.verify_checksum(), "torn snapshot observed");
                    let u = (ingrass_par::derive_seed(reader as u64, k) % n as u64) as usize;
                    let mut v =
                        (ingrass_par::derive_seed(reader as u64, k + 1) % n as u64) as usize;
                    if v == u {
                        v = (v + 1) % n;
                    }
                    // Exact within the reader's frozen view, no iteration.
                    let r = snap.effective_resistance(u.into(), v.into());
                    assert!(r.is_finite() && r >= 0.0);
                    queries.fetch_add(1, Ordering::Relaxed);

                    let mut b = vec![0.0; n];
                    b[u] = 1.0;
                    b[v] = -1.0;
                    service.submit(&snap, &lap, b).expect("submit");
                    k += 2;
                    std::thread::yield_now();
                }
            });
        }

        // Writer: churn → publish → drain, batch by batch.
        println!("batch  ops  epoch  ver  publish   drained  groups  max-iters");
        for (i, batch) in churn.batches().iter().enumerate() {
            let ops = churn_to_update_ops(batch);
            ingrass_repro::core::replay_ops(&mut g_live, &ops)?;
            let report = engine.apply_batch(&ops, &UpdateConfig::default())?;
            let publish = report.publish.expect("churn batches are non-empty");
            let fresh_lap = Arc::new(g_live.to_graph().laplacian());
            {
                // Swap both halves under one short lock so a reader can
                // never pair a snapshot with the wrong epoch's Laplacian.
                let mut d = desk.lock().expect("front desk");
                d.snapshot = engine.snapshot();
                d.laplacian = fresh_lap;
            }

            let round = service.drain();
            assert!(round.all_converged(), "a served solve failed to converge");
            let max_iters = round
                .served
                .iter()
                .map(|r| r.result.iterations)
                .max()
                .unwrap_or(0);
            println!(
                "{:>5} {:>4} {:>6} {:>4} {:>8} {:>8} {:>7} {:>10}{}",
                i,
                ops.len(),
                publish.epoch,
                publish.version,
                format!("{:.2} ms", publish.publish_seconds * 1e3),
                round.served.len(),
                round.groups,
                max_iters,
                if report.update.resetup.is_some() {
                    "   ← drift re-setup (new epoch)"
                } else {
                    ""
                },
            );
        }
        done.store(true, Ordering::Release);
        Ok(())
    })?;

    // Stragglers submitted after the last drain.
    let tail = service.drain();
    assert!(tail.all_converged());

    let stats = service.stats();
    println!(
        "\nserved {} solves in {} drain(s) over {} admission group(s); {} PCG iterations total",
        stats.served, stats.drains, stats.groups_served, stats.iterations_total
    );
    println!(
        "drain latency: mean {:.2} ms, max {:.2} ms; {} resistance queries answered inline",
        stats.drain_latency.mean_seconds() * 1e3,
        stats.drain_latency.max_seconds() * 1e3,
        queries.load(Ordering::Relaxed),
    );
    println!(
        "writer: {} snapshots published, engine at epoch {} ({} drift re-setup(s)), version {}",
        engine.publishes(),
        engine.engine().epoch(),
        engine.engine().resetups(),
        engine.engine().version()
    );
    Ok(())
}
