//! Reproduces paper **Fig. 3**: three new edges arrive and the filtering
//! level decides their fate — one is *merged* into an existing edge between
//! the same cluster pair, one is *redistributed* inside its cluster, and
//! one is *included* because no sparsifier edge connects its clusters.
//!
//! Run with: `cargo run --release --example edge_filtering_demo`

use ingrass_repro::core::EdgeOutcome;
use ingrass_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three 5-node communities in a row, bridged by single edges:
    //   cluster A = 0..5, B = 5..10, C = 10..15; bridges 4-5 and 9-10.
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    for base in [0usize, 5, 10] {
        for i in 0..5 {
            edges.push((base + i, base + (i + 1) % 5, 5.0));
        }
    }
    edges.push((4, 5, 0.5)); // A—B bridge
    edges.push((9, 10, 0.5)); // B—C bridge
    let h0 = Graph::from_edges(15, &edges)?;

    let mut engine = InGrassEngine::setup(
        &h0,
        &SetupConfig::default().with_resistance(ResistanceBackend::LocalOnly),
    )?;

    // Pick a target condition number whose filtering level groups each
    // community into one cluster (max cluster size 5 ⇒ C = 10 works).
    let cfg = UpdateConfig {
        target_condition: 10.0,
        ..Default::default()
    };
    let level = engine.filtering_level(cfg.target_condition);
    let lvl = engine.hierarchy().level(level);
    println!(
        "filtering level {level}: {} clusters (sizes up to {})",
        lvl.num_clusters,
        lvl.max_cluster_size()
    );
    for u in [0usize, 4, 5, 9, 10, 14] {
        println!("  node {u:>2} → cluster {}", lvl.cluster_of[u]);
    }

    // The three arrivals of Fig. 3:
    let candidates = [
        (3, 6, 1.0, "A↔B again — an A–B edge already exists"),
        (6, 8, 1.0, "inside B — endpoints share a cluster"),
        (
            2,
            12,
            1.0,
            "A↔C — no sparsifier edge between those clusters",
        ),
    ];
    println!("\nprocessing three new edges (distortion-ranked):");
    for (u, v, w, why) in candidates {
        let distortion = engine.estimate_distortion(u.into(), v.into(), w);
        let before_edges = engine.sparsifier().num_edges();
        let before_weight = engine.sparsifier().total_weight();
        let r = engine.insert_batch(&[(u, v, w)], &cfg)?;
        let outcome = if r.included == 1 {
            EdgeOutcome::Included
        } else if r.merged == 1 {
            EdgeOutcome::Merged
        } else {
            EdgeOutcome::Redistributed
        };
        println!(
            "  ({u:>2},{v:>2}) w={w}  distortion≈{distortion:.2}  → {outcome:?}  \
             (edges {}→{}, total weight {:.2}→{:.2})  // {why}",
            before_edges,
            engine.sparsifier().num_edges(),
            before_weight,
            engine.sparsifier().total_weight()
        );
    }

    println!(
        "\nresult: sparsifier gained exactly one edge; the other two arrivals \
         were absorbed as weight adjustments, as in paper Fig. 3(b)."
    );
    Ok(())
}
