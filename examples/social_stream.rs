//! Streaming social-network scenario (the abstract's third domain): a
//! heavy-tailed graph accretes friendships over time; the sparsifier that
//! backs downstream spectral analytics (clustering, PageRank solves)
//! updates in O(log N) per new edge.
//!
//! Run with: `cargo run --release --example social_stream`

use ingrass_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g0 = barabasi_albert(&BaConfig {
        nodes: 3000,
        attach: 6,
        weights: WeightModel::Uniform { lo: 0.5, hi: 1.5 },
        seed: 4,
    });
    println!(
        "social graph: {} nodes, {} edges (hub degree {})",
        g0.num_nodes(),
        g0.num_edges(),
        (0..g0.num_nodes())
            .map(|u| g0.degree(u.into()))
            .max()
            .unwrap()
    );

    let h0 = GrassSparsifier::default().by_offtree_density(&g0, 0.10)?;
    let cond_opts = ConditionOptions::default();
    let kappa0 = estimate_condition_number(&g0, &h0.graph, &cond_opts)?.kappa;
    println!("initial sparsifier κ = {kappa0:.1}");

    let mut engine = InGrassEngine::setup(&h0.graph, &SetupConfig::default())?;
    // Heavy-tailed graphs are expanders: every pair of hubs is spectrally
    // close, so very tight targets degenerate to "include everything".
    // Analytics pipelines accept a looser similarity here — target 3×κ0.
    let target = 3.0 * kappa0;
    println!("filtering against target κ = {target:.1}");
    // New friendships: triadic closures (local) + random encounters.
    let stream = InsertionStream::generate(
        &g0,
        &StreamConfig {
            batches: 10,
            edges_per_batch: 200,
            locality: 0.6,
            local_hops: 2,
            seed: 10,
        },
    );

    let mut g = DynGraph::from_graph(&g0);
    let cfg = UpdateConfig {
        target_condition: target,
        ..Default::default()
    };
    for (i, batch) in stream.batches().iter().enumerate() {
        for &(u, v, w) in batch {
            g.add_edge(u.into(), v.into(), w)?;
        }
        let r = engine.insert_batch(batch, &cfg)?;
        println!(
            "batch {:>2}: {:>3} arrivals → {:>3} included / {:>3} merged / {:>3} redistributed ({} µs)",
            i + 1,
            r.batch_size,
            r.included,
            r.merged,
            r.redistributed,
            r.elapsed.as_micros()
        );
    }

    let g_now = g.to_graph();
    let h_now = engine.sparsifier_graph();
    let kappa = estimate_condition_number(&g_now, &h_now, &cond_opts)?.kappa;
    let d = SparsifierDensity::new(g_now.num_nodes()).report_graphs(&h_now, &g0);
    println!(
        "\nfinal: κ = {kappa:.1}, sparsifier keeps {:.1} % of off-tree edges \
         ({} of {} stream edges made it in)",
        100.0 * d.off_tree,
        engine.sparsifier().num_edges() - h0.graph.num_edges(),
        stream.total_edges()
    );
    Ok(())
}
