//! ECO (engineering change order) scenario from the paper's introduction:
//! a chip's power-delivery network receives extra metal straps late in the
//! design flow, and the spectral sparsifier used by the power-grid analyser
//! must follow along *without* re-running sparsification from scratch.
//!
//! Run with: `cargo run --release --example power_grid_eco`

use ingrass_repro::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-layer power grid (G2_circuit class).
    let g0 = power_grid(&PowerGridConfig {
        width: 48,
        height: 48,
        ..Default::default()
    });
    println!(
        "power grid: {} nodes, {} edges",
        g0.num_nodes(),
        g0.num_edges()
    );

    let h0 = GrassSparsifier::default().by_offtree_density(&g0, 0.10)?;
    let cond_opts = ConditionOptions::default();
    let kappa0 = estimate_condition_number(&g0, &h0.graph, &cond_opts)?.kappa;
    println!("initial sparsifier: κ = {kappa0:.1}");

    let mut engine = InGrassEngine::setup(&h0.graph, &SetupConfig::default())?;
    let update_cfg = UpdateConfig {
        target_condition: kappa0,
        ..Default::default()
    };

    // Ten ECO rounds: mostly local strap insertions plus a few long
    // planks across the die.
    let stream = InsertionStream::generate(
        &g0,
        &StreamConfig {
            batches: 10,
            edges_per_batch: (g0.num_edges() as f64 * 0.024 / 10.0 * 10.0) as usize / 10,
            locality: 0.8,
            local_hops: 2,
            seed: 21,
        },
    );

    let mut g = DynGraph::from_graph(&g0);
    println!("\niter  batch  incl  merge  redist   κ(G_t, H_t)   H edges   update µs");
    let mut ingrass_total = 0.0f64;
    for (i, batch) in stream.batches().iter().enumerate() {
        for &(u, v, w) in batch {
            g.add_edge(u.into(), v.into(), w)?;
        }
        let t = Instant::now();
        let r = engine.insert_batch(batch, &update_cfg)?;
        let us = t.elapsed().as_secs_f64() * 1e6;
        ingrass_total += us;
        let g_now = g.to_graph();
        let h_now = engine.sparsifier_graph();
        let kappa = estimate_condition_number(&g_now, &h_now, &cond_opts)?.kappa;
        println!(
            "{:>4}  {:>5}  {:>4}  {:>5}  {:>6}   {:>11.1}   {:>7}   {:>9.0}",
            i + 1,
            r.batch_size,
            r.included,
            r.merged,
            r.redistributed,
            kappa,
            h_now.num_edges(),
            us
        );
    }

    // Compare one GRASS-from-scratch rerun on the final graph.
    let g_final = g.to_graph();
    let t = Instant::now();
    let rerun = GrassSparsifier::default().to_condition(&g_final, kappa0, &cond_opts)?;
    let grass_s = t.elapsed().as_secs_f64();
    let d_grass = SparsifierDensity::new(g_final.num_nodes()).report_graphs(&rerun.graph, &g0);
    let d_ingrass =
        SparsifierDensity::new(g_final.num_nodes()).report_graphs(&engine.sparsifier_graph(), &g0);
    println!(
        "\nGRASS re-run (one iteration only!): {:.2} s → off-tree density {:.1} % at κ = {:.1}",
        grass_s,
        100.0 * d_grass.off_tree,
        rerun.kappa.unwrap_or(f64::NAN)
    );
    println!(
        "inGRASS (all 10 iterations):        {:.5} s → off-tree density {:.1} %",
        ingrass_total / 1e6,
        100.0 * d_ingrass.off_tree
    );
    Ok(())
}
