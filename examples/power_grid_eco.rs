//! ECO (engineering change order) scenario from the paper's introduction,
//! upgraded to *real* ECO semantics through the operation-log engine: late
//! in the design flow the power-delivery network is edited — straps are
//! **ripped up and re-inserted** at a higher metal width (delete +
//! re-insert), some wires are resized in place (reweight), and new straps
//! are added — and the spectral sparsifier used by the power-grid analyser
//! must follow along *without* re-running sparsification from scratch.
//! The engine's drift tracker decides on its own when enough weight has
//! churned that a re-setup pays for itself.
//!
//! Run with: `cargo run --release --example power_grid_eco`

use ingrass_repro::prelude::*;
use std::time::Instant;

/// One ECO round: rip-up + upgrade a slice of straps, resize a few in
/// place, and land some brand-new straps. Deterministic (index-driven) so
/// the output is reproducible without an RNG.
fn eco_round(g: &DynGraph, round: usize, straps: &[Edge]) -> Vec<UpdateOp> {
    let mut ops = Vec::new();
    let k = straps.len();
    // Rip-up: delete the strap, re-insert it 25 % wider (the ECO upgrade).
    for j in 0..6 {
        let e = straps[(round * 11 + j * 7) % k];
        if g.edge_weight(e.u, e.v).is_some() {
            ops.push(UpdateOp::Delete {
                u: e.u.index(),
                v: e.v.index(),
            });
            ops.push(UpdateOp::Insert {
                u: e.u.index(),
                v: e.v.index(),
                weight: e.weight * 1.25,
            });
        }
    }
    // In-place resize: a thinner redraw of two straps.
    for j in 0..2 {
        let e = straps[(round * 13 + j * 17 + 3) % k];
        if let Some(w) = g.edge_weight(e.u, e.v) {
            ops.push(UpdateOp::Reweight {
                u: e.u.index(),
                v: e.v.index(),
                weight: (w * 0.8).max(1e-9),
            });
        }
    }
    // New straps: short planks between nearby rows of the grid.
    let n = g.num_nodes();
    for j in 0..4 {
        let a = (round * 389 + j * 97) % n;
        let b = (a + 51) % n;
        if a != b && g.edge_weight(a.into(), b.into()).is_none() {
            ops.push(UpdateOp::Insert {
                u: a.min(b),
                v: a.max(b),
                weight: 1.0,
            });
        }
    }
    ops
}

/// Mirrors one engine op onto the ground-truth graph.
fn mirror(g: &mut DynGraph, op: &UpdateOp) -> Result<(), Box<dyn std::error::Error>> {
    match *op {
        UpdateOp::Insert { u, v, weight } => {
            g.add_edge(u.into(), v.into(), weight)?;
        }
        UpdateOp::Delete { u, v } => {
            g.remove_edge(u.into(), v.into());
        }
        UpdateOp::Reweight { u, v, weight } => {
            if let Some(id) = g.edge_id(u.into(), v.into()) {
                g.set_weight(id, weight)?;
            }
        }
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-layer power grid (G2_circuit class).
    let g0 = power_grid(&PowerGridConfig {
        width: 48,
        height: 48,
        ..Default::default()
    });
    println!(
        "power grid: {} nodes, {} edges",
        g0.num_nodes(),
        g0.num_edges()
    );

    let h0 = GrassSparsifier::default().by_offtree_density(&g0, 0.10)?;
    let cond_opts = ConditionOptions::default();
    let kappa0 = estimate_condition_number(&g0, &h0.graph, &cond_opts)?.kappa;
    println!("initial sparsifier: κ = {kappa0:.1}");

    // An eager drift policy so the automatic re-setup is visible in a short
    // demo; production deployments keep the (laxer) default.
    let setup_cfg = SetupConfig::default().with_drift(DriftPolicy {
        max_deleted_weight_fraction: 0.002,
        ..Default::default()
    });
    let mut engine = InGrassEngine::setup(&h0.graph, &setup_cfg)?;
    let update_cfg = UpdateConfig {
        target_condition: kappa0,
        ..Default::default()
    };

    // The churnable strap pool: every edge of the base grid (rip-ups
    // re-insert the pair in the same batch, so the ground-truth graph
    // never disconnects).
    let straps: Vec<Edge> = g0.edges().to_vec();

    let mut g = DynGraph::from_graph(&g0);
    // The table reports the paper's condition measure λmax(L_H⁺ L_G).
    println!(
        "\niter  ops  incl  merge  redist  del  relink  rew  vac   κ̂(G_t, H_t)  resetup  update µs"
    );
    let mut ingrass_total = 0.0f64;
    let mut trajectory = ConditionTrajectory::new();
    for round in 0..10 {
        let ops = eco_round(&g, round, &straps);
        for op in &ops {
            mirror(&mut g, op)?;
        }
        let t = Instant::now();
        let r = engine.apply_batch(&ops, &update_cfg)?;
        let us = t.elapsed().as_secs_f64() * 1e6;
        ingrass_total += us;
        let g_now = g.to_graph();
        let h_now = engine.sparsifier_graph();
        let est = estimate_condition_number(&g_now, &h_now, &cond_opts)?;
        trajectory.record(round, &est, r.resetup.is_some());
        println!(
            "{:>4}  {:>3}  {:>4}  {:>5}  {:>6}  {:>3}  {:>6}  {:>3}  {:>3}   {:>11.1}  {:>7}  {:>9.0}",
            round + 1,
            r.batch_size,
            r.included,
            r.merged,
            r.redistributed,
            r.deleted,
            r.relinked,
            r.reweighted,
            r.vacuous,
            est.lambda_max,
            r.resetup.map(|why| why.to_string()).unwrap_or_default(),
            us
        );
    }
    println!(
        "\ncondition trajectory: max κ̂ {:.1}, final {:.1}, {} automatic re-setup(s)",
        trajectory.max_lambda_max().unwrap_or(f64::NAN),
        trajectory.final_lambda_max().unwrap_or(f64::NAN),
        engine.resetups(),
    );
    let ledger = engine.ledger();
    println!(
        "ledger: {} inserts, {} deletes ({} re-linked), {} reweights, {} vacuous",
        ledger.inserts(),
        ledger.deletes(),
        ledger.relinks(),
        ledger.reweights(),
        ledger.vacuous(),
    );

    // Compare one GRASS-from-scratch rerun on the final graph.
    let g_final = g.to_graph();
    let t = Instant::now();
    let rerun = GrassSparsifier::default().to_condition(&g_final, kappa0, &cond_opts)?;
    let grass_s = t.elapsed().as_secs_f64();
    let d_grass = SparsifierDensity::new(g_final.num_nodes()).report_graphs(&rerun.graph, &g0);
    let d_ingrass =
        SparsifierDensity::new(g_final.num_nodes()).report_graphs(&engine.sparsifier_graph(), &g0);
    println!(
        "\nGRASS re-run (one iteration only!): {:.2} s → off-tree density {:.1} % at κ = {:.1}",
        grass_s,
        100.0 * d_grass.off_tree,
        rerun.kappa.unwrap_or(f64::NAN)
    );
    println!(
        "inGRASS (all 10 ECO rounds):        {:.5} s → off-tree density {:.1} %",
        ingrass_total / 1e6,
        100.0 * d_ingrass.off_tree
    );
    Ok(())
}
