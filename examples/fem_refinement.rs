//! Adaptive-mesh-refinement scenario: a finite-element airfoil mesh is
//! locally refined between solver runs, adding new stiffness couplings. The
//! preconditioner built from the spectral sparsifier follows incrementally.
//!
//! Run with: `cargo run --release --example fem_refinement`

use ingrass_repro::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g0 = airfoil_mesh(&AirfoilConfig {
        points: 4000,
        thickness: 0.15,
        seed: 3,
    })?;
    println!(
        "airfoil FE mesh: {} nodes, {} edges",
        g0.num_nodes(),
        g0.num_edges()
    );

    let h0 = GrassSparsifier::default().by_offtree_density(&g0, 0.10)?;
    let cond_opts = ConditionOptions::default();
    let kappa0 = estimate_condition_number(&g0, &h0.graph, &cond_opts)?.kappa;

    // Setup with the sharper JL resistance backend — FE meshes have strong
    // weight gradients where the Krylov estimate is coarsest.
    let t = Instant::now();
    let mut engine = InGrassEngine::setup(
        &h0.graph,
        &SetupConfig::default().with_resistance(ResistanceBackend::Jl(JlConfig::default())),
    )?;
    println!(
        "setup (JL backend): {} levels in {:.0} ms; initial κ = {kappa0:.1}",
        engine.setup_report().levels,
        t.elapsed().as_secs_f64() * 1e3
    );

    // Refinement stream: strongly local (new couplings appear where cells
    // split).
    let stream = InsertionStream::generate(
        &g0,
        &StreamConfig {
            batches: 10,
            edges_per_batch: g0.num_edges() / 250,
            locality: 0.95,
            local_hops: 2,
            seed: 8,
        },
    );

    let mut g = DynGraph::from_graph(&g0);
    let cfg = UpdateConfig {
        target_condition: kappa0,
        ..Default::default()
    };
    let t = Instant::now();
    let mut included = 0usize;
    for batch in stream.batches() {
        for &(u, v, w) in batch {
            g.add_edge(u.into(), v.into(), w)?;
        }
        included += engine.insert_batch(batch, &cfg)?.included;
    }
    println!(
        "{} refinement edges absorbed in {:.1} ms ({} included in H)",
        stream.total_edges(),
        t.elapsed().as_secs_f64() * 1e3,
        included
    );

    let g_now = g.to_graph();
    let h_now = engine.sparsifier_graph();
    let maintained = estimate_condition_number(&g_now, &h_now, &cond_opts)?;
    let stale = estimate_condition_number(&g_now, &h0.graph, &cond_opts)?;
    println!(
        "λmax(L_H⁺L_G) with maintenance: {:.1}; if H(0) were left stale: {:.1}",
        maintained.lambda_max, stale.lambda_max
    );
    println!(
        "two-sided κ with maintenance: {:.1} (λmin {:.2} — weight absorption on          strongly local streams over-weights H; see EXPERIMENTS.md)",
        maintained.kappa, maintained.lambda_min
    );

    // The maintained sparsifier is what a PCG preconditioner would be
    // built from: show the iteration count difference directly.
    use ingrass_repro::graph::{kruskal_tree, TreeObjective, TreePrecond};
    use ingrass_repro::linalg::{pcg, CgOptions};
    let lap = g_now.laplacian();
    let mut b = vec![0.0; g_now.num_nodes()];
    b[0] = 1.0;
    b[g_now.num_nodes() - 1] = -1.0;
    let ones = vec![1.0; g_now.num_nodes()];
    let tree = kruskal_tree(&h_now, TreeObjective::MaxWeight)?;
    let pre = TreePrecond::new(&tree.tree);
    let mut x = vec![0.0; g_now.num_nodes()];
    let res = pcg(
        &lap,
        &b,
        &mut x,
        &pre,
        Some(&ones),
        &CgOptions::default().with_rel_tol(1e-8),
    );
    println!(
        "tree-PCG on the updated Laplacian, preconditioned via H: {} iterations (converged: {})",
        res.iterations, res.converged
    );
    Ok(())
}
