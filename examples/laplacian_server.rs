//! A Laplacian solve server fed by a churning graph — the workload the
//! whole pipeline exists for.
//!
//! A stream of graph edits (inserts, deletes, reweights) arrives in
//! batches; between batches, clients ask for potentials on the *current*
//! graph (`L_G x = b`: voltage drops, commute distances, diffusion
//! states). The inGRASS engine keeps the sparsifier current in `O(log N)`
//! per edit, and the `SolveService` answers each request with PCG
//! preconditioned by a cached factorization of that sparsifier:
//!
//! * ordinary update batches leave the engine epoch unchanged → requests
//!   are served **warm** off the cached factor;
//! * when accumulated churn trips the drift policy, the engine re-runs
//!   setup, the epoch moves, and the next request transparently pays one
//!   refactorization (**cold**) before going warm again.
//!
//! Run with: `cargo run --release --example laplacian_server`

use ingrass_repro::churn_to_update_ops;
use ingrass_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The "production" graph: a mid-sized power-grid stand-in.
    let g0 = power_grid(&PowerGridConfig {
        width: 45,
        height: 45,
        seed: 42,
        ..Default::default()
    });
    let n = g0.num_nodes();
    println!(
        "laplacian_server: |V| = {n}, |E| = {} — churn interleaved with solve requests\n",
        g0.num_edges()
    );

    // Solve-grade sparsifier + engine with an eager drift policy, so the
    // demo shows a mid-stream re-setup (production would churn for much
    // longer before tripping the default 20 % threshold).
    let h0 = GrassSparsifier::default().by_offtree_density(&g0, 0.30)?;
    let mut engine = InGrassEngine::setup(
        &h0.graph,
        &SetupConfig::default().with_drift(DriftPolicy {
            max_deleted_weight_fraction: 0.004,
            ..Default::default()
        }),
    )?;
    let mut service = SolveService::new(SolveConfig::default());

    // The churn stream and the live original graph it edits.
    let churn = ChurnStream::paper_default(&g0, 42 ^ 0xc4a2);
    let mut g_live = DynGraph::from_graph(&g0);

    println!("batch  ops  epoch  cache  factor      pcg-iters  residual");
    for (i, batch) in churn.batches().iter().enumerate() {
        // 1. The graph changes; the engine follows incrementally.
        let ops = churn_to_update_ops(batch);
        ingrass_repro::core::replay_ops(&mut g_live, &ops)?;
        let update = engine.apply_batch(&ops, &UpdateConfig::default())?;

        // 2. Solve requests against the *current* graph: a small multi-RHS
        // batch of terminal-pair injections.
        let l_g = g_live.to_graph().laplacian();
        let rhss: Vec<Vec<f64>> = (0..3)
            .map(|k| {
                let mut b = vec![0.0; n];
                b[(7 * i + k) % n] = 1.0;
                b[(n / 2 + 13 * i + 5 * k) % n] = -1.0;
                b
            })
            .collect();
        let (xs, solve) = service.solve_batch(&engine, &l_g, &rhss)?;

        let worst_residual = solve
            .results
            .iter()
            .map(|r| r.residual_norm)
            .fold(0.0f64, f64::max);
        println!(
            "{:>5} {:>4} {:>6} {:>6} {:>9} {:>10} {:>9.2e}{}",
            i,
            ops.len(),
            solve.epoch,
            if solve.refactorized { "COLD" } else { "warm" },
            if solve.refactorized {
                format!("{:.2} ms", solve.factor_seconds * 1e3)
            } else {
                "cached".to_string()
            },
            solve.max_iterations(),
            worst_residual,
            if update.resetup.is_some() {
                "   ← drift re-setup this batch"
            } else {
                ""
            },
        );
        // The potentials are real answers, not just convergence flags.
        debug_assert!(xs.iter().all(|x| x.iter().all(|v| v.is_finite())));
    }

    let stats = service.stats();
    println!(
        "\nserved {} solves over {} batches: {} factorization(s), {} warm batch(es), {} total PCG iterations",
        stats.solves, stats.batches, stats.factorizations, stats.cache_hits, stats.iterations_total
    );
    println!(
        "engine: {} epochs ({} drift re-setups), version {}",
        engine.epoch() + 1,
        engine.resetups(),
        engine.version()
    );
    Ok(())
}
