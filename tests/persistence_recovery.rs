//! Recovery parity suite for the persistence layer: at **every** batch
//! prefix `k` of a churn stream, crashing after `k` batches (simulated by
//! copying the store directory) and running [`PersistentEngine::open`] on
//! the copy must reproduce exactly the state a straight in-memory run
//! reaches after the same `k` batches — identical sparsifier edges,
//! bit-identical Cholesky factor, identical ledger and epoch. The stream
//! crosses drift-triggered re-setup boundaries (aggressive
//! [`DriftPolicy`]) and, with small `snapshot_every`, the recovery path
//! exercises snapshot + WAL-tail splits at many different offsets.

use ingrass_repro::core::state::ServingState;
use ingrass_repro::prelude::*;
use ingrass_repro::{churn_to_update_ops, test_seed};
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ingrass-recovery-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create tmpdir");
    dir
}

/// Copies every regular file of a store directory — the moral equivalent
/// of the on-disk bytes surviving a crash at this instant.
fn copy_store(src: &Path, dst: &Path) {
    let _ = fs::remove_dir_all(dst);
    fs::create_dir_all(dst).expect("create crash dir");
    for entry in fs::read_dir(src).expect("read store dir") {
        let entry = entry.expect("dir entry");
        fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy store file");
    }
}

/// Strips the only fields that legitimately differ between a recovered
/// engine and a from-scratch run of the same history: setup wall-clock
/// timings. Everything else — edge slots, factor bits, ledger sums,
/// epoch, publish sequence — must match exactly.
fn normalized(mut s: ServingState) -> ServingState {
    s.engine.setup_report.resistance_time = Duration::ZERO;
    s.engine.setup_report.lrd_time = Duration::ZERO;
    s.engine.setup_report.connectivity_time = Duration::ZERO;
    s.engine.setup_report.total_time = Duration::ZERO;
    s
}

fn fixture(seed: u64, drift: DriftPolicy) -> (Graph, SetupConfig, ChurnStream) {
    let g = grid_2d(8, 8, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, seed);
    let h0 = GrassSparsifier::default()
        .by_offtree_density(&g, 0.25)
        .expect("sparsifier")
        .graph;
    let cfg = SetupConfig::default().with_seed(seed).with_drift(drift);
    let churn = ChurnStream::generate(
        &g,
        &ChurnConfig {
            batches: 8,
            ops_per_batch: 5,
            seed: seed ^ 0xd15c,
            ..Default::default()
        },
    );
    (h0, cfg, churn)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// `recover(crash_at_k) == run_straight(k)` for every batch prefix
    /// `k`, across drift-triggered re-setup boundaries and across
    /// snapshot + WAL-tail splits (small `snapshot_every` moves the split
    /// point through the stream as `k` grows).
    #[test]
    fn prop_recovery_matches_straight_run_at_every_prefix(
        case_seed in 0u64..1000,
        snapshot_every in 1u64..4,
    ) {
        let seed = test_seed() ^ case_seed;
        // Aggressive drift: deletions in the default churn mix cross the
        // threshold mid-stream, so some prefixes straddle a re-setup.
        let drift = DriftPolicy {
            max_deleted_weight_fraction: 0.02,
            ..Default::default()
        };
        let (h0, cfg, churn) = fixture(seed, drift);
        let ucfg = UpdateConfig::default();

        let live_dir = tmpdir(&format!("live-{case_seed}-{snapshot_every}"));
        let crash_dir = tmpdir(&format!("crash-{case_seed}-{snapshot_every}"));
        let policy = StorePolicy::default()
            .with_fsync(false) // this suite simulates crashes by copying, not by killing
            .with_segment_bytes(1 << 12)
            .with_snapshot_every(snapshot_every);
        let mut persistent =
            PersistentEngine::create(&live_dir, &h0, &cfg, policy).expect("create store");
        let mut straight = SnapshotEngine::setup(&h0, &cfg).expect("straight setup");

        for (k, batch) in churn.batches().iter().enumerate() {
            let ops = churn_to_update_ops(batch);
            persistent.apply_batch(&ops, &ucfg).expect("persistent batch");
            straight.apply_batch(&ops, &ucfg).expect("straight batch");

            copy_store(&live_dir, &crash_dir);
            let (recovered, report) =
                PersistentEngine::open(&crash_dir, policy).expect("recovery");
            prop_assert_eq!(
                normalized(recovered.engine().export_state()),
                normalized(straight.export_state()),
                "prefix k={} diverged (recovery replayed {} batches on snapshot seq {})",
                k + 1,
                report.replayed_batches,
                report.snapshot_sequence
            );
            prop_assert_eq!(recovered.wal_seq(), persistent.wal_seq());
        }

        // The explicit re-setup marker path: if drift never fired, force
        // the epoch transition; either way the post-re-setup state must
        // survive a crash + recovery bit-for-bit.
        if straight.engine().epoch() == 0 {
            persistent.resetup().expect("persistent resetup");
            straight.resetup().expect("straight resetup");
        }
        prop_assert!(straight.engine().epoch() > 0, "no epoch transition exercised");
        copy_store(&live_dir, &crash_dir);
        let (recovered, _) = PersistentEngine::open(&crash_dir, policy).expect("final recovery");
        prop_assert_eq!(
            normalized(recovered.engine().export_state()),
            normalized(straight.export_state())
        );

        let _ = fs::remove_dir_all(&live_dir);
        let _ = fs::remove_dir_all(&crash_dir);
    }
}

/// Deterministic spot-check of the same contract (fast path for plain
/// `cargo test` without the property loop): one stream, crash after the
/// final batch, compare.
#[test]
fn recovery_round_trip_is_bit_exact() {
    let seed = test_seed();
    let (h0, cfg, churn) = fixture(seed, DriftPolicy::default());
    let ucfg = UpdateConfig::default();

    let live_dir = tmpdir("det-live");
    let crash_dir = tmpdir("det-crash");
    let policy = StorePolicy::default()
        .with_fsync(false)
        .with_snapshot_every(3);
    let mut persistent =
        PersistentEngine::create(&live_dir, &h0, &cfg, policy).expect("create store");
    let mut straight = SnapshotEngine::setup(&h0, &cfg).expect("straight setup");
    for batch in churn.batches() {
        let ops = churn_to_update_ops(batch);
        persistent
            .apply_batch(&ops, &ucfg)
            .expect("persistent batch");
        straight.apply_batch(&ops, &ucfg).expect("straight batch");
    }

    copy_store(&live_dir, &crash_dir);
    let (recovered, report) = PersistentEngine::open(&crash_dir, policy).expect("recovery");
    assert!(report.recover_seconds >= 0.0);
    assert_eq!(
        normalized(recovered.engine().export_state()),
        normalized(straight.export_state())
    );

    let _ = fs::remove_dir_all(&live_dir);
    let _ = fs::remove_dir_all(&crash_dir);
}
