//! Stress suite for the snapshot-isolated serving layer: reader threads
//! keep solving while a writer replays a long churn stream, and every
//! solve is checked against the Laplacian *of the state it was served
//! from* — the snapshot and the matching original-graph Laplacian are
//! paired under one lock, so an answer is only ever validated against its
//! own epoch.
//!
//! Assertions, per reader-thread solve:
//! * the snapshot's checksum verifies (zero torn snapshots across the run);
//! * snapshot versions observed by one reader never go backwards;
//! * PCG converges and the explicitly recomputed residual
//!   `‖L_G x − b̄‖ / ‖b̄‖` meets tolerance against the served epoch's
//!   Laplacian.
//!
//! The acceptance shape: 4 reader threads + 1 writer over ≥ 200 churn
//! batches, exercised at seeds 42 (default), 7, and 1337 (CI seeds job,
//! `INGRASS_TEST_SEED`), with `INGRASS_THREADS=4` in the concurrency CI
//! step.

use ingrass_repro::linalg::CsrMatrix;
use ingrass_repro::prelude::*;
use ingrass_repro::test_seed;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

const READERS: usize = 4;
const CHURN_BATCHES: usize = 200;
const OPS_PER_BATCH: usize = 4;
/// Explicit residual tolerance: looser than PCG's 1e-8 target so the check
/// pins correctness, not floating-point luck.
const RESIDUAL_TOL: f64 = 1e-6;

/// The snapshot/Laplacian pair of one published state. Swapped atomically
/// (single lock) by the writer; cloned atomically by readers.
#[derive(Clone)]
struct ServedState {
    snap: Arc<SparsifierSnapshot>,
    lap: Arc<CsrMatrix>,
}

fn vec_norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// ‖L x − b̄‖ / ‖b̄‖ with b̄ the zero-mean projection of `b` (the system the
/// service actually solves).
fn relative_residual(lap: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
    let n = b.len();
    let mean = b.iter().sum::<f64>() / n as f64;
    let projected: Vec<f64> = b.iter().map(|v| v - mean).collect();
    let lx = lap.matvec_alloc(x);
    let r: Vec<f64> = lx.iter().zip(&projected).map(|(a, c)| a - c).collect();
    vec_norm(&r) / vec_norm(&projected).max(f64::MIN_POSITIVE)
}

#[test]
fn four_readers_solve_while_writer_replays_200_churn_batches() {
    let seed = test_seed();
    let g0 = grid_2d(12, 12, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, seed);
    let n = g0.num_nodes();
    let h0 = GrassSparsifier::default()
        .by_offtree_density(&g0, 0.30)
        .expect("solve-grade sparsifier")
        .graph;
    // An eagerish drift policy so the 200-batch run crosses at least one
    // re-setup: old-epoch snapshots must keep serving across it.
    let mut engine = SnapshotEngine::setup(
        &h0,
        &SetupConfig::default()
            .with_seed(seed)
            .with_drift(DriftPolicy {
                max_deleted_weight_fraction: 0.05,
                ..Default::default()
            }),
    )
    .expect("setup");
    let churn = ChurnStream::generate(
        &g0,
        &ChurnConfig {
            batches: CHURN_BATCHES,
            ops_per_batch: OPS_PER_BATCH,
            seed: seed ^ 0xc4a2,
            ..Default::default()
        },
    );
    assert!(churn.batches().len() >= 200, "acceptance floor");

    let state = Mutex::new(ServedState {
        snap: engine.snapshot(),
        lap: Arc::new(g0.laplacian()),
    });
    let done = AtomicBool::new(false);
    let torn = AtomicUsize::new(0);
    let solves = AtomicUsize::new(0);
    let epochs_served: Mutex<BTreeSet<u64>> = Mutex::new(BTreeSet::new());

    let mut publish_versions: Vec<u64> = Vec::new();
    std::thread::scope(|s| {
        // 4 reader threads: each owns a SolveService and keeps answering
        // seed-derived terminal-pair requests against whatever state is
        // current. The loop body runs at least once per reader (solve
        // first, check the stop flag after), so every reader contributes.
        for reader in 0..READERS as u64 {
            let (state, done, torn, solves, epochs_served) =
                (&state, &done, &torn, &solves, &epochs_served);
            s.spawn(move || {
                let mut svc = SolveService::new(SolveConfig::default());
                let mut last_version = 0u64;
                let mut k = 0u64;
                loop {
                    let ServedState { snap, lap } = state.lock().unwrap().clone();
                    // Torn-snapshot check: the CSR arrays still hash to the
                    // checksum computed at publish time.
                    if !snap.verify_checksum() {
                        torn.fetch_add(1, Ordering::Relaxed);
                    }
                    // Publishes are ordered: a reader never observes the
                    // version going backwards.
                    assert!(
                        snap.version() >= last_version,
                        "version went backwards: {} after {}",
                        snap.version(),
                        last_version
                    );
                    last_version = snap.version();

                    let u = (ingrass_par::derive_seed(seed ^ reader, k) % n as u64) as usize;
                    let mut v =
                        (ingrass_par::derive_seed(seed ^ reader, k + 1) % n as u64) as usize;
                    if v == u {
                        v = (v + 1) % n;
                    }
                    let mut b = vec![0.0; n];
                    b[u] = 1.0;
                    b[v] = -1.0;
                    let (xs, report) = svc
                        .solve_snapshot_batch(&snap, &lap, &[b.clone()])
                        .expect("snapshot solve");
                    assert!(
                        report.all_converged(),
                        "reader {reader} solve diverged at version {}",
                        snap.version()
                    );
                    assert_eq!(report.epoch, snap.epoch());
                    // The residual check that matters: against the
                    // Laplacian of the very state the solve was served
                    // from, not whatever is current by now.
                    let rel = relative_residual(&lap, &xs[0], &b);
                    assert!(
                        rel <= RESIDUAL_TOL,
                        "reader {reader}: residual {rel:.3e} at version {} epoch {}",
                        snap.version(),
                        snap.epoch()
                    );
                    solves.fetch_add(1, Ordering::Relaxed);
                    epochs_served.lock().unwrap().insert(snap.epoch());
                    k += 2;
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                }
            });
        }

        // The writer: replay every churn batch, publish, and atomically
        // swap the served state to the new (snapshot, Laplacian) pair.
        let mut g_live = DynGraph::from_graph(&g0);
        for batch in churn.batches() {
            let ops = ingrass_repro::churn_to_update_ops(batch);
            ingrass_repro::core::replay_ops(&mut g_live, &ops).expect("churn stream is consistent");
            let report = engine
                .apply_batch(&ops, &UpdateConfig::default())
                .expect("writer batch");
            let publish = report.publish.expect("non-empty churn batch publishes");
            publish_versions.push(publish.version);
            let fresh = ServedState {
                snap: engine.snapshot(),
                lap: Arc::new(g_live.to_graph().laplacian()),
            };
            *state.lock().unwrap() = fresh;
        }
        done.store(true, Ordering::Release);
    });

    // Zero torn snapshots across every reader observation.
    assert_eq!(torn.load(Ordering::Relaxed), 0, "torn snapshots observed");
    // Every reader ran at least once; collectively they did real work.
    assert!(
        solves.load(Ordering::Relaxed) >= READERS,
        "only {} solves",
        solves.load(Ordering::Relaxed)
    );
    // The writer's publish sequence is strictly increasing (one publish
    // per state-changing batch, ≥ 200 of them).
    assert_eq!(publish_versions.len(), CHURN_BATCHES);
    assert!(publish_versions.windows(2).all(|w| w[0] < w[1]));
    // The drift policy fired at least once, so readers kept serving across
    // a re-setup; every epoch they saw exists on the engine's timeline.
    assert!(
        engine.engine().resetups() >= 1,
        "stream never crossed the drift policy"
    );
    let final_epoch = engine.engine().epoch();
    let seen = epochs_served.lock().unwrap();
    assert!(!seen.is_empty());
    assert!(seen.iter().all(|&e| e <= final_epoch));
}

/// Deterministic (single-threaded) cross-epoch check of the concurrent
/// service: requests admitted against different snapshots are grouped
/// apart, answered with their own epoch's preconditioner, and each answer
/// meets tolerance against its own epoch's Laplacian.
#[test]
fn concurrent_service_answers_each_request_against_its_own_epoch() {
    let seed = test_seed();
    let g0 = grid_2d(10, 10, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, seed);
    let n = g0.num_nodes();
    let h0 = GrassSparsifier::default()
        .by_offtree_density(&g0, 0.30)
        .expect("sparsifier")
        .graph;
    let mut engine = SnapshotEngine::setup(
        &h0,
        &SetupConfig::default()
            .with_seed(seed)
            .with_drift(DriftPolicy::never()),
    )
    .expect("setup");

    // Epoch 0 state.
    let snap_a = engine.snapshot();
    let lap_a = Arc::new(g0.laplacian());

    // Mutate the graph and the engine, then force a new epoch.
    let stream = InsertionStream::generate(
        &g0,
        &StreamConfig {
            batches: 1,
            edges_per_batch: 12,
            seed,
            ..Default::default()
        },
    );
    let mut g_live = DynGraph::from_graph(&g0);
    let ops: Vec<UpdateOp> = stream.batches()[0]
        .iter()
        .map(|&(u, v, weight)| {
            g_live
                .add_edge(u.into(), v.into(), weight)
                .expect("stream edge");
            UpdateOp::Insert { u, v, weight }
        })
        .collect();
    engine
        .apply_batch(&ops, &UpdateConfig::default())
        .expect("batch");
    engine.resetup().expect("forced resetup");
    let snap_b = engine.snapshot();
    let lap_b = Arc::new(g_live.to_graph().laplacian());
    assert_eq!(snap_a.epoch(), 0);
    assert_eq!(snap_b.epoch(), 1);

    let svc = ConcurrentSolveService::new(SolveConfig::default());
    let mk_rhs = |u: usize, v: usize| {
        let mut b = vec![0.0; n];
        b[u] = 1.0;
        b[v] = -1.0;
        b
    };
    // Interleave submissions across the two epochs.
    let requests = [
        (&snap_a, &lap_a, (0usize, n - 1)),
        (&snap_b, &lap_b, (1usize, n / 2)),
        (&snap_a, &lap_a, (2usize, n - 3)),
        (&snap_b, &lap_b, (3usize, n / 3)),
    ];
    for (snap, lap, (u, v)) in &requests {
        svc.submit(snap, lap, mk_rhs(*u, *v)).expect("submit");
    }
    let round = svc.drain();
    assert_eq!(round.groups, 2, "two snapshots → two admission groups");
    assert_eq!(round.served.len(), requests.len());
    assert!(round.all_converged());
    for (served, (snap, lap, (u, v))) in round.served.iter().zip(&requests) {
        assert_eq!(served.epoch, snap.epoch(), "answer mis-tagged");
        assert_eq!(served.version, snap.version());
        let rel = relative_residual(lap, &served.x, &mk_rhs(*u, *v));
        assert!(
            rel <= RESIDUAL_TOL,
            "epoch {} residual {rel:.3e}",
            served.epoch
        );
    }
}
