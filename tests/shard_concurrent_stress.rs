//! Stress suite for the sharded engine's epoch-fenced parallel apply
//! running against live snapshot readers: writer threads fan each batch
//! out across the `ingrass-par` pool (the commit protocol of
//! `ShardedEngine::apply_batch`) while [`SnapshotReader`]s keep solving
//! off whatever stitched snapshot is current.
//!
//! Assertions, per reader solve:
//! * the stitched snapshot's checksum verifies (zero torn snapshots even
//!   while per-shard applies run in parallel);
//! * snapshot sequence numbers observed by one reader never go backwards;
//! * PCG converges and the recomputed residual `‖L_G x − b̄‖ / ‖b̄‖` meets
//!   tolerance against the Laplacian *of the exact publish the snapshot
//!   came from* (paired by sequence number, inserted before the publish).
//!
//! The run repeats at fence widths 1 and 4 (`ShardedConfig::threads`) so
//! the single-threaded commit path and the genuinely parallel one face
//! the same readers; the CI seeds job re-runs it at seeds 7 and 1337.

use ingrass_repro::linalg::CsrMatrix;
use ingrass_repro::prelude::*;
use ingrass_repro::test_seed;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

const SHARDS: usize = 4;
const READERS: usize = 2;
const CHURN_BATCHES: usize = 48;
const OPS_PER_BATCH: usize = 8;
/// Looser than PCG's convergence target so the check pins correctness,
/// not floating-point luck.
const RESIDUAL_TOL: f64 = 1e-6;

fn vec_norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// ‖L x − b̄‖ / ‖b̄‖ with b̄ the zero-mean projection of `b` (the system the
/// service actually solves).
fn relative_residual(lap: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
    let n = b.len();
    let mean = b.iter().sum::<f64>() / n as f64;
    let projected: Vec<f64> = b.iter().map(|v| v - mean).collect();
    let lx = lap.matvec_alloc(x);
    let r: Vec<f64> = lx.iter().zip(&projected).map(|(a, c)| a - c).collect();
    vec_norm(&r) / vec_norm(&projected).max(f64::MIN_POSITIVE)
}

/// One full run at a given fence width: a sharded writer replays the
/// churn stream (publishing after every batch, with one forced mid-run
/// re-setup so readers cross an epoch boundary) while `READERS` threads
/// solve off [`SnapshotReader::current`] the whole time.
fn stress(threads: Option<usize>) {
    let seed = test_seed();
    let g0 = grid_2d(14, 14, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, seed);
    let n = g0.num_nodes();
    let h0 = GrassSparsifier::default()
        .by_offtree_density(&g0, 0.30)
        .expect("solve-grade sparsifier")
        .graph;
    let mut cfg = ShardedConfig::default().with_shards(SHARDS);
    cfg.threads = threads;
    let mut eng =
        ShardedEngine::setup(&h0, &SetupConfig::default().with_seed(seed), &cfg).expect("setup");
    let churn = ChurnStream::generate(
        &g0,
        &ChurnConfig {
            batches: CHURN_BATCHES,
            ops_per_batch: OPS_PER_BATCH,
            delete_fraction: 0.2,
            reweight_fraction: 0.15,
            seed: seed ^ 0x5A4D,
            ..Default::default()
        },
    );

    // Laplacian of the original graph as of each publish, keyed by the
    // snapshot sequence number and inserted *before* the publish — so by
    // the time a reader can observe a sequence, its Laplacian is present.
    let laps: Mutex<HashMap<u64, Arc<CsrMatrix>>> = Mutex::new(HashMap::new());
    laps.lock()
        .unwrap()
        .insert(eng.snapshot().sequence(), Arc::new(g0.laplacian()));
    let reader_handles: Vec<SnapshotReader> = (0..READERS).map(|_| eng.reader()).collect();
    let done = AtomicBool::new(false);
    let torn = AtomicUsize::new(0);
    let solves = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for (reader_id, reader) in reader_handles.iter().enumerate() {
            let (laps, done, torn, solves) = (&laps, &done, &torn, &solves);
            s.spawn(move || {
                let mut svc = SolveService::new(SolveConfig::default());
                let mut last_sequence = 0u64;
                let mut k = 0u64;
                loop {
                    let snap = reader.current();
                    if !snap.verify_checksum() {
                        torn.fetch_add(1, Ordering::Relaxed);
                    }
                    assert!(
                        snap.sequence() >= last_sequence,
                        "sequence went backwards: {} after {last_sequence}",
                        snap.sequence()
                    );
                    last_sequence = snap.sequence();
                    let lap = Arc::clone(&laps.lock().unwrap()[&snap.sequence()]);

                    let rid = reader_id as u64;
                    let u = (ingrass_par::derive_seed(seed ^ rid, k) % n as u64) as usize;
                    let mut v = (ingrass_par::derive_seed(seed ^ rid, k + 1) % n as u64) as usize;
                    if v == u {
                        v = (v + 1) % n;
                    }
                    let mut b = vec![0.0; n];
                    b[u] = 1.0;
                    b[v] = -1.0;
                    let (xs, report) = svc
                        .solve_snapshot_batch(&snap, &lap, std::slice::from_ref(&b))
                        .expect("snapshot solve");
                    assert!(
                        report.all_converged(),
                        "reader {reader_id} diverged at sequence {}",
                        snap.sequence()
                    );
                    let rel = relative_residual(&lap, &xs[0], &b);
                    assert!(
                        rel <= RESIDUAL_TOL,
                        "reader {reader_id}: residual {rel:.3e} at sequence {} epoch {}",
                        snap.sequence(),
                        snap.epoch()
                    );
                    solves.fetch_add(1, Ordering::Relaxed);
                    k += 2;
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                }
            });
        }

        // The writer: every batch goes through the fenced parallel apply,
        // then the fresh Laplacian is registered and the stitched
        // snapshot published.
        let mut g_live = DynGraph::from_graph(&g0);
        for (i, batch) in churn.batches().iter().enumerate() {
            let ops = ingrass_repro::churn_to_update_ops(batch);
            ingrass_repro::core::replay_ops(&mut g_live, &ops).expect("churn stream is consistent");
            let report = eng
                .apply_batch(&ops, &UpdateConfig::default())
                .expect("writer batch");
            assert!(report.fence_width >= 1, "fence never ran");
            if i == CHURN_BATCHES / 2 {
                eng.resetup().expect("forced resetup");
            }
            laps.lock()
                .unwrap()
                .insert(eng.publishes() + 1, Arc::new(g_live.to_graph().laplacian()));
            eng.publish().expect("publish");
        }
        done.store(true, Ordering::Release);
    });

    assert_eq!(torn.load(Ordering::Relaxed), 0, "torn snapshots observed");
    assert!(
        solves.load(Ordering::Relaxed) >= READERS,
        "only {} solves",
        solves.load(Ordering::Relaxed)
    );
    assert!(eng.snapshot().epoch() >= 1, "mid-run re-setup never landed");
}

#[test]
fn readers_survive_width_1_fenced_apply() {
    stress(Some(1));
}

#[test]
fn readers_survive_width_4_fenced_apply() {
    stress(Some(4));
}
