//! Property suite for the solve subsystem: over random graphs and random
//! churn prefixes, the extracted preconditioner stays SPD (no Cholesky
//! breakdown) and sparsifier-preconditioned PCG reaches a `1e-8` residual
//! in fewer iterations than unpreconditioned CG.

use ingrass_repro::graph::is_connected;
use ingrass_repro::linalg::CgOptions;
use ingrass_repro::prelude::*;
use ingrass_repro::solve::unpreconditioned_cg;
use ingrass_repro::{churn_to_update_ops, test_seed};
use proptest::prelude::*;

/// A random workload graph: a weighted grid torus-ed with random chords,
/// ill-conditioned enough that plain CG has real work to do.
fn random_graph(side: usize, chords: usize, seed: u64) -> Graph {
    let g = grid_2d(side, side, WeightModel::Uniform { lo: 0.1, hi: 10.0 }, seed);
    let n = g.num_nodes();
    let mut edges: Vec<(usize, usize, f64)> = g
        .edges()
        .iter()
        .map(|e| (e.u.index(), e.v.index(), e.weight))
        .collect();
    let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (s >> 33) as usize
    };
    for _ in 0..chords {
        let (u, v) = (next() % n, next() % n);
        if u != v {
            edges.push((u, v, 0.1 + (next() % 100) as f64 / 50.0));
        }
    }
    Graph::from_edges(n, &edges).expect("valid random graph")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn prop_preconditioner_is_spd_and_pcg_beats_cg(
        case_seed in 0u64..1000,
        side in 9usize..13,
        chords in 0usize..40,
        churn_batches in 0usize..4,
    ) {
        let seed = test_seed() ^ case_seed;
        let g = random_graph(side, chords, seed);
        let h0 = GrassSparsifier::default()
            .by_offtree_density(&g, 0.25)
            .expect("sparsifier")
            .graph;
        let mut engine = InGrassEngine::setup(
            &h0,
            &SetupConfig::default().with_seed(seed),
        ).expect("setup");

        // A random churn prefix: the preconditioner must survive whatever
        // state the operation log leaves the sparsifier in.
        let churn = ChurnStream::paper_default(&g, seed ^ 0xc0de);
        for batch in churn.batches().iter().take(churn_batches) {
            engine
                .apply_batch(&churn_to_update_ops(batch), &UpdateConfig::default())
                .expect("churn batch");
        }
        prop_assert!(is_connected(&engine.sparsifier_graph()));

        // SPD: the grounded Cholesky factorisation must not break down.
        let pre = engine.preconditioner();
        prop_assert!(pre.is_ok(), "cholesky breakdown: {:?}", pre.err());
        let pre = pre.unwrap();
        prop_assert!(pre.factor_nnz() >= engine.sparsifier().num_nodes() - 1);

        // PCG with the sparsifier factor vs plain CG, both to 1e-8 on the
        // same consistent system over the *original* graph.
        let l_g = g.laplacian();
        let n = g.num_nodes();
        let mut b = vec![0.0; n];
        b[n / 3] = 1.0;
        b[n - 1] = -1.0;
        let opts = CgOptions::default().with_rel_tol(1e-8).with_max_iters(20_000);

        let mut svc = SolveService::new(SolveConfig {
            cg: opts.clone(),
            ..Default::default()
        });
        let (x, report) = svc.solve(&engine, &l_g, &b).expect("service solve");
        prop_assert!(report.all_converged(), "pcg failed: {:?}", report.results);

        let (_, cg) = unpreconditioned_cg(&l_g, &b, &opts);
        prop_assert!(cg.converged, "plain cg failed: {cg:?}");
        prop_assert!(
            report.max_iterations() < cg.iterations,
            "pcg {} iterations did not beat cg {}",
            report.max_iterations(),
            cg.iterations
        );

        // And the solution actually solves the system.
        let r = l_g.matvec_alloc(&x);
        let err = r.iter().zip(&b).map(|(a, c)| (a - c).abs()).fold(0.0f64, f64::max);
        prop_assert!(err < 1e-5, "residual {err}");
    }

    #[test]
    fn prop_cache_is_reused_within_an_epoch_and_dropped_across(
        case_seed in 0u64..1000,
        inserts in 1usize..12,
    ) {
        let seed = test_seed() ^ case_seed.rotate_left(17);
        let g = random_graph(10, 15, seed);
        let h0 = GrassSparsifier::default()
            .by_offtree_density(&g, 0.20)
            .expect("sparsifier")
            .graph;
        // Drift disabled: epochs only move when we say so.
        let mut engine = InGrassEngine::setup(
            &h0,
            &SetupConfig::default().with_seed(seed).with_drift(DriftPolicy::never()),
        ).expect("setup");
        let l_g = g.laplacian();
        let n = g.num_nodes();
        let mut b = vec![0.0; n];
        b[0] = 1.0;
        b[n / 2] = -1.0;

        let mut svc = SolveService::new(SolveConfig::default());
        let (_, cold) = svc.solve(&engine, &l_g, &b).expect("cold");
        prop_assert!(cold.refactorized);

        // Arbitrary insert churn within the epoch: still warm.
        let stream = InsertionStream::generate(&g, &StreamConfig {
            batches: 1,
            edges_per_batch: inserts,
            seed,
            ..Default::default()
        });
        engine.insert_batch(&stream.batches()[0], &UpdateConfig::default()).expect("inserts");
        let (_, warm) = svc.solve(&engine, &l_g, &b).expect("warm");
        prop_assert!(!warm.refactorized, "epoch unchanged but cache dropped");
        prop_assert_eq!(svc.stats().factorizations, 1);

        // Forced re-setup: next solve must rebuild against the new epoch.
        engine.resetup().expect("resetup");
        let (_, rebuilt) = svc.solve(&engine, &l_g, &b).expect("rebuilt");
        prop_assert!(rebuilt.refactorized);
        prop_assert_eq!(rebuilt.epoch, engine.epoch());
        prop_assert!(rebuilt.all_converged());
    }
}
