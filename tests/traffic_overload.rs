//! Overload suite for the serving front end (`ingrass-traffic`): a seeded
//! open-loop workload trace at 2× the configured service capacity drives
//! writer churn and reader solves through the bounded admission queue, on
//! the virtual clock.
//!
//! Assertions:
//! * accepted-request p99 stays bounded under sustained overload (queue
//!   wait is capped by the deadline; service time is modeled from
//!   bit-deterministic PCG iteration counts);
//! * the reject/shed counters and latency percentiles are exactly
//!   reproducible at a fixed seed — the CI seeds job re-runs this suite
//!   at seeds 7 and 1337 (`INGRASS_TEST_SEED`), and the traffic-overload
//!   smoke job re-runs it at `INGRASS_THREADS=1` and `4`, where the
//!   pinned default-seed values must not move;
//! * deficit round-robin dispatch tracks the configured tenant weights
//!   when every lane is backlogged;
//! * the unbounded mode (cap and deadline off — the pre-front-end
//!   regime) sheds nothing and its backlog grows with the horizon.

use ingrass_repro::prelude::*;
use ingrass_repro::test_seed;

/// Offered arrival rate: 2× the front end's 80 req/s capacity
/// (`drain_budget` 4 every 0.05 virtual seconds).
const OFFERED_HZ: f64 = 160.0;
const HORIZON_S: f64 = 2.5;
const MAX_PENDING: usize = 32;
const DEADLINE_S: f64 = 0.3;

/// A solve-grade engine over a seeded weighted grid, plus churn batches
/// for the trace's writer arrivals.
fn fixture(seed: u64) -> (SnapshotEngine, Vec<Vec<UpdateOp>>) {
    let g0 = grid_2d(16, 16, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, seed);
    let h0 = GrassSparsifier::default()
        .by_offtree_density(&g0, 0.30)
        .expect("solve-grade sparsifier")
        .graph;
    let engine = SnapshotEngine::setup(&h0, &SetupConfig::default().with_seed(seed))
        .expect("traffic fixture setup");
    let churn = ChurnStream::generate(
        &g0,
        &ChurnConfig {
            batches: 8,
            ops_per_batch: 4,
            seed,
            ..Default::default()
        },
    );
    let batches = churn
        .batches()
        .iter()
        .map(|b| churn_to_update_ops(b))
        .collect();
    (engine, batches)
}

fn overload_trace(seed: u64, duration_s: f64) -> WorkloadTrace {
    WorkloadTrace::generate(&WorkloadConfig {
        duration_s,
        arrivals: ArrivalProcess::Poisson {
            rate_hz: OFFERED_HZ,
        },
        tenants: 3,
        churn_fraction: 0.03,
        seed,
        ..Default::default()
    })
}

fn bounded_cfg() -> OpenLoopConfig {
    OpenLoopConfig {
        traffic: TrafficConfig {
            max_pending: MAX_PENDING,
            deadline_s: DEADLINE_S,
            tenant_weights: vec![2.0, 1.0, 1.0],
        },
        ..Default::default()
    }
}

fn run_bounded(seed: u64) -> TrafficReport {
    let (mut engine, batches) = fixture(seed);
    let trace = overload_trace(seed, HORIZON_S);
    run_open_loop(
        &mut engine,
        &batches,
        trace.events(),
        HORIZON_S,
        &bounded_cfg(),
    )
    .expect("bounded overload run")
}

#[test]
fn bounded_overload_meets_slo_and_sheds() {
    let report = run_bounded(test_seed());
    assert!(report.completed > 100, "completed {}", report.completed);
    assert_eq!(report.non_converged, 0);
    // 2× overload: roughly half the offered load is shed, through both
    // loss modes — the cap at admission, the deadline at dispatch.
    let shed = report.shed_fraction();
    assert!(shed > 0.25 && shed < 0.75, "shed fraction {shed}");
    assert!(report.traffic.rejected_full > 0);
    assert!(report.traffic.shed_deadline > 0);
    // Accepted latency is bounded: queue wait ≤ deadline + one cadence,
    // service time modeled from a converged PCG solve. The backlog an
    // unbounded queue accumulates here would push p99 past the horizon.
    let p99 = report.p99_s();
    assert!(p99 > 0.0 && p99 < 1.0, "p99 {p99}");
    assert!(report.pending_at_horizon <= MAX_PENDING);
    // The trace's writer lane actually churned the engine mid-run.
    assert!(report.churn_batches_applied > 0);
}

#[test]
fn rejects_and_percentiles_are_exactly_reproducible() {
    let seed = test_seed();
    let a = run_bounded(seed);
    let b = run_bounded(seed);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.traffic.rejected_full, b.traffic.rejected_full);
    assert_eq!(a.traffic.shed_deadline, b.traffic.shed_deadline);
    assert_eq!(
        a.traffic.per_tenant_dispatched,
        b.traffic.per_tenant_dispatched
    );
    assert_eq!(a.pending_at_horizon, b.pending_at_horizon);
    // The full histogram — hence every percentile — is bit-identical.
    assert_eq!(a.accepted_latency, b.accepted_latency);
    assert_eq!(a.p99_s(), b.p99_s());
}

#[test]
fn dispatch_shares_track_tenant_weights_under_saturation() {
    let report = run_bounded(test_seed());
    let shares = &report.traffic.per_tenant_dispatched;
    assert_eq!(shares.len(), 3);
    // Weights 2:1:1 against offered shares 50/25/25 (the hot tenant is
    // tenant 0): every lane is offered more than its weighted capacity
    // share, so deficit round-robin pins dispatch to the weights.
    let t0 = shares[0] as f64;
    let rest = (shares[1] + shares[2]) as f64 / 2.0;
    let ratio = t0 / rest.max(1.0);
    assert!(
        (1.5..=2.6).contains(&ratio),
        "weight-2 tenant dispatched {ratio:.2}x the weight-1 mean (shares {shares:?})"
    );
    let sibling = shares[1] as f64 / (shares[2] as f64).max(1.0);
    assert!(
        (0.6..=1.6).contains(&sibling),
        "equal-weight tenants diverged (shares {shares:?})"
    );
}

#[test]
fn unbounded_admission_backlog_grows_with_the_horizon() {
    let seed = test_seed();
    let mut cfg = bounded_cfg();
    cfg.traffic.max_pending = usize::MAX;
    cfg.traffic.deadline_s = f64::INFINITY;
    cfg.flush_after_horizon = false;

    let backlog_at = |duration_s: f64| {
        let (mut engine, batches) = fixture(seed);
        let trace = overload_trace(seed, duration_s);
        let report = run_open_loop(&mut engine, &batches, trace.events(), duration_s, &cfg)
            .expect("unbounded overload run");
        assert_eq!(report.traffic.rejected_full, 0);
        assert_eq!(report.traffic.shed_deadline, 0);
        report.pending_at_horizon
    };

    let short = backlog_at(HORIZON_S);
    let long = backlog_at(2.0 * HORIZON_S);
    // Offered ≈ 2× capacity: the backlog is ≈ (λ − C)·T, far above the
    // bounded cap and roughly doubling with the horizon.
    assert!(short > 3 * MAX_PENDING, "short-run backlog {short}");
    assert!(
        long as f64 > 1.5 * short as f64,
        "backlog did not grow with the horizon ({short} → {long})"
    );
}

/// Width-parity pin: the CI traffic-overload smoke job runs this suite at
/// `INGRASS_THREADS=1` and `4`; both must reproduce these exact counts
/// (recorded at seed 42, width 1). Skipped under the seeds job's other
/// seeds — determinism there is pinned by the reproducibility test above.
#[test]
fn default_seed_counts_are_pinned_at_any_width() {
    if test_seed() != 42 {
        return;
    }
    let report = run_bounded(42);
    assert_eq!(
        (
            report.completed,
            report.traffic.rejected_full,
            report.traffic.shed_deadline,
            report.pending_at_horizon,
            report.traffic.per_tenant_dispatched.clone(),
        ),
        (
            PIN_COMPLETED,
            PIN_REJECTED_FULL,
            PIN_SHED_DEADLINE,
            PIN_PENDING,
            PIN_SHARES.to_vec()
        ),
        "seed-42 traffic counts moved — virtual-clock determinism broke"
    );
}

const PIN_COMPLETED: usize = 216;
const PIN_REJECTED_FULL: usize = 49;
const PIN_SHED_DEADLINE: usize = 71;
const PIN_PENDING: usize = 17;
const PIN_SHARES: [usize; 3] = [117, 54, 45];
