//! Parity suite for the sharded multi-writer engine: at a fixed shard
//! count the coordinator must match a single `InGrassEngine` on the
//! quality axis — the final condition number stays within 10 % — while
//! its stitched Schur-complement solves meet the same residual tolerance
//! the mono serving path is held to (`concurrent_serving.rs` uses the
//! identical `1e-6` explicit-residual check), across every churn prefix
//! and at least one re-setup (one is forced at the midpoint; the eager
//! drift policy typically trips more on its own).
//!
//! Runs at seeds 42, 7, and 1337 — the CI seed set — in-process, so a
//! single `cargo test` covers all three.

use ingrass_repro::linalg::CsrMatrix;
use ingrass_repro::prelude::*;

/// Same explicit residual tolerance the concurrent-serving suite pins:
/// looser than PCG's 1e-8 target so the check is about correctness of the
/// stitched apply, not floating-point luck.
const RESIDUAL_TOL: f64 = 1e-6;
const SHARDS: usize = 4;

fn vec_norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// ‖L x − b̄‖ / ‖b̄‖ with b̄ the zero-mean projection of `b` (the system
/// the solve service actually solves).
fn relative_residual(lap: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
    let n = b.len();
    let mean = b.iter().sum::<f64>() / n as f64;
    let projected: Vec<f64> = b.iter().map(|v| v - mean).collect();
    let lx = lap.matvec_alloc(x);
    let r: Vec<f64> = lx.iter().zip(&projected).map(|(a, c)| a - c).collect();
    vec_norm(&r) / vec_norm(&projected).max(f64::MIN_POSITIVE)
}

/// Deterministic seed-derived right-hand side (splitmix64 stream).
fn seeded_rhs(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

fn apply_churn_batch(d: &mut DynGraph, batch: &[ChurnOp]) {
    for op in batch {
        match *op {
            ChurnOp::Insert(u, v, w) => {
                d.add_edge(u.into(), v.into(), w).unwrap();
            }
            ChurnOp::Delete(u, v) => {
                d.remove_edge(u.into(), v.into());
            }
            ChurnOp::Reweight(u, v, w) => {
                if let Some(id) = d.edge_id(u.into(), v.into()) {
                    d.set_weight(id, w).unwrap();
                }
            }
        }
    }
}

fn run_parity(seed: u64) {
    let g0 = grid_2d(20, 20, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, seed);
    let n = g0.num_nodes();
    let h0 = GrassSparsifier::default()
        .by_offtree_density(&g0, 0.30)
        .expect("solve-grade sparsifier")
        .graph;
    let cond_opts = ConditionOptions::default();
    let target = estimate_condition_number(&g0, &h0, &cond_opts)
        .unwrap()
        .lambda_max;

    // Eager-ish drift policy so deletions can trip a re-setup on their own;
    // one more is forced at the midpoint so every seed crosses ≥ 1 epoch
    // boundary regardless.
    let setup_cfg = SetupConfig::default()
        .with_seed(seed)
        .with_drift(DriftPolicy {
            max_deleted_weight_fraction: 0.05,
            ..Default::default()
        });
    let mut mono = InGrassEngine::setup(&h0, &setup_cfg).unwrap();
    let mut sharded = ShardedEngine::setup(
        &h0,
        &setup_cfg,
        &ShardedConfig::default().with_shards(SHARDS),
    )
    .unwrap();
    assert_eq!(sharded.shards(), SHARDS);

    let churn = ChurnStream::generate(
        &g0,
        &ChurnConfig {
            batches: 10,
            ops_per_batch: 24,
            delete_fraction: 0.25,
            reweight_fraction: 0.15,
            seed: seed ^ 0x5AD,
            ..Default::default()
        },
    );
    assert!(churn.deletes() > 0, "the stream must exercise deletions");
    let cfg = UpdateConfig {
        target_condition: target,
        ..Default::default()
    };

    let mut svc = SolveService::new(SolveConfig::default());
    let mut current = DynGraph::from_graph(&g0);
    for (i, batch) in churn.batches().iter().enumerate() {
        let ops = churn_to_update_ops(batch);
        apply_churn_batch(&mut current, batch);
        let mono_report = mono.apply_batch(&ops, &cfg).unwrap();
        assert_eq!(mono_report.total_processed(), ops.len());
        let report = sharded.apply_batch(&ops, &cfg).unwrap();
        assert_eq!(report.batch_size, ops.len());
        assert_eq!(report.intra_ops + report.boundary_ops, ops.len());

        if i == churn.batches().len() / 2 {
            mono.resetup().unwrap();
            sharded.resetup().unwrap();
        }

        // Stitched-solve residual at every churn prefix: publish the
        // sharded state and solve the *current graph's* Laplacian with the
        // stitched Schur-complement preconditioner, exactly as the serving
        // layer would.
        sharded.publish().unwrap();
        let snap = sharded.snapshot();
        assert!(snap.verify_checksum(), "torn sharded snapshot at batch {i}");
        let lap = current.to_graph().laplacian();
        let b = seeded_rhs(n, seed ^ ((i as u64) << 8));
        let (xs, solve_report) = svc
            .solve_snapshot_batch(&snap, &lap, std::slice::from_ref(&b))
            .expect("stitched snapshot solve");
        assert!(
            solve_report.all_converged(),
            "stitched PCG failed to converge at batch {i}"
        );
        let res = relative_residual(&lap, &xs[0], &b);
        assert!(
            res <= RESIDUAL_TOL,
            "stitched-solve residual {res:.3e} exceeds {RESIDUAL_TOL:.0e} at batch {i} (seed {seed})"
        );
    }
    assert!(
        sharded.epoch() >= 1,
        "the run never crossed a re-setup (seed {seed})"
    );

    // Quality parity on the final state: both sparsifiers are measured
    // against the same churned graph; the sharded union (shard sparsifiers
    // + exact boundary edges) must stay within 10 % of the mono engine.
    let g_final = churn.apply_to(&g0).unwrap();
    let mono_lmax = estimate_condition_number(&g_final, &mono.sparsifier_graph(), &cond_opts)
        .unwrap()
        .lambda_max;
    let assembled = sharded.assembled_graph().unwrap();
    let sharded_lmax = estimate_condition_number(&g_final, &assembled, &cond_opts)
        .unwrap()
        .lambda_max;
    assert!(
        sharded_lmax.is_finite() && sharded_lmax >= 1.0,
        "degenerate sharded condition estimate {sharded_lmax}"
    );
    assert!(
        sharded_lmax <= 1.10 * mono_lmax,
        "sharded λmax {sharded_lmax:.3} vs mono {mono_lmax:.3} (ratio {:.3}, seed {seed})",
        sharded_lmax / mono_lmax
    );
}

#[test]
fn sharded_matches_mono_quality_at_seed_42() {
    run_parity(42);
}

#[test]
fn sharded_matches_mono_quality_at_seed_7() {
    run_parity(7);
}

#[test]
fn sharded_matches_mono_quality_at_seed_1337() {
    run_parity(1337);
}
