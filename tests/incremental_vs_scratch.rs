//! The paper's central comparison (Table II, miniature): after 10 update
//! iterations, inGRASS must land near the from-scratch GRASS re-run in
//! quality (condition measure at comparable density) while Random needs far
//! more edges.

use ingrass_repro::prelude::*;

struct Outcome {
    grass_density: f64,
    ingrass_density: f64,
    random_density: f64,
    grass_lmax: f64,
    ingrass_lmax: f64,
}

fn run_comparison(g0: Graph, seed: u64) -> Outcome {
    let n = g0.num_nodes();
    let cond_opts = ConditionOptions::default();
    let h0 = GrassSparsifier::default()
        .by_offtree_density(&g0, 0.10)
        .unwrap();
    let target = estimate_condition_number(&g0, &h0.graph, &cond_opts)
        .unwrap()
        .lambda_max;

    // Build the updated graph.
    let stream = InsertionStream::paper_default(&g0, seed);
    let mut d = DynGraph::from_graph(&g0);
    let mut all_new: Vec<(usize, usize, f64)> = Vec::new();
    for batch in stream.batches() {
        for &(u, v, w) in batch {
            d.add_edge(u.into(), v.into(), w).unwrap();
            all_new.push((u, v, w));
        }
    }
    let g_now = d.to_graph();
    let density = SparsifierDensity::new(n);

    // GRASS: re-run from scratch on the updated graph to the target.
    let grass = GrassSparsifier::default()
        .to_condition(&g_now, target, &cond_opts)
        .unwrap();
    let grass_density = density.report_graphs(&grass.graph, &g0).off_tree;
    let grass_lmax = grass.kappa.unwrap();

    // inGRASS: incremental maintenance.
    let mut engine = InGrassEngine::setup(&h0.graph, &SetupConfig::default()).unwrap();
    let cfg = UpdateConfig {
        target_condition: target,
        ..Default::default()
    };
    for batch in stream.batches() {
        engine.insert_batch(batch, &cfg).unwrap();
    }
    let h_in = engine.sparsifier_graph();
    let ingrass_density = density.report_graphs(&h_in, &g0).off_tree;
    let ingrass_lmax = estimate_condition_number(&g_now, &h_in, &cond_opts)
        .unwrap()
        .lambda_max;

    // Random: include random new edges until the target is met.
    let random = ingrass_repro::baselines::random_update_to_condition(
        &g_now, &h0.graph, &all_new, target, &cond_opts, seed,
    )
    .unwrap();
    let random_density = density.report_graphs(&random.sparsifier, &g0).off_tree;

    Outcome {
        grass_density,
        ingrass_density,
        random_density,
        grass_lmax,
        ingrass_lmax,
    }
}

#[test]
fn ingrass_matches_grass_quality_and_beats_random_density() {
    // Seeds are pinned to the vendored deterministic RNG stream (see
    // vendor/README.md); the comparison below is reproducible bit-for-bit.
    let g0 = grid_2d(26, 26, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 2);
    let o = run_comparison(g0, 42);

    // inGRASS quality within a small factor of the GRASS re-run.
    assert!(
        o.ingrass_lmax <= 3.0 * o.grass_lmax.max(1.0),
        "inGRASS λmax {} vs GRASS {}",
        o.ingrass_lmax,
        o.grass_lmax
    );
    // Density comparable to GRASS (within ~2.5×, paper: ~1×) and the
    // filtering must actually reject a good share of the stream.
    assert!(
        o.ingrass_density <= 2.5 * o.grass_density.max(0.05),
        "inGRASS density {} vs GRASS {}",
        o.ingrass_density,
        o.grass_density
    );
    // Random at the same target needs (much) more density than GRASS.
    assert!(
        o.random_density >= o.grass_density,
        "random {} vs grass {}",
        o.random_density,
        o.grass_density
    );
}

#[test]
fn update_phase_is_much_faster_than_rerun() {
    use std::time::Instant;
    // Timing shape check (not a benchmark): one inGRASS batch vs one GRASS
    // re-run on a mid-size delaunay graph. The margin asserted (3×) is far
    // below the typical 100×+, so this is robust to CI noise.
    let g0 = delaunay(&DelaunayConfig {
        points: 4000,
        seed: 9,
        ..Default::default()
    })
    .unwrap();
    let h0 = GrassSparsifier::default()
        .by_offtree_density(&g0, 0.10)
        .unwrap();
    let mut engine = InGrassEngine::setup(&h0.graph, &SetupConfig::default()).unwrap();
    let stream = InsertionStream::paper_default(&g0, 3);

    let mut d = DynGraph::from_graph(&g0);
    for batch in stream.batches() {
        for &(u, v, w) in batch {
            d.add_edge(u.into(), v.into(), w).unwrap();
        }
    }
    let g_now = d.to_graph();

    let t = Instant::now();
    for batch in stream.batches() {
        engine
            .insert_batch(batch, &UpdateConfig::default())
            .unwrap();
    }
    let t_ingrass = t.elapsed();

    let t = Instant::now();
    let _ = GrassSparsifier::default()
        .by_offtree_density(&g_now, 0.12)
        .unwrap();
    let t_grass = t.elapsed();

    assert!(
        t_ingrass.as_secs_f64() * 3.0 < t_grass.as_secs_f64() * 10.0,
        "inGRASS 10-iteration updates ({t_ingrass:?}) should beat 10 GRASS re-runs (10 × {t_grass:?})"
    );
}
