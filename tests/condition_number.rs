//! Cross-validation of the iterative condition-number estimator against a
//! dense generalized eigendecomposition on small graphs.

use ingrass_repro::linalg::DenseMatrix;
use ingrass_repro::prelude::*;

/// Dense reference: eigenvalues of `L_H⁺ L_G` on the complement of the
/// constant vector, via projecting both Laplacians onto an explicit
/// orthonormal basis of `1⊥` and solving the dense pencil there with the
/// substitution `B = R Rᵀ` (Cholesky) → standard eigenproblem.
fn dense_pencil_extremes(g: &Graph, h: &Graph) -> (f64, f64) {
    let n = g.num_nodes();
    // Orthonormal basis of 1⊥: Householder-ish — columns of the identity
    // minus the mean, re-orthonormalised via Gram-Schmidt on the fly.
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(n - 1);
    for i in 0..n - 1 {
        let mut v = vec![-1.0 / n as f64; n];
        v[i] += 1.0;
        // Orthogonalise against previous basis vectors.
        for b in &basis {
            let c: f64 = v.iter().zip(b).map(|(a, b)| a * b).sum();
            for (vi, bi) in v.iter_mut().zip(b) {
                *vi -= c * bi;
            }
        }
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        for vi in v.iter_mut() {
            *vi /= norm;
        }
        basis.push(v);
    }
    let lg = DenseMatrix::from_csr(&g.laplacian());
    let lh = DenseMatrix::from_csr(&h.laplacian());
    let project = |m: &DenseMatrix| -> DenseMatrix {
        let k = basis.len();
        let mut out = DenseMatrix::zeros(k, k);
        for (i, bi) in basis.iter().enumerate() {
            let mbi = m.matvec(bi);
            for (j, bj) in basis.iter().enumerate() {
                let v: f64 = mbi.iter().zip(bj).map(|(a, b)| a * b).sum();
                out.set(j, i, v);
            }
        }
        out
    };
    let a = project(&lg);
    let b = project(&lh);
    // B = L Lᵀ; pencil (A, B) ≅ symmetric L⁻¹ A L⁻ᵀ.
    let l = b.cholesky().expect("projected L_H is SPD on 1⊥");
    let k = basis.len();
    // Solve L X = A (forward substitution per column), then L Y = Xᵀ.
    let fwd = |l: &DenseMatrix, m: &DenseMatrix| -> DenseMatrix {
        let mut out = DenseMatrix::zeros(k, k);
        for col in 0..k {
            let mut y = vec![0.0; k];
            for i in 0..k {
                let mut acc = m.get(i, col);
                for j in 0..i {
                    acc -= l.get(i, j) * y[j];
                }
                y[i] = acc / l.get(i, i);
            }
            for i in 0..k {
                out.set(i, col, y[i]);
            }
        }
        out
    };
    let x = fwd(&l, &a);
    // transpose x then forward-substitute again: C = L⁻¹ A L⁻ᵀ.
    let mut xt = DenseMatrix::zeros(k, k);
    for i in 0..k {
        for j in 0..k {
            xt.set(i, j, x.get(j, i));
        }
    }
    let c = fwd(&l, &xt);
    let (vals, _) = c.symmetric_eigen().expect("dense eigen");
    (vals[0], *vals.last().unwrap())
}

#[test]
fn iterative_estimator_matches_dense_reference_on_subgraph() {
    let g = grid_2d(6, 6, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 4);
    let h = GrassSparsifier::default()
        .by_offtree_density(&g, 0.2)
        .unwrap()
        .graph;
    let (lo, hi) = dense_pencil_extremes(&g, &h);
    let est = estimate_condition_number(&g, &h, &ConditionOptions::default()).unwrap();
    assert!(
        (est.lambda_max - hi).abs() / hi < 0.02,
        "λmax {} vs dense {}",
        est.lambda_max,
        hi
    );
    assert!(
        (est.lambda_min - lo).abs() / lo < 0.05,
        "λmin {} vs dense {}",
        est.lambda_min,
        lo
    );
    let dense_kappa = hi / lo;
    assert!(
        (est.kappa - dense_kappa).abs() / dense_kappa < 0.06,
        "κ {} vs dense {}",
        est.kappa,
        dense_kappa
    );
}

#[test]
fn iterative_estimator_matches_dense_reference_on_reweighted_sparsifier() {
    // Reweighted H (inGRASS-style weight absorption) — λmin ≠ 1.
    let g = grid_2d(5, 5, WeightModel::Unit, 1);
    let h0 = GrassSparsifier::default()
        .by_offtree_density(&g, 0.2)
        .unwrap()
        .graph;
    let edges: Vec<(usize, usize, f64)> = h0
        .edges()
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let scale = if i % 3 == 0 { 1.8 } else { 1.0 };
            (e.u.index(), e.v.index(), e.weight * scale)
        })
        .collect();
    let h = Graph::from_edges(25, &edges).unwrap();
    let (lo, hi) = dense_pencil_extremes(&g, &h);
    assert!(lo < 1.0, "reweighting must push λmin below 1, got {lo}");
    let est = estimate_condition_number(&g, &h, &ConditionOptions::default()).unwrap();
    assert!((est.lambda_max - hi).abs() / hi < 0.03);
    assert!((est.lambda_min - lo).abs() / lo < 0.06);
}

#[test]
fn subgraph_lambda_min_is_one() {
    // For a strict subgraph with unchanged weights, λmin(L_H⁺L_G) = 1
    // exactly (G = H + extra PSD terms).
    let g = grid_2d(7, 7, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 8);
    let h = GrassSparsifier::default()
        .by_offtree_density(&g, 0.3)
        .unwrap()
        .graph;
    let est = estimate_condition_number(&g, &h, &ConditionOptions::default()).unwrap();
    assert!(
        (est.lambda_min - 1.0).abs() < 1e-3,
        "λmin {}",
        est.lambda_min
    );
    assert!(est.lambda_max >= 1.0);
    assert!((est.kappa - est.lambda_max).abs() / est.kappa < 2e-3);
}
