//! Deletion-parity companion to `incremental_vs_scratch.rs`: applying a
//! mixed churn stream (insertions + deletions + reweights) incrementally
//! through the operation-log engine must land near a from-scratch GRASS
//! sparsification of the final graph in quality, while the drift tracker
//! keeps the cached LRD embedding honest via automatic re-setups.

use ingrass_repro::prelude::*;

#[test]
fn churn_incremental_matches_scratch_condition_number() {
    // Seeds are pinned to the vendored deterministic RNG stream (see
    // vendor/README.md); the comparison below is reproducible bit-for-bit.
    let g0 = grid_2d(26, 26, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 2);
    let cond_opts = ConditionOptions::default();
    let h0 = GrassSparsifier::default()
        .by_offtree_density(&g0, 0.10)
        .unwrap();
    let target = estimate_condition_number(&g0, &h0.graph, &cond_opts)
        .unwrap()
        .lambda_max;

    // The paper-shaped mixed stream: ~24 % of the off-tree edge count over
    // 10 batches, a quarter deleting, 15 % reweighting (the same sizing the
    // perf harness benchmarks).
    let stream = ChurnStream::paper_default(&g0, 42);
    assert!(stream.deletes() > 0 && stream.reweights() > 0);
    let g_final = stream.apply_to(&g0).unwrap();

    // Incremental: the operation-log engine under the default drift policy.
    let mut engine = InGrassEngine::setup(&h0.graph, &SetupConfig::default()).unwrap();
    let cfg = UpdateConfig {
        target_condition: target,
        ..Default::default()
    };
    let mut trajectory = ConditionTrajectory::new();
    for (i, batch) in stream.batches().iter().enumerate() {
        let ops = churn_to_update_ops(batch);
        let report = engine.apply_batch(&ops, &cfg).unwrap();
        assert_eq!(report.total_processed(), ops.len());
        trajectory.record_values(i, f64::NAN, f64::NAN, report.resetup.is_some());
    }
    let h_inc = engine.sparsifier_graph();
    let ingrass_lmax = estimate_condition_number(&g_final, &h_inc, &cond_opts)
        .unwrap()
        .lambda_max;

    // The engine restored the user's target within 10 % despite the churn.
    assert!(
        ingrass_lmax <= 1.10 * target,
        "churn inGRASS λmax {ingrass_lmax} misses target {target}"
    );

    // From-scratch setup on the final graph at the *same density budget* as
    // the incrementally maintained sparsifier (apples to apples: GRASS's
    // condition-targeted search may over- or under-shoot density, which
    // would compare selection quality at different sizes).
    let off_final = g_final.num_edges() - (g_final.num_nodes() - 1);
    let d_match = (h_inc.num_edges() - (g_final.num_nodes() - 1)) as f64 / off_final as f64;
    let scratch = GrassSparsifier::default()
        .by_offtree_density(&g_final, d_match)
        .unwrap();
    let scratch_lmax = estimate_condition_number(&g_final, &scratch.graph, &cond_opts)
        .unwrap()
        .lambda_max;

    // Parity: at matched density, the incrementally maintained sparsifier's
    // condition measure stays within 10 % of the from-scratch setup.
    assert!(
        ingrass_lmax <= 1.10 * scratch_lmax,
        "churn inGRASS λmax {ingrass_lmax} vs from-scratch {scratch_lmax} (ratio {:.3})",
        ingrass_lmax / scratch_lmax
    );

    // The sparsifier physically followed the deletions: its edge count
    // stays in the same regime as the from-scratch result instead of
    // growing monotonically like the insert-only path would.
    let density = SparsifierDensity::new(g0.num_nodes());
    let d_inc = density.report_graphs(&h_inc, &g0).off_tree;
    let d_scratch = density.report_graphs(&scratch.graph, &g0).off_tree;
    assert!(
        d_inc <= 1.5 * d_scratch.max(0.05),
        "churn inGRASS density {d_inc} vs from-scratch {d_scratch}"
    );
}

#[test]
fn aggressive_drift_policy_resetups_and_recovers_quality() {
    let g0 = grid_2d(20, 20, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 5);
    let cond_opts = ConditionOptions::default();
    let h0 = GrassSparsifier::default()
        .by_offtree_density(&g0, 0.10)
        .unwrap();
    let target = estimate_condition_number(&g0, &h0.graph, &cond_opts)
        .unwrap()
        .lambda_max;

    // Heavier deletion mix + a hair-trigger drift policy: the ledger must
    // request at least one automatic re-setup along the way.
    let stream = ChurnStream::generate(
        &g0,
        &ChurnConfig {
            batches: 8,
            ops_per_batch: 30,
            delete_fraction: 0.45,
            reweight_fraction: 0.15,
            seed: 7,
            ..Default::default()
        },
    );
    let setup_cfg = SetupConfig::default().with_drift(DriftPolicy {
        max_deleted_weight_fraction: 0.01,
        max_distortion_fraction: 1e9,
        max_cluster_staleness: u32::MAX,
        auto_resetup: true,
    });
    let mut engine = InGrassEngine::setup(&h0.graph, &setup_cfg).unwrap();
    let cfg = UpdateConfig {
        target_condition: target,
        ..Default::default()
    };
    let g_final = stream.apply_to(&g0).unwrap();
    let mut trajectory = ConditionTrajectory::new();
    for (i, batch) in stream.batches().iter().enumerate() {
        let ops = churn_to_update_ops(batch);
        let report = engine.apply_batch(&ops, &cfg).unwrap();
        let est = estimate_condition_number(&g_final, &engine.sparsifier_graph(), &cond_opts);
        // The evolving sparsifier vs the *final* graph is only meaningful
        // for the trajectory bookkeeping; tolerate estimator failure on
        // intermediate states.
        if let Ok(est) = est {
            trajectory.record(i, &est, report.resetup.is_some());
        } else {
            trajectory.record_values(i, f64::NAN, f64::NAN, report.resetup.is_some());
        }
    }
    assert!(
        engine.resetups() >= 1,
        "hair-trigger drift policy never re-ran setup (ledger: {:?})",
        engine.ledger()
    );
    assert_eq!(trajectory.resetups(), engine.resetups());
    assert!(ingrass_repro::graph::is_connected(
        &engine.sparsifier_graph()
    ));

    // Quality after churn + re-setups stays within the same generous factor
    // the insertion-only comparison uses.
    let lmax = estimate_condition_number(&g_final, &engine.sparsifier_graph(), &cond_opts)
        .unwrap()
        .lambda_max;
    let scratch = GrassSparsifier::default()
        .to_condition(&g_final, target, &cond_opts)
        .unwrap();
    let scratch_lmax = estimate_condition_number(&g_final, &scratch.graph, &cond_opts)
        .unwrap()
        .lambda_max;
    assert!(
        lmax <= 3.0 * scratch_lmax.max(1.0),
        "post-churn λmax {lmax} vs scratch {scratch_lmax}"
    );
}
