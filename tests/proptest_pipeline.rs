//! Property-based integration tests: pipeline invariants must hold for
//! arbitrary seeds, densities, stream shapes and targets.

use ingrass_repro::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The whole pipeline — generate → sparsify → setup → update — keeps
    /// the sparsifier connected, conserves inserted weight, and never grows
    /// H beyond "tree + all off-tree + all stream edges".
    #[test]
    fn pipeline_invariants(
        seed in 0u64..1000,
        density in 0.05f64..0.35,
        batches in 1usize..6,
        per_batch in 5usize..40,
        locality in 0.0f64..1.0,
        target in 8.0f64..500.0,
    ) {
        let g0 = grid_2d(12, 12, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, seed);
        let h0 = GrassSparsifier::default().by_offtree_density(&g0, density).unwrap();
        let mut engine = InGrassEngine::setup(&h0.graph, &SetupConfig::default()).unwrap();
        let stream = InsertionStream::generate(&g0, &StreamConfig {
            batches,
            edges_per_batch: per_batch,
            locality,
            local_hops: 2,
            seed: seed ^ 0xabcd,
        });
        let cfg = UpdateConfig { target_condition: target, ..Default::default() };
        let w_before = engine.sparsifier().total_weight();
        let mut inserted_weight = 0.0;
        let mut included_total = 0usize;
        for batch in stream.batches() {
            inserted_weight += batch.iter().map(|&(_, _, w)| w).sum::<f64>();
            let r = engine.insert_batch(batch, &cfg).unwrap();
            prop_assert_eq!(r.total_processed(), batch.len());
            included_total += r.included;
        }
        let h_now = engine.sparsifier_graph();
        prop_assert!(ingrass_repro::graph::is_connected(&h_now));
        // Weight conservation.
        let w_after = engine.sparsifier().total_weight();
        prop_assert!((w_after - w_before - inserted_weight).abs()
            < 1e-7 * (1.0 + inserted_weight));
        // Edge-count accounting: exactly `included_total` new edges.
        prop_assert_eq!(h_now.num_edges(), h0.graph.num_edges() + included_total);
    }

    /// Sparsification quality is monotone-ish in density: κ at density d₂
    /// must not exceed κ at density d₁ < d₂ by more than estimator noise.
    #[test]
    fn grass_density_quality_tradeoff(seed in 0u64..200) {
        let g = grid_2d(12, 12, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, seed);
        let grass = GrassSparsifier::default();
        let sparse = grass.by_offtree_density(&g, 0.05).unwrap();
        let dense = grass.by_offtree_density(&g, 0.5).unwrap();
        let opts = ConditionOptions::default();
        let k_sparse = estimate_condition_number(&g, &sparse.graph, &opts).unwrap().lambda_max;
        let k_dense = estimate_condition_number(&g, &dense.graph, &opts).unwrap().lambda_max;
        prop_assert!(k_dense <= k_sparse * 1.05,
            "density 0.5 gave λmax {k_dense} vs {k_sparse} at 0.05");
    }

    /// The LRD resistance bound from the engine is symmetric, positive for
    /// distinct nodes, and an upper bound of the exact resistance when the
    /// setup uses exact edge-level inputs (JL backend, high dim).
    #[test]
    fn resistance_bounds_are_sane(seed in 0u64..200, u in 0usize..64, v in 0usize..64) {
        prop_assume!(u != v);
        let g = grid_2d(8, 8, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, seed);
        let engine = InGrassEngine::setup(&g, &SetupConfig::default()).unwrap();
        let a = engine.hierarchy().resistance_bound(u.into(), v.into());
        let b = engine.hierarchy().resistance_bound(v.into(), u.into());
        prop_assert_eq!(a, b);
        prop_assert!(a > 0.0);
        prop_assert!(a.is_finite());
        // Distortion scales linearly in weight.
        let d1 = engine.estimate_distortion(u.into(), v.into(), 1.0);
        let d2 = engine.estimate_distortion(u.into(), v.into(), 2.0);
        prop_assert!((d2 - 2.0 * d1).abs() < 1e-12);
    }
}
