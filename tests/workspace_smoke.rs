//! Workspace-surface smoke test: the README/lib.rs quickstart path must work
//! end-to-end through the *facade* crate exactly as documented — generate a
//! workload, sparsify it with GRASS, run inGRASS setup, stream in a batch —
//! with exact accounting on the update report and the sparsifier state.
//!
//! Everything here is deterministic (fixed seeds, vendored deterministic
//! RNG), so every assertion can be exact or tight.

use ingrass_repro::prelude::*;

#[test]
fn quickstart_path_end_to_end() {
    // 1. A workload graph and its initial sparsifier (the quickstart from
    //    `src/lib.rs`, slightly enlarged).
    let g0 = grid_2d(16, 16, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 1);
    assert_eq!(g0.num_nodes(), 256);
    // A 16×16 grid has 2·16·15 = 480 edges.
    assert_eq!(g0.num_edges(), 480);

    let h0 = GrassSparsifier::default()
        .by_offtree_density(&g0, 0.10)
        .unwrap();
    // Spanning tree (255 edges) + 10 % of the 225 off-tree edges.
    assert_eq!(h0.tree_edges, g0.num_nodes() - 1);
    let offtree_kept = h0.graph.num_edges() - h0.tree_edges;
    assert_eq!(offtree_kept, ((480 - 255) as f64 * 0.10).round() as usize);
    assert!(ingrass_repro::graph::is_connected(&h0.graph));

    // 2. inGRASS setup (once).
    let mut engine = InGrassEngine::setup(&h0.graph, &SetupConfig::default()).unwrap();
    let setup = engine.setup_report().clone();
    assert_eq!(setup.nodes, 256);
    assert_eq!(setup.edges, h0.graph.num_edges());
    // The LRD hierarchy is the O(log N) embedding: more than one level,
    // no deeper than the engine could ever need.
    assert!(setup.levels > 1, "levels {}", setup.levels);
    assert!(setup.levels <= 64, "levels {}", setup.levels);

    // 3. O(log N) incremental updates.
    let edges_before = engine.sparsifier().num_edges();
    let weight_before = engine.sparsifier().total_weight();
    let batch: &[(usize, usize, f64)] = &[(0, 200, 1.0), (3, 40, 0.8), (17, 18, 2.0)];
    let report = engine
        .insert_batch(
            batch,
            &UpdateConfig {
                target_condition: 80.0,
                ..Default::default()
            },
        )
        .unwrap();

    // Exact accounting: every edge of the batch is processed exactly once
    // and lands in exactly one outcome bucket.
    assert_eq!(report.batch_size, batch.len());
    assert_eq!(report.total_processed(), batch.len());
    assert_eq!(
        report.included + report.merged + report.redistributed,
        batch.len()
    );

    // The sparsifier grew by exactly the number of *included* edges, and
    // absorbed the whole inserted weight regardless of outcome.
    let h1 = engine.sparsifier_graph();
    assert_eq!(h1.num_edges(), edges_before + report.included);
    let inserted: f64 = batch.iter().map(|&(_, _, w)| w).sum();
    let weight_after = engine.sparsifier().total_weight();
    assert!(
        (weight_after - weight_before - inserted).abs() < 1e-9,
        "weight before {weight_before} + inserted {inserted} != after {weight_after}"
    );

    // The updated sparsifier stays connected and spans the same nodes.
    assert_eq!(h1.num_nodes(), 256);
    assert!(ingrass_repro::graph::is_connected(&h1));
}

#[test]
fn facade_modules_cover_every_crate() {
    // One call through each re-exported module proves the facade wiring
    // (`pub use` in src/lib.rs) resolves against the real crate names.
    let g = grid_2d(6, 6, WeightModel::Unit, 0);

    // graph
    assert!(ingrass_repro::graph::is_connected(&g));
    // linalg
    let lap = g.laplacian();
    let dense = ingrass_repro::linalg::DenseMatrix::from_csr(&lap);
    assert_eq!(dense.n_rows(), 36);
    // resistance
    let exact = ExactResistance::dense(&g).unwrap();
    assert!(exact.resistance(0.into(), 35.into()) > 0.0);
    // baselines
    let h = GrassSparsifier::default()
        .by_offtree_density(&g, 0.2)
        .unwrap();
    // metrics
    let est = estimate_condition_number(&g, &h.graph, &ConditionOptions::default()).unwrap();
    assert!(est.kappa >= 1.0 - 1e-6);
    // core
    let engine = InGrassEngine::setup(&h.graph, &SetupConfig::default()).unwrap();
    assert!(!engine.hierarchy().levels().is_empty());
    // gen (stream side)
    let stream = InsertionStream::generate(
        &g,
        &StreamConfig {
            batches: 2,
            edges_per_batch: 3,
            locality: 0.5,
            local_hops: 2,
            seed: 7,
        },
    );
    assert_eq!(stream.batches().len(), 2);
    assert_eq!(stream.total_edges(), 6);
}

#[test]
fn update_is_deterministic_across_runs() {
    // Two identical pipelines must agree bit-for-bit: the tier-1 verify
    // depends on run-to-run determinism of the whole stack.
    let run = || {
        let g0 = grid_2d(12, 12, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 5);
        let h0 = GrassSparsifier::default()
            .by_offtree_density(&g0, 0.15)
            .unwrap();
        let mut engine = InGrassEngine::setup(&h0.graph, &SetupConfig::default()).unwrap();
        let stream = InsertionStream::paper_default(&g0, 11);
        let cfg = UpdateConfig {
            target_condition: 50.0,
            ..Default::default()
        };
        let mut outcome = Vec::new();
        for batch in stream.batches() {
            let r = engine.insert_batch(batch, &cfg).unwrap();
            outcome.push((r.included, r.merged, r.redistributed, r.filtering_level));
        }
        (outcome, engine.sparsifier().total_weight())
    };
    let (a, wa) = run();
    let (b, wb) = run();
    assert_eq!(a, b);
    assert_eq!(wa.to_bits(), wb.to_bits());
}
