//! Property suite for the snapshot layer: over random interleavings of
//! `apply_batch` / `snapshot` / `solve`, published snapshots stay
//! internally consistent, their `(epoch, version, sequence)` tags are
//! monotone, old snapshots keep answering exactly after drift-triggered
//! re-setups, and dropped snapshots free their factors.

use ingrass_repro::linalg::{pcg, CgOptions};
use ingrass_repro::prelude::*;
use ingrass_repro::{churn_to_update_ops, test_seed};
use proptest::prelude::*;
use std::sync::Arc;

fn fixture(seed: u64, drift: DriftPolicy) -> (Graph, SnapshotEngine, ChurnStream) {
    let g = grid_2d(10, 10, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, seed);
    let h0 = GrassSparsifier::default()
        .by_offtree_density(&g, 0.25)
        .expect("sparsifier")
        .graph;
    let engine = SnapshotEngine::setup(
        &h0,
        &SetupConfig::default().with_seed(seed).with_drift(drift),
    )
    .expect("setup");
    let churn = ChurnStream::generate(
        &g,
        &ChurnConfig {
            batches: 24,
            ops_per_batch: 6,
            seed: seed ^ 0xc0de,
            ..Default::default()
        },
    );
    (g, engine, churn)
}

/// Solves the snapshot's *own* Laplacian with its own factor: must take at
/// most 2 PCG iterations (the factor is exact for that state) and meet
/// tolerance.
fn assert_snapshot_self_consistent(snap: &SparsifierSnapshot) {
    assert!(snap.verify_checksum(), "torn/corrupted snapshot");
    let n = snap.num_nodes();
    let mut b = vec![0.0; n];
    b[n / 4] = 1.0;
    b[(3 * n) / 4] = -1.0;
    let ones = vec![1.0; n];
    let mut x = vec![0.0; n];
    let res = pcg(
        snap.laplacian(),
        &b,
        &mut x,
        snap.preconditioner(),
        Some(&ones),
        &CgOptions::default(),
    );
    assert!(res.converged, "self-solve diverged: {res:?}");
    assert!(
        res.iterations <= 2,
        "factor not exact for its own state: {} iterations (version {})",
        res.iterations,
        snap.version()
    );
    // Sanity of the resistance surface on the same frozen state.
    let r = snap.effective_resistance((n / 4).into(), ((3 * n) / 4).into());
    assert!((r - (x[n / 4] - x[(3 * n) / 4])).abs() < 1e-8);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random interleavings of writer batches, snapshot grabs, and solves:
    /// tags are monotone (same-sequence grabs are the same `Arc`), every
    /// grabbed snapshot is internally consistent at grab time AND at the
    /// end of the run (nothing the writer did later mutated it).
    #[test]
    fn prop_interleavings_publish_monotone_consistent_snapshots(
        case_seed in 0u64..1000,
        script in proptest::collection::vec(0u8..3, 4..24),
    ) {
        let seed = test_seed() ^ case_seed;
        let (_g, mut engine, churn) = fixture(seed, DriftPolicy::default());
        let ucfg = UpdateConfig::default();
        let mut batches = churn.batches().iter().cycle();
        let mut held: Vec<Arc<SparsifierSnapshot>> = vec![engine.snapshot()];

        for action in script {
            match action {
                0 => {
                    let ops = churn_to_update_ops(batches.next().expect("cycled"));
                    let report = engine.apply_batch(&ops, &ucfg).expect("batch");
                    if !ops.is_empty() {
                        let p = report.publish.expect("state changed, must publish");
                        prop_assert_eq!(p.version, engine.engine().version());
                    }
                }
                1 => {
                    let snap = engine.snapshot();
                    // The tag equals the engine state at grab time.
                    prop_assert_eq!(snap.version(), engine.engine().version());
                    prop_assert_eq!(snap.epoch(), engine.engine().epoch());
                    held.push(snap);
                }
                _ => {
                    let snap = held.last().expect("setup snapshot always held");
                    assert_snapshot_self_consistent(snap);
                }
            }
        }

        // Monotonicity across everything grabbed, in grab order; equal
        // sequence numbers mean literally the same snapshot.
        for w in held.windows(2) {
            prop_assert!(w[1].sequence() >= w[0].sequence());
            prop_assert!(w[1].version() >= w[0].version());
            prop_assert!(w[1].epoch() >= w[0].epoch());
            if w[1].sequence() == w[0].sequence() {
                prop_assert!(Arc::ptr_eq(&w[0], &w[1]));
            }
        }
        // Old snapshots survived whatever the writer did afterwards.
        for snap in &held {
            assert_snapshot_self_consistent(snap);
        }
    }

    /// A snapshot grabbed before a drift-triggered re-setup keeps serving
    /// exactly for its own (old-epoch) state, while new publishes carry
    /// the new epoch.
    #[test]
    fn prop_old_snapshots_stay_valid_after_drift_resetup(
        case_seed in 0u64..1000,
    ) {
        let seed = test_seed() ^ case_seed.rotate_left(11);
        // Eager policy: deletions cross the threshold quickly.
        let (_g, mut engine, churn) = fixture(
            seed,
            DriftPolicy {
                max_deleted_weight_fraction: 0.02,
                ..Default::default()
            },
        );
        let old = engine.snapshot();
        prop_assert_eq!(old.epoch(), 0);

        let ucfg = UpdateConfig::default();
        let mut resetup_seen = false;
        for batch in churn.batches() {
            let report = engine
                .apply_batch(&churn_to_update_ops(batch), &ucfg)
                .expect("batch");
            if report.update.resetup.is_some() {
                resetup_seen = true;
                break;
            }
        }
        if !resetup_seen {
            // Deletion mix can be starved for extreme seeds; the epoch
            // transition under test is the same either way.
            engine.resetup().expect("forced resetup");
        }
        let new = engine.snapshot();
        prop_assert!(new.epoch() > old.epoch());
        prop_assert!(new.version() > old.version());

        // The old epoch's view is fully intact and still exact.
        prop_assert_eq!(old.epoch(), 0);
        assert_snapshot_self_consistent(&old);
        assert_snapshot_self_consistent(&new);
    }

    /// Dropping every handle to an unpublished snapshot frees it (and its
    /// factor) even while the engine keeps publishing.
    #[test]
    fn prop_dropped_snapshots_free_their_factors(
        case_seed in 0u64..1000,
        publishes in 1usize..5,
    ) {
        let seed = test_seed() ^ case_seed.rotate_left(23);
        let (_g, mut engine, churn) = fixture(seed, DriftPolicy::never());
        let ucfg = UpdateConfig::default();

        let mut weaks = Vec::new();
        let mut batches = churn.batches().iter().cycle();
        for _ in 0..publishes {
            let snap = engine.snapshot();
            weaks.push(Arc::downgrade(&snap));
            drop(snap);
            // Still alive: the cell references it as current.
            prop_assert!(weaks.last().unwrap().upgrade().is_some());
            engine
                .apply_batch(&churn_to_update_ops(batches.next().expect("cycled")), &ucfg)
                .expect("batch");
        }
        // Every superseded snapshot is gone; only the current one lives.
        for (i, weak) in weaks.iter().enumerate() {
            prop_assert!(
                weak.upgrade().is_none(),
                "superseded snapshot {i} still alive"
            );
        }
        let current = engine.snapshot();
        let weak_current = Arc::downgrade(&current);
        drop(current);
        prop_assert!(weak_current.upgrade().is_some(), "current must stay published");
    }
}
