//! Acceptance suite for the solve subsystem on the small-scale bench
//! cases: sparsifier-preconditioned PCG on the original Laplacian must
//! converge in at most 1/3 the iterations of unpreconditioned CG, and a
//! warm (cached-factorization) solve after a non-re-setup update batch
//! must skip refactorization. Mirrors the `solve/<case>` scenarios the
//! perf harness records in `BENCH_2.json`.

use ingrass_repro::linalg::CsrMatrix;
use ingrass_repro::prelude::*;
use ingrass_repro::solve::unpreconditioned_cg;
use ingrass_repro::test_seed;

/// The perf harness's case axis at its `small` fraction, with the
/// solve-grade sparsifier density the `solve/<case>` scenarios use.
const SCALE: f64 = 0.05;
const SOLVE_DENSITY: f64 = 0.30;

fn solve_fixture(case: TestCase, seed: u64) -> (Graph, CsrMatrix, InGrassEngine) {
    let g = case.build(SCALE, seed);
    let h0 = GrassSparsifier::default()
        .by_offtree_density(&g, SOLVE_DENSITY)
        .expect("solve-grade sparsifier")
        .graph;
    let engine = InGrassEngine::setup(&h0, &SetupConfig::default().with_seed(seed)).expect("setup");
    let l_g = g.laplacian();
    (g, l_g, engine)
}

fn pair_rhs(n: usize, u: usize, v: usize) -> Vec<f64> {
    let mut b = vec![0.0; n];
    b[u] = 1.0;
    b[v] = -1.0;
    b
}

#[test]
fn preconditioned_pcg_needs_at_most_a_third_of_cg_iterations() {
    let seed = test_seed();
    for case in [
        TestCase::Fe4elt2,
        TestCase::FeSphere,
        TestCase::G2Circuit,
        TestCase::DelaunayN18,
    ] {
        let (g, l_g, engine) = solve_fixture(case, seed);
        let n = g.num_nodes();
        let rhss = vec![pair_rhs(n, n / 7, n - 3), pair_rhs(n, 1, n / 2)];
        let mut svc = SolveService::new(SolveConfig::default());
        let (_, report) = svc.solve_batch(&engine, &l_g, &rhss).expect("pcg batch");
        assert!(
            report.all_converged(),
            "{}: {:?}",
            case.name(),
            report.results
        );
        for (b, pcg_res) in rhss.iter().zip(&report.results) {
            let (_, cg) = unpreconditioned_cg(&l_g, b, &SolveConfig::default().cg);
            assert!(cg.converged, "{}: plain CG failed", case.name());
            assert!(
                pcg_res.iterations * 3 <= cg.iterations,
                "{}: pcg {} iterations vs cg {} — ratio below 3x",
                case.name(),
                pcg_res.iterations,
                cg.iterations
            );
        }
    }
}

#[test]
fn jacobi_and_tree_fallback_strategies_converge() {
    // Only Cholesky was pinned by this suite before; the fallbacks must
    // also converge on a real bench case (they are what `Auto` degrades to
    // above the node ceiling). Cholesky stays the strongest of the three.
    let seed = test_seed();
    let (g, l_g, engine) = solve_fixture(TestCase::Fe4elt2, seed);
    let n = g.num_nodes();
    let rhss = vec![pair_rhs(n, 0, n - 1), pair_rhs(n, n / 3, (2 * n) / 3)];

    let mut iterations = std::collections::HashMap::new();
    for (strategy, expect) in [
        (PrecondStrategy::Cholesky, PrecondKind::Cholesky),
        (PrecondStrategy::Jacobi, PrecondKind::Jacobi),
        (PrecondStrategy::Tree, PrecondKind::Tree),
    ] {
        let mut svc = SolveService::new(SolveConfig {
            strategy,
            ..Default::default()
        });
        let (_, report) = svc.solve_batch(&engine, &l_g, &rhss).expect("batch");
        assert_eq!(report.precond, expect, "{strategy:?} resolved wrong");
        assert!(
            report.all_converged(),
            "{strategy:?} failed to converge: {:?}",
            report.results
        );
        if expect == PrecondKind::Cholesky {
            assert!(report.factor_nnz > 0, "cholesky must report factor fill");
        } else {
            assert_eq!(report.factor_nnz, 0, "{strategy:?} carries no factor");
        }
        iterations.insert(expect, report.total_iterations());
    }
    // The exact factor dominates both fallbacks on iteration count.
    assert!(iterations[&PrecondKind::Cholesky] <= iterations[&PrecondKind::Jacobi]);
    assert!(iterations[&PrecondKind::Cholesky] <= iterations[&PrecondKind::Tree]);
}

#[test]
fn auto_picks_the_documented_strategy_at_the_node_ceiling() {
    // Documented: Cholesky while nodes ≤ ceiling, spanning tree above —
    // pin both sides of the boundary exactly.
    let seed = test_seed();
    let (g, l_g, engine) = solve_fixture(TestCase::Fe4elt2, seed);
    let n = g.num_nodes();
    for (ceiling, expect) in [
        (n, PrecondKind::Cholesky), // at the ceiling: still Cholesky
        (n - 1, PrecondKind::Tree), // one past it: tree fallback
        (usize::MAX, PrecondKind::Cholesky),
        (1, PrecondKind::Tree),
    ] {
        let mut svc = SolveService::new(SolveConfig {
            strategy: PrecondStrategy::Auto {
                max_cholesky_nodes: ceiling,
            },
            ..Default::default()
        });
        let (_, report) = svc
            .solve(&engine, &l_g, &pair_rhs(n, 1, n - 2))
            .expect("auto solve");
        assert_eq!(
            report.precond, expect,
            "Auto at ceiling {ceiling} with n = {n} resolved wrong"
        );
        assert!(report.all_converged());
    }
}

#[test]
fn engine_stats_stay_accessible_between_solves() {
    // Regression for the borrow story: the service must borrow the engine
    // *shared* and only for the duration of one call, so stats accessors
    // and further update batches interleave freely with solves. (A service
    // holding `&mut Engine` across a batch would fail to compile here.)
    let seed = test_seed();
    let (g, l_g, mut engine) = solve_fixture(TestCase::Fe4elt2, seed);
    let n = g.num_nodes();
    let mut svc = SolveService::new(SolveConfig::default());
    let stream = InsertionStream::paper_default(&g, seed ^ 0x57ea);

    let mut epochs = Vec::new();
    for batch in stream.batches().iter().take(3) {
        let (_, report) = svc
            .solve(&engine, &l_g, &pair_rhs(n, 0, n - 1))
            .expect("solve");
        // Stats accessors between solves, while the service is live.
        epochs.push((engine.epoch(), engine.resetups(), engine.version()));
        assert_eq!(report.epoch, engine.epoch());
        // And a mutation between solves: the service's borrow has ended.
        engine
            .insert_batch(batch, &UpdateConfig::default())
            .expect("update between solves");
    }
    assert_eq!(epochs.len(), 3);
    assert!(svc.stats().batches >= 3);

    // The snapshot path narrows further: no engine borrow at all while a
    // batch is served, so a held snapshot keeps serving across arbitrary
    // engine mutations — including a re-setup.
    let snapshot_engine = SnapshotEngine::from_engine(engine).expect("wrap");
    let snap = snapshot_engine.snapshot();
    let mut snapshot_engine = snapshot_engine;
    snapshot_engine.resetup().expect("resetup");
    let (_, report) = svc
        .solve_snapshot_batch(&snap, &l_g, &[pair_rhs(n, 2, n / 2)])
        .expect("snapshot solve");
    assert!(report.all_converged());
    assert!(!report.refactorized);
    assert_eq!(report.epoch, snap.epoch());
    assert_eq!(
        snap.epoch() + 1,
        snapshot_engine.engine().epoch(),
        "snapshot kept its pre-resetup epoch tag"
    );
    assert_eq!(svc.stats().snapshot_batches, 1);
}

#[test]
fn warm_solve_after_update_batch_skips_refactorization() {
    let seed = test_seed();
    // One representative case is enough for the cache lifecycle (the ratio
    // test above already walks the whole axis); fe_4elt2 is the smallest.
    let case = TestCase::Fe4elt2;
    let (g, l_g, mut engine) = solve_fixture(case, seed);
    let n = g.num_nodes();
    let mut svc = SolveService::new(SolveConfig::default());

    let (_, cold) = svc
        .solve(&engine, &l_g, &pair_rhs(n, 0, n - 1))
        .expect("cold");
    assert!(cold.refactorized);
    assert!(cold.factor_seconds > 0.0);
    assert_eq!(svc.stats().factorizations, 1);

    // A paper-shaped insertion batch: drift stays below the default policy
    // (insertions add no deleted-weight/distortion drift), so the epoch —
    // and therefore the cached factorization — must survive.
    let stream = InsertionStream::paper_default(&g, seed ^ 0x57ea);
    let report = engine
        .insert_batch(&stream.batches()[0], &UpdateConfig::default())
        .expect("update batch");
    assert!(
        report.resetup.is_none(),
        "insert batch unexpectedly re-setup"
    );

    let (_, warm) = svc
        .solve(&engine, &l_g, &pair_rhs(n, 0, n - 1))
        .expect("warm");
    assert!(!warm.refactorized, "warm solve refactorized");
    assert_eq!(warm.factor_seconds, 0.0);
    assert!(warm.all_converged());
    assert_eq!(svc.stats().factorizations, 1);
    assert_eq!(svc.stats().cache_hits, 1);

    // A drift-triggered re-setup invalidates: force drift with deletions
    // until the policy fires, then the next solve must rebuild.
    let ucfg = UpdateConfig::default();
    let h_now = engine.sparsifier_graph();
    let mut resetup_seen = false;
    for e in h_now.edges().iter().take(h_now.num_edges() / 2) {
        let r = engine
            .apply_batch(
                &[UpdateOp::Delete {
                    u: e.u.index(),
                    v: e.v.index(),
                }],
                &ucfg,
            )
            .expect("delete");
        if r.resetup.is_some() {
            resetup_seen = true;
            break;
        }
    }
    assert!(
        resetup_seen,
        "deletion churn never crossed the drift policy"
    );
    let (_, rebuilt) = svc
        .solve(&engine, &l_g, &pair_rhs(n, 0, n - 1))
        .expect("rebuilt");
    assert!(
        rebuilt.refactorized,
        "re-setup did not invalidate the cache"
    );
    assert_eq!(rebuilt.epoch, engine.epoch());
    assert_eq!(svc.stats().factorizations, 2);
}
