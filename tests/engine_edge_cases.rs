//! Engine edge cases around the operation log: same-batch insert+delete,
//! reweight-then-delete, duplicate inserts of carried edges, deletes of
//! never-inserted edges — asserting the ledger counters and sparsifier
//! weights stay consistent through each.

use ingrass_repro::graph::is_connected;
use ingrass_repro::prelude::*;
use ingrass_repro::test_seed;

fn fixture(side: usize, seed: u64) -> (Graph, InGrassEngine) {
    let g = grid_2d(side, side, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, seed);
    let h0 = GrassSparsifier::default()
        .by_offtree_density(&g, 0.10)
        .expect("initial sparsifier")
        .graph;
    let engine = InGrassEngine::setup(
        &h0,
        &SetupConfig::default()
            .with_seed(seed)
            .with_drift(DriftPolicy::never()),
    )
    .expect("setup");
    (h0, engine)
}

/// A node pair the sparsifier does not carry.
fn non_edge(h: &Graph) -> (usize, usize) {
    let n = h.num_nodes();
    for u in 0..n {
        for v in (u + 1)..n {
            if h.edge_weight(u.into(), v.into()).is_none() {
                return (u, v);
            }
        }
    }
    unreachable!("a 10% off-tree sparsifier is nowhere near complete");
}

#[test]
fn delete_of_edge_inserted_in_the_same_batch() {
    let (h0, mut engine) = fixture(12, test_seed());
    let cfg = UpdateConfig::default();
    let (u, v) = non_edge(&h0);
    let before_w = engine.sparsifier().total_weight();
    let before_e = engine.sparsifier().num_edges();
    // Insert runs are barriers around the delete, so the pair is processed
    // in order: the insert lands (include/merge/redistribute), then the
    // delete undoes whatever physical edge the pair carries — or is
    // vacuous if the weight was absorbed elsewhere.
    let r = engine
        .apply_batch(
            &[
                UpdateOp::Insert { u, v, weight: 3.0 },
                UpdateOp::Delete { u, v },
            ],
            &cfg,
        )
        .expect("batch");
    assert_eq!(r.total_processed(), 2);
    assert_eq!(engine.ledger().inserts(), 1);
    assert_eq!(engine.ledger().deletes() + engine.ledger().vacuous(), 1);
    // No edge-count growth may survive the rip-down.
    assert_eq!(engine.sparsifier().num_edges(), before_e);
    // Weight accounting: everything the insert added beyond what the
    // delete removed stayed inside the sparsifier (merge/redistribute keep
    // absorbed weight), and nothing went negative.
    let after_w = engine.sparsifier().total_weight();
    assert!(
        after_w >= before_w - 1e-9 && after_w <= before_w + 3.0 + 1e-9,
        "weight drifted out of bounds: {before_w} → {after_w}"
    );
    assert!(is_connected(&engine.sparsifier_graph()));
}

#[test]
fn reweight_then_delete_removes_the_new_weight() {
    let (h0, mut engine) = fixture(12, test_seed() ^ 1);
    let cfg = UpdateConfig::default();
    let e = h0.edges()[2];
    let (u, v) = (e.u.index(), e.v.index());
    let before_w = engine.sparsifier().total_weight();
    let r = engine
        .apply_batch(
            &[
                UpdateOp::Reweight {
                    u,
                    v,
                    weight: e.weight * 4.0,
                },
                UpdateOp::Delete { u, v },
            ],
            &cfg,
        )
        .expect("batch");
    assert_eq!(r.reweighted, 1);
    assert_eq!(r.deleted + r.relinked, 1, "{r:?}");
    assert_eq!(engine.ledger().reweights(), 1);
    assert_eq!(engine.ledger().deletes(), 1);
    // The deletion removed the *reweighted* edge: total weight dropped by
    // at least part of the original weight and never more than the full
    // reweighted value (a bridge re-link may leave a small replacement).
    let after_w = engine.sparsifier().total_weight();
    assert!(
        after_w < before_w + e.weight * 3.0 + 1e-9,
        "reweight survived its own deletion: {before_w} → {after_w}"
    );
    assert!(engine.sparsifier().edge_weight(e.u, e.v).is_none() || r.relinked == 1);
    assert!(is_connected(&engine.sparsifier_graph()));
    // Drift saw both stale operations.
    assert_eq!(engine.ledger().drift().stale_ops(), 2);
}

#[test]
fn duplicate_insert_of_existing_sparsifier_edge_accumulates_weight() {
    let (h0, mut engine) = fixture(12, test_seed() ^ 2);
    let cfg = UpdateConfig::default();
    let e = h0.edges()[5];
    let (u, v) = (e.u.index(), e.v.index());
    let before_total = engine.sparsifier().total_weight();
    let r = engine
        .apply_batch(&[UpdateOp::Insert { u, v, weight: 1.25 }], &cfg)
        .expect("batch");
    assert_eq!(r.total_processed(), 1);
    assert_eq!(engine.ledger().inserts(), 1);
    // The logical edge count must not change (the pair already exists);
    // the new weight lands somewhere inside the sparsifier.
    assert_eq!(engine.sparsifier().num_edges(), h0.num_edges());
    let after_total = engine.sparsifier().total_weight();
    assert!(
        (after_total - before_total - 1.25).abs() < 1e-9,
        "duplicate insert weight leaked: Δ = {}",
        after_total - before_total
    );
    // Deleting the pair afterwards must only remove the edge's original
    // share — absorbed weight is re-injected, not dropped.
    if engine.sparsifier().edge_weight(e.u, e.v).is_some() {
        let before_del = engine.sparsifier().total_weight();
        let r = engine
            .apply_batch(&[UpdateOp::Delete { u, v }], &cfg)
            .expect("delete");
        assert_eq!(r.deleted + r.relinked, 1);
        let after_del = engine.sparsifier().total_weight();
        let removed = before_del - after_del;
        assert!(
            removed <= e.weight + 1e-9,
            "delete removed {removed}, more than the original weight {}",
            e.weight
        );
    }
}

#[test]
fn delete_of_never_inserted_edge_is_vacuous_but_counted() {
    let (h0, mut engine) = fixture(10, test_seed() ^ 3);
    let cfg = UpdateConfig::default();
    let (u, v) = non_edge(&h0);
    let before_w = engine.sparsifier().total_weight();
    let before_e = engine.sparsifier().num_edges();
    let r = engine
        .apply_batch(&[UpdateOp::Delete { u, v }], &cfg)
        .expect("batch");
    assert_eq!(r.vacuous, 1);
    assert_eq!(r.deleted, 0);
    assert_eq!(engine.ledger().vacuous(), 1);
    assert_eq!(engine.ledger().deletes(), 0);
    // Physically nothing changed…
    assert_eq!(engine.sparsifier().num_edges(), before_e);
    assert_eq!(engine.sparsifier().total_weight(), before_w);
    // …but the staleness accounting still recorded the churn.
    assert_eq!(engine.ledger().drift().stale_ops(), 1);
    assert!(engine.ledger().staleness().max_staleness() >= 1);
}

#[test]
fn ledger_counters_close_over_a_mixed_gauntlet() {
    let (h0, mut engine) = fixture(12, test_seed() ^ 4);
    let cfg = UpdateConfig::default();
    let e0 = h0.edges()[0];
    let e1 = h0.edges()[1];
    let (a, b) = non_edge(&h0);
    let ops = vec![
        UpdateOp::Insert {
            u: a,
            v: b,
            weight: 2.0,
        },
        UpdateOp::Delete {
            u: e0.u.index(),
            v: e0.v.index(),
        },
        UpdateOp::Reweight {
            u: e1.u.index(),
            v: e1.v.index(),
            weight: e1.weight * 0.5,
        },
        UpdateOp::Delete { u: a, v: b },
        UpdateOp::Reweight {
            u: a,
            v: b,
            weight: 1.0,
        },
    ];
    let r = engine.apply_batch(&ops, &cfg).expect("gauntlet");
    assert_eq!(r.total_processed(), ops.len());
    let ledger = engine.ledger();
    assert_eq!(ledger.inserts(), 1);
    // Every op is accounted exactly once across the physical/vacuous split.
    assert_eq!(
        ledger.deletes() + ledger.reweights() + ledger.vacuous(),
        ops.len() - 1
    );
    assert_eq!(engine.updates_applied(), ops.len());
    assert!(is_connected(&engine.sparsifier_graph()));
    // Version hook: one non-empty batch = one version bump, same epoch.
    assert_eq!(engine.version(), 1);
    assert_eq!(engine.epoch(), 0);
}
