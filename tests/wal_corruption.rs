//! Corruption-tolerance suite for the WAL: flip a bit at **every byte
//! position** of every segment of a small store and attempt recovery.
//! The contract: recovery either truncates to the last valid record (the
//! recovered state is exactly a straight run of some *prefix* of the
//! logged batches) or fails loudly — it never decodes damaged bytes into
//! a state that no prefix of the history ever produced.

use ingrass_repro::core::state::ServingState;
use ingrass_repro::prelude::*;
use ingrass_repro::{churn_to_update_ops, test_seed};
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ingrass-walflip-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create tmpdir");
    dir
}

fn copy_store(src: &Path, dst: &Path) {
    let _ = fs::remove_dir_all(dst);
    fs::create_dir_all(dst).expect("create flip dir");
    for entry in fs::read_dir(src).expect("read store dir") {
        let entry = entry.expect("dir entry");
        fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy store file");
    }
}

/// Wall-clock setup timings are the one legitimate difference between
/// runs; zero them so `==` means "same history".
fn normalized(mut s: ServingState) -> ServingState {
    s.engine.setup_report.resistance_time = Duration::ZERO;
    s.engine.setup_report.lrd_time = Duration::ZERO;
    s.engine.setup_report.connectivity_time = Duration::ZERO;
    s.engine.setup_report.total_time = Duration::ZERO;
    s
}

#[test]
fn every_single_bit_flip_truncates_or_fails_loudly() {
    let seed = test_seed();
    let g = grid_2d(6, 6, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, seed);
    let h0 = GrassSparsifier::default()
        .by_offtree_density(&g, 0.25)
        .expect("sparsifier")
        .graph;
    let cfg = SetupConfig::default().with_seed(seed);
    let churn = ChurnStream::generate(
        &g,
        &ChurnConfig {
            batches: 4,
            ops_per_batch: 3,
            seed: seed ^ 0xf11b,
            ..Default::default()
        },
    );
    let ucfg = UpdateConfig::default();

    // No automatic snapshots: recovery must replay the whole WAL, so
    // every byte of it is load-bearing. Tiny segments force rotation so
    // both the mid-log (fatal) and last-segment (truncating) arms are
    // exercised.
    let policy = StorePolicy::default()
        .with_fsync(false)
        .with_segment_bytes(128)
        .with_snapshot_every(0);
    let live_dir = tmpdir("live");
    let mut persistent = PersistentEngine::create(&live_dir, &h0, &cfg, policy).expect("create");

    // The legal outcomes: a straight run of every batch prefix.
    let mut straight = SnapshotEngine::setup(&h0, &cfg).expect("straight setup");
    let mut prefix_states = vec![normalized(straight.export_state())];
    for batch in churn.batches() {
        let ops = churn_to_update_ops(batch);
        persistent
            .apply_batch(&ops, &ucfg)
            .expect("persistent batch");
        straight.apply_batch(&ops, &ucfg).expect("straight batch");
        prefix_states.push(normalized(straight.export_state()));
    }
    drop(persistent);

    let mut segments: Vec<PathBuf> = fs::read_dir(&live_dir)
        .expect("read store dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    segments.sort();
    assert!(
        segments.len() >= 2,
        "need rotation to exercise the mid-log arm, got {} segment(s)",
        segments.len()
    );

    let flip_dir = tmpdir("flip");
    let (mut truncations, mut loud_failures) = (0usize, 0usize);
    for (seg_idx, segment) in segments.iter().enumerate() {
        let pristine = fs::read(segment).expect("read segment");
        let last_segment = seg_idx + 1 == segments.len();
        for pos in 0..pristine.len() {
            copy_store(&live_dir, &flip_dir);
            let mut bytes = pristine.clone();
            bytes[pos] ^= 1 << (pos % 8);
            fs::write(
                flip_dir.join(segment.file_name().expect("segment name")),
                &bytes,
            )
            .expect("write flipped segment");

            match PersistentEngine::open(&flip_dir, policy) {
                Err(_) => loud_failures += 1, // loud is always legal
                Ok((recovered, report)) => {
                    let state = normalized(recovered.engine().export_state());
                    let matched = prefix_states.iter().position(|p| *p == state);
                    assert!(
                        matched.is_some(),
                        "flip at byte {pos} of segment {seg_idx} recovered a state \
                         that no prefix of the history ever produced"
                    );
                    assert!(
                        last_segment,
                        "flip at byte {pos} of non-final segment {seg_idx} must fail \
                         loudly, but recovery succeeded at prefix {:?}",
                        matched
                    );
                    assert!(
                        matched.expect("checked above") < prefix_states.len() - 1,
                        "flip at byte {pos} of segment {seg_idx} left the full history \
                         intact — the damage went undetected (report: {report:?})"
                    );
                    truncations += 1;
                }
            }
        }
    }
    assert!(truncations > 0, "no flip exercised tail truncation");
    assert!(loud_failures > 0, "no flip exercised the loud-failure arm");

    let _ = fs::remove_dir_all(&live_dir);
    let _ = fs::remove_dir_all(&flip_dir);
}
