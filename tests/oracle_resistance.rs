//! Oracle suite: the JL and Krylov effective-resistance estimators against
//! exact dense-pseudoinverse values on graphs of ≤ 200 nodes.
//!
//! Each estimator is held to the contract it actually provides:
//!
//! * **JL** (Spielman–Srivastava projections + solves) estimates
//!   *absolute* resistances to `1 ± ε` — pinned as per-edge relative error
//!   against `ExactResistance::dense`.
//! * **Krylov** (the paper's solve-free scheme) is a *ranking* estimator:
//!   its raw values carry a large systematic scale-off, but after one
//!   robust rescaling the node-pair resistances track the exact ones, and
//!   their ordering (near pairs vs far pairs) is what the LRD
//!   decomposition consumes — pinned as scale-corrected relative error
//!   plus Spearman rank correlation over sampled pairs.
//!
//! Tolerances carry ≈ 1.5–2× headroom over the worst observation across
//! seeds 42 / 7 / 1337 (`INGRASS_TEST_SEED` varies them in CI), so an
//! estimator regression fails loudly while seed noise does not.

use ingrass_repro::prelude::*;
use ingrass_repro::test_seed;

/// The ≤ 200-node oracle fixtures: two mesh-likes, a scale-free graph, and
/// a cycle with a closed-form resistance.
fn fixtures(seed: u64) -> Vec<(&'static str, Graph, GraphClass)> {
    let cyc: Vec<(usize, usize, f64)> = (0..60).map(|i| (i, (i + 1) % 60, 1.0)).collect();
    vec![
        (
            "grid10",
            grid_2d(10, 10, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, seed),
            GraphClass::Mesh,
        ),
        (
            "delaunay150",
            delaunay(&DelaunayConfig {
                points: 150,
                seed,
                ..Default::default()
            })
            .expect("delaunay generator"),
            GraphClass::Mesh,
        ),
        (
            "ba180",
            barabasi_albert(&BaConfig {
                nodes: 180,
                attach: 3,
                seed,
                ..Default::default()
            }),
            GraphClass::ScaleFree,
        ),
        (
            "cycle60",
            Graph::from_edges(60, &cyc).expect("cycle"),
            GraphClass::Mesh,
        ),
    ]
}

/// Tolerance class: the Krylov ranking contract is weaker on scale-free
/// graphs (hub-dominated spectra), so those get looser pins.
#[derive(Clone, Copy, PartialEq)]
enum GraphClass {
    Mesh,
    ScaleFree,
}

fn median(mut v: Vec<f64>) -> f64 {
    assert!(!v.is_empty());
    v.sort_by(|a, b| a.total_cmp(b));
    v[v.len() / 2]
}

fn max(v: &[f64]) -> f64 {
    v.iter().fold(0.0f64, |m, &x| m.max(x))
}

fn spearman(a: &[f64], b: &[f64]) -> f64 {
    let rank = |v: &[f64]| {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&i, &j| v[i].total_cmp(&v[j]));
        let mut r = vec![0.0; v.len()];
        for (k, &i) in idx.iter().enumerate() {
            r[i] = k as f64;
        }
        r
    };
    let (ra, rb) = (rank(a), rank(b));
    let n = a.len() as f64;
    let (ma, mb) = (ra.iter().sum::<f64>() / n, rb.iter().sum::<f64>() / n);
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..a.len() {
        cov += (ra[i] - ma) * (rb[i] - mb);
        va += (ra[i] - ma).powi(2);
        vb += (rb[i] - mb).powi(2);
    }
    cov / (va.sqrt() * vb.sqrt()).max(f64::MIN_POSITIVE)
}

/// Deterministic node-pair sample (splitmix-style LCG so the suite has no
/// dependence on the estimators' own RNG streams).
fn sample_pairs(n: usize, seed: u64, count: usize) -> Vec<(usize, usize)> {
    let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (s >> 33) as usize
    };
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let (u, v) = (next() % n, next() % n);
        if u != v {
            out.push((u, v));
        }
    }
    out
}

#[test]
fn jl_edge_resistances_match_exact_within_tolerance() {
    let seed = test_seed();
    for (name, g, _) in fixtures(seed) {
        assert!(g.num_nodes() <= 200, "{name} exceeds the oracle size cap");
        let exact = ExactResistance::dense(&g).expect("dense pseudoinverse");
        let truth = exact.edge_resistances(&g);
        let jl = JlEmbedder::build(&g, &JlConfig::default().with_seed(seed)).expect("jl build");
        let est = jl.edge_resistances(&g);
        let errs: Vec<f64> = est
            .iter()
            .zip(&truth)
            .map(|(a, b)| (a - b).abs() / b)
            .collect();
        let (med, mx) = (median(errs.clone()), max(&errs));
        // Observed across seeds 42/7/1337: med ≤ 0.16, max ≤ 0.90.
        assert!(
            med < 0.30,
            "{name}: JL median relative error {med:.3} ≥ 0.30"
        );
        assert!(mx < 1.20, "{name}: JL max relative error {mx:.3} ≥ 1.20");
    }
}

#[test]
fn jl_estimates_are_positive_and_finite() {
    let seed = test_seed();
    for (name, g, _) in fixtures(seed) {
        let jl = JlEmbedder::build(&g, &JlConfig::default().with_seed(seed)).expect("jl build");
        for (i, r) in jl.edge_resistances(&g).iter().enumerate() {
            assert!(
                r.is_finite() && *r > 0.0,
                "{name} edge {i}: JL estimate {r}"
            );
        }
    }
}

#[test]
fn krylov_pair_resistances_track_exact_after_rescaling() {
    let seed = test_seed();
    for (name, g, class) in fixtures(seed) {
        let exact = ExactResistance::dense(&g).expect("dense pseudoinverse");
        let kr =
            KrylovEmbedder::build(&g, &KrylovConfig::default().with_seed(seed)).expect("krylov");
        let pairs = sample_pairs(g.num_nodes(), seed ^ 0x0a11, 300);
        let truth: Vec<f64> = pairs
            .iter()
            .map(|&(u, v)| exact.resistance(u.into(), v.into()))
            .collect();
        let est: Vec<f64> = pairs
            .iter()
            .map(|&(u, v)| kr.resistance(u.into(), v.into()))
            .collect();
        for (i, r) in est.iter().enumerate() {
            assert!(r.is_finite() && *r > 0.0, "{name} pair {i}: estimate {r}");
        }
        // One robust scale (median of exact/estimate) absorbs the
        // estimator's systematic offset; what must survive is the shape.
        let c = median(truth.iter().zip(&est).map(|(t, e)| t / e).collect());
        let errs: Vec<f64> = est
            .iter()
            .zip(&truth)
            .map(|(e, t)| (c * e - t).abs() / t)
            .collect();
        let (med, mx) = (median(errs.clone()), max(&errs));
        let rho = spearman(&est, &truth);
        // Observed across seeds 42/7/1337 — mesh: med ≤ 0.27, max ≤ 1.08,
        // ρ ≥ 0.53; scale-free: med ≤ 0.36, max ≤ 1.70, ρ ≥ 0.30.
        let (med_tol, max_tol, rho_min) = match class {
            GraphClass::Mesh => (0.45, 1.80, 0.40),
            GraphClass::ScaleFree => (0.60, 2.50, 0.15),
        };
        assert!(
            med < med_tol,
            "{name}: Krylov scaled median error {med:.3} ≥ {med_tol}"
        );
        assert!(
            mx < max_tol,
            "{name}: Krylov scaled max error {mx:.3} ≥ {max_tol}"
        );
        assert!(
            rho > rho_min,
            "{name}: Krylov rank correlation {rho:.3} ≤ {rho_min}"
        );
    }
}

#[test]
fn exact_oracle_reproduces_closed_forms() {
    // Anchor the oracle itself: cycle resistance R(0,k) = k(n−k)/n and
    // series path resistance, in exact closed form.
    let n = 60;
    let cyc: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect();
    let g = Graph::from_edges(n, &cyc).unwrap();
    let exact = ExactResistance::dense(&g).unwrap();
    for k in [1, 7, n / 2] {
        let expect = (k * (n - k)) as f64 / n as f64;
        let got = exact.resistance(0.into(), k.into());
        assert!(
            (got - expect).abs() < 1e-8,
            "cycle k={k}: {got} vs {expect}"
        );
    }
    let path: Vec<(usize, usize, f64)> = (0..9).map(|i| (i, i + 1, 2.0)).collect();
    let p = Graph::from_edges(10, &path).unwrap();
    let exact = ExactResistance::dense(&p).unwrap();
    assert!((exact.resistance(0.into(), 9.into()) - 4.5).abs() < 1e-9);
}

#[test]
fn cg_exact_backend_agrees_with_dense_on_oracle_fixtures() {
    let seed = test_seed();
    for (name, g, _) in fixtures(seed) {
        let dense = ExactResistance::dense(&g).expect("dense");
        let cg = ExactResistance::via_cg(&g).expect("cg backend");
        for &(u, v) in sample_pairs(g.num_nodes(), seed ^ 0xc6_u64, 25).iter() {
            let a = dense.resistance(u.into(), v.into());
            let b = cg.resistance(u.into(), v.into());
            assert!(
                (a - b).abs() < 1e-6 * (1.0 + a),
                "{name} ({u},{v}): dense {a} vs cg {b}"
            );
        }
    }
}
