//! End-to-end pipeline tests across workload families: generate a graph,
//! sparsify, run the inGRASS setup + update phases, and verify the
//! maintained sparsifier against the updated graph.

use ingrass_repro::prelude::*;

/// Adds the stream edges to a copy of `g`.
fn updated_graph(g: &Graph, stream: &InsertionStream) -> Graph {
    let mut d = DynGraph::from_graph(g);
    for batch in stream.batches() {
        for &(u, v, w) in batch {
            d.add_edge(u.into(), v.into(), w).unwrap();
        }
    }
    d.to_graph()
}

fn run_family(name: &str, g0: Graph) {
    let h0 = GrassSparsifier::default()
        .by_offtree_density(&g0, 0.10)
        .unwrap_or_else(|e| panic!("{name}: sparsify failed: {e}"));
    let cond_opts = ConditionOptions::default();
    let initial = estimate_condition_number(&g0, &h0.graph, &cond_opts).unwrap();

    let mut engine = InGrassEngine::setup(&h0.graph, &SetupConfig::default()).unwrap();
    let stream = InsertionStream::paper_default(&g0, 11);
    let cfg = UpdateConfig {
        target_condition: initial.lambda_max,
        ..Default::default()
    };
    let mut filtering_level = 0usize;
    for batch in stream.batches() {
        let r = engine.insert_batch(batch, &cfg).unwrap();
        assert_eq!(r.total_processed(), r.batch_size, "{name}: lost edges");
        filtering_level = r.filtering_level;
    }

    let g_now = updated_graph(&g0, &stream);
    let h_now = engine.sparsifier_graph();

    // 1. Still connected, still sparse.
    assert!(ingrass_repro::graph::is_connected(&h_now), "{name}");
    let d_all = SparsifierDensity::new(g_now.num_nodes())
        .report(h0.graph.num_edges() + stream.total_edges(), g0.num_edges());
    let d_ingrass = SparsifierDensity::new(g_now.num_nodes()).report_graphs(&h_now, &g0);
    if filtering_level > 0 {
        // With a non-trivial filtering level some arrivals must be merged
        // or redistributed. (Expander-like graphs with tight targets keep
        // level 0, where including everything is the correct behaviour.)
        assert!(
            d_ingrass.off_tree < d_all.off_tree,
            "{name}: no filtering happened ({} vs {})",
            d_ingrass.off_tree,
            d_all.off_tree
        );
    }
    assert!(d_ingrass.off_tree <= d_all.off_tree + 1e-12, "{name}");

    // 2. Maintenance helps: λmax(L_H⁺L_G) of the maintained sparsifier
    //    beats the stale one against the updated graph.
    let stale = estimate_condition_number(&g_now, &h0.graph, &cond_opts).unwrap();
    let maintained = estimate_condition_number(&g_now, &h_now, &cond_opts).unwrap();
    assert!(
        maintained.lambda_max <= stale.lambda_max * 1.05,
        "{name}: maintained λmax {} vs stale {}",
        maintained.lambda_max,
        stale.lambda_max
    );

    // 3. λmax stays within a reasonable factor of the target.
    assert!(
        maintained.lambda_max <= 3.0 * initial.lambda_max,
        "{name}: λmax {} blew past target {}",
        maintained.lambda_max,
        initial.lambda_max
    );
}

#[test]
fn grid_family() {
    run_family(
        "grid",
        grid_2d(24, 24, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 1),
    );
}

#[test]
fn power_grid_family() {
    run_family(
        "power_grid",
        power_grid(&PowerGridConfig {
            width: 20,
            height: 20,
            ..Default::default()
        }),
    );
}

#[test]
fn delaunay_family() {
    run_family(
        "delaunay",
        delaunay(&DelaunayConfig {
            points: 700,
            seed: 5,
            ..Default::default()
        })
        .unwrap(),
    );
}

#[test]
fn mesh_family() {
    run_family(
        "airfoil",
        airfoil_mesh(&AirfoilConfig {
            points: 700,
            thickness: 0.15,
            seed: 6,
        })
        .unwrap(),
    );
}

#[test]
fn social_family() {
    run_family(
        "barabasi_albert",
        barabasi_albert(&BaConfig {
            nodes: 600,
            attach: 4,
            weights: WeightModel::Uniform { lo: 0.5, hi: 1.5 },
            seed: 7,
        }),
    );
}

#[test]
fn suite_cases_run_end_to_end_at_tiny_scale() {
    // Exercise the actual benchmark-suite path for a couple of cases.
    for case in [
        TestCase::G2Circuit,
        TestCase::DelaunayN18,
        TestCase::FeSphere,
    ] {
        let g = case.build(0.004, 3);
        run_family(case.name(), g);
    }
}
