//! Determinism suite for the sharded multi-writer engine: at a *fixed*
//! shard count every result is bit-for-bit identical regardless of worker
//! width. The suite replays one churn history at shard counts 1, 2, and 4
//! under explicit thread overrides 1, 2, and 4 *and* the ambient
//! `INGRASS_THREADS` width (the CI shard-determinism job re-runs the
//! whole suite under `INGRASS_THREADS=1`, `=2`, and `=4`), comparing
//! published snapshot checksums at every publish, the epoch fence's
//! merged per-batch reports (the parallel apply path's commit outcome),
//! and the full exported coordinator state at the end.
//!
//! Different shard counts legitimately produce different sparsifiers
//! (different partitions, different per-shard RNG streams) — the contract
//! is bit-identity at fixed `S`, never across `S`.

use ingrass_repro::prelude::*;
use ingrass_repro::test_seed;

const BATCHES: usize = 8;
const OPS_PER_BATCH: usize = 16;

/// One published snapshot's content fingerprint: counters plus the exact
/// bit pattern of every sparsifier edge. (The snapshot's own checksum is
/// *not* comparable across engine instances — it deliberately folds in the
/// process-unique `instance_id` — so the determinism contract is pinned on
/// content.)
type Fingerprint = (u64, u64, u64, Vec<(u32, u32, u64)>);

fn fingerprint(snap: &SparsifierSnapshot) -> Fingerprint {
    let edges = snap
        .graph()
        .edges()
        .iter()
        .map(|e| (e.u.index() as u32, e.v.index() as u32, e.weight.to_bits()))
        .collect();
    (snap.epoch(), snap.version(), snap.sequence(), edges)
}

/// One batch's commit outcome at the epoch fence, with the
/// width-dependent measurement fields (`fence_width`, `parallel_wall_s`,
/// `elapsed`, per-shard report timings) stripped: routing counts, every
/// boundary outcome, the re-setup decision, and each shard's merged
/// report down to the exact bit pattern of its drift/distortion floats.
/// Two widths that merge differently at the fence cannot produce equal
/// `ReportPrint`s.
type ReportPrint = (
    (usize, usize, usize),
    [usize; 5],
    Option<String>,
    Vec<Option<([usize; 9], [u64; 3], Option<String>)>>,
);

fn report_print(report: &ShardedBatchReport) -> ReportPrint {
    (
        (report.batch_size, report.intra_ops, report.boundary_ops),
        [
            report.boundary_inserted,
            report.boundary_deleted,
            report.boundary_reweighted,
            report.boundary_relinked,
            report.boundary_vacuous,
        ],
        report.resetup.as_ref().map(|r| format!("{r:?}")),
        report
            .shard_reports
            .iter()
            .map(|r| {
                r.as_ref().map(|r| {
                    (
                        [
                            r.batch_size,
                            r.included,
                            r.merged,
                            r.redistributed,
                            r.deleted,
                            r.relinked,
                            r.reweighted,
                            r.vacuous,
                            r.filtering_level,
                        ],
                        [
                            r.max_distortion.to_bits(),
                            r.drift_deleted_weight_fraction.to_bits(),
                            r.drift_distortion_fraction.to_bits(),
                        ],
                        r.resetup.as_ref().map(|why| format!("{why:?}")),
                    )
                })
            })
            .collect(),
    )
}

/// Blanks the measurement and configuration fields of an exported state
/// that legitimately vary run-to-run — the thread override (configuration,
/// not a result) and the setup-phase wall-clock timings each shard engine
/// retains — so the equality below covers exactly the deterministic state.
fn normalized(
    mut state: ingrass_repro::core::state::ShardedState,
) -> ingrass_repro::core::state::ShardedState {
    state.threads = None;
    for shard in &mut state.shards {
        let r = &mut shard.setup_report;
        r.resistance_time = std::time::Duration::ZERO;
        r.lrd_time = std::time::Duration::ZERO;
        r.connectivity_time = std::time::Duration::ZERO;
        r.total_time = std::time::Duration::ZERO;
    }
    state
}

/// Replays the canonical churn history at a given shard count / thread
/// override and returns the full determinism fingerprint: the snapshot
/// content after every publish (including a mid-run forced re-setup) and
/// the exported coordinator state.
fn replay(
    shards: usize,
    threads: Option<usize>,
) -> (
    Vec<Fingerprint>,
    Vec<ReportPrint>,
    ingrass_repro::core::state::ShardedState,
) {
    let seed = test_seed();
    let g0 = grid_2d(14, 14, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, seed);
    let h0 = GrassSparsifier::default()
        .by_offtree_density(&g0, 0.25)
        .unwrap()
        .graph;
    let mut cfg = ShardedConfig::default().with_shards(shards);
    cfg.threads = threads;
    let mut eng = ShardedEngine::setup(&h0, &SetupConfig::default().with_seed(seed), &cfg).unwrap();

    let churn = ChurnStream::generate(
        &g0,
        &ChurnConfig {
            batches: BATCHES,
            ops_per_batch: OPS_PER_BATCH,
            delete_fraction: 0.2,
            reweight_fraction: 0.15,
            seed: seed ^ 0xD17,
            ..Default::default()
        },
    );
    let ucfg = UpdateConfig::default();
    let mut prints = vec![fingerprint(&eng.snapshot())];
    let mut reports = Vec::with_capacity(BATCHES);
    for (i, batch) in churn.batches().iter().enumerate() {
        let report = eng.apply_batch(&churn_to_update_ops(batch), &ucfg).unwrap();
        assert!(
            report.fence_width >= 1 && report.fence_width <= shards,
            "fence width {} outside 1..={shards}",
            report.fence_width
        );
        reports.push(report_print(&report));
        if i == BATCHES / 2 {
            eng.resetup().unwrap();
        }
        eng.publish().unwrap();
        let snap = eng.snapshot();
        assert!(snap.verify_checksum(), "torn snapshot at batch {i}");
        prints.push(fingerprint(&snap));
    }
    (prints, reports, eng.export_state())
}

#[test]
fn fixed_shard_count_is_bit_identical_at_any_worker_width() {
    for shards in [1usize, 2, 4] {
        let (base_prints, base_reports, base_state) = replay(shards, Some(1));
        assert_eq!(base_prints.len(), BATCHES + 1);
        assert_eq!(base_reports.len(), BATCHES);
        let base_state = normalized(base_state);
        for threads in [Some(2), Some(4), None] {
            let (prints, reports, state) = replay(shards, threads);
            assert_eq!(
                base_prints, prints,
                "snapshot contents diverged at shards={shards} threads={threads:?}"
            );
            assert_eq!(
                base_reports, reports,
                "fence-merged batch reports diverged at shards={shards} threads={threads:?}"
            );
            assert_eq!(
                base_state,
                normalized(state),
                "exported state diverged at shards={shards} threads={threads:?}"
            );
        }
    }
}

#[test]
fn distinct_shard_counts_still_serve_the_same_graph_class() {
    // Cross-S runs are *not* bit-identical, but every one of them must
    // describe the same number of nodes and stay internally consistent —
    // this pins that the fixed-S contract above isn't passing vacuously
    // (e.g. all publishes collapsing to one degenerate state).
    let (prints1, _, st1) = replay(1, Some(2));
    let (prints4, _, st4) = replay(4, Some(2));
    assert_eq!(st1.shard_count, 1);
    assert_eq!(st4.shard_count, 4);
    assert_eq!(st1.shard_of.len(), st4.shard_of.len());
    assert_ne!(
        prints1, prints4,
        "different partitions produced identical snapshots — the fingerprint is not discriminating"
    );
}
