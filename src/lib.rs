//! # ingrass-repro — inGRASS (DAC 2024), reproduced in Rust
//!
//! A from-scratch reproduction of *inGRASS: Incremental Graph Spectral
//! Sparsification via Low-Resistance-Diameter Decomposition* (Aghdaei &
//! Feng, DAC 2024), including every substrate the paper depends on.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `ingrass` | the paper's contribution: LRD decomposition, multilevel embedding, incremental engine |
//! | [`graph`] | `ingrass-graph` | graphs, spanning trees, LCA, tree solvers, contraction |
//! | [`linalg`] | `ingrass-linalg` | CSR/dense matrices, CG/PCG, (pencil) Lanczos |
//! | [`resistance`] | `ingrass-resistance` | Krylov / JL / exact effective-resistance estimators |
//! | [`gen`] | `ingrass-gen` | workload generators + the paper's benchmark suite |
//! | [`baselines`] | `ingrass-baselines` | GRASS-style from-scratch sparsifier, Random baseline |
//! | [`metrics`] | `ingrass-metrics` | relative condition number, density, distortion stats |
//! | [`par`] | `ingrass-par` | deterministic parallel primitives (`par_map`/`scope`, `INGRASS_THREADS`) |
//! | [`solve`] | `ingrass-solve` | sparsifier-preconditioned Laplacian solve services (cached factorizations, multi-RHS PCG, concurrent snapshot serving) |
//! | [`store`] | `ingrass-store` | durable WAL + snapshot persistence, crash recovery via [`PersistentEngine`](store::PersistentEngine) |
//! | [`traffic`] | `ingrass-traffic` | serving front end: bounded admission, weighted-fair dequeue, deadline shedding, p99 SLO accounting |
//!
//! The [`prelude`] pulls in the names used by virtually every program, the
//! [`config`] module gathers every tuning knob in one place, and every
//! fallible path folds into the workspace-level
//! [`IngrassError`](core::IngrassError).
//!
//! # Example
//!
//! ```
//! use ingrass_repro::prelude::*;
//!
//! # fn main() -> Result<(), IngrassError> {
//! // 1. A workload graph and its initial sparsifier.
//! let g0 = grid_2d(16, 16, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 1);
//! let h0 = GrassSparsifier::default().by_offtree_density(&g0, 0.10)?;
//!
//! // 2. inGRASS setup (once) …
//! let mut engine = InGrassEngine::setup(&h0.graph, &SetupConfig::default())?;
//!
//! // 3. … then O(log N) incremental updates.
//! let report = engine.insert_batch(
//!     &[(0, 200, 1.0)],
//!     &UpdateConfig { target_condition: 80.0, ..Default::default() },
//! )?;
//! assert_eq!(report.total_processed(), 1);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub use ingrass as core;
pub use ingrass_baselines as baselines;
pub use ingrass_gen as gen;
pub use ingrass_graph as graph;
pub use ingrass_linalg as linalg;
pub use ingrass_metrics as metrics;
pub use ingrass_par as par;
pub use ingrass_resistance as resistance;
pub use ingrass_solve as solve;
pub use ingrass_store as store;
pub use ingrass_traffic as traffic;

/// Every tuning knob in the workspace, gathered in one module.
///
/// Mirrors [`ingrass::config`](core::config) and extends it with the
/// solve- and persistence-layer policies, so programs can write
/// `use ingrass_repro::config::*;` and reach every configuration type
/// without memorising which crate owns it.
pub mod config {
    pub use ingrass::config::{
        DriftPolicy, FactorPolicy, JlConfig, KrylovConfig, KrylovOperator, ResistanceBackend,
        SetupConfig, UpdateConfig,
    };
    pub use ingrass_solve::{PrecondStrategy, SolveConfig};
    pub use ingrass_store::StorePolicy;
    pub use ingrass_traffic::{OpenLoopConfig, ServiceModel, TrafficConfig};
}

/// The names almost every downstream program needs.
pub mod prelude {
    pub use crate::churn_to_update_ops;
    pub use ingrass::{
        DriftPolicy, FactorPolicy, InGrassEngine, InGrassError, IngrassError, LrdHierarchy,
        ResistanceBackend, SetupConfig, ShardedBatchReport, ShardedConfig, ShardedEngine,
        SnapshotEngine, SnapshotReader, SparsifierSnapshot, UpdateConfig, UpdateLedger, UpdateOp,
    };
    pub use ingrass_baselines::{GrassConfig, GrassSparsifier, RandomSparsifier, TreeKind};
    pub use ingrass_gen::{
        airfoil_mesh, barabasi_albert, delaunay, grid_2d, ocean_mesh, paper_suite, power_grid,
        rmat, sphere_mesh, AirfoilConfig, ArrivalProcess, BaConfig, ChurnConfig, ChurnOp,
        ChurnStream, DelaunayConfig, InsertionStream, OceanConfig, PowerGridConfig, RmatConfig,
        SphereConfig, StreamConfig, TestCase, TrafficEvent, TrafficEventKind, WeightModel,
        WorkloadConfig, WorkloadTrace,
    };
    pub use ingrass_graph::{DynGraph, Edge, EdgeId, Graph, GraphBuilder, NodeId};
    pub use ingrass_metrics::{
        estimate_condition_number, ConditionOptions, ConditionTrajectory, SparsifierDensity,
    };
    pub use ingrass_resistance::{
        ExactResistance, JlConfig, JlEmbedder, KrylovConfig, KrylovEmbedder, ResistanceEstimator,
    };
    pub use ingrass_solve::{
        ConcurrentSolveService, PrecondKind, PrecondStrategy, SolveConfig, SolveReport,
        SolveService,
    };
    pub use ingrass_store::{PersistentEngine, RecoveryReport, StoreError, StorePolicy};
    pub use ingrass_traffic::{
        run_open_loop, AdmissionQueue, OpenLoopConfig, Rejected, ServiceModel, TrafficConfig,
        TrafficReport, TrafficStats,
    };
}

/// The master seed the integration test suites derive their randomness
/// from: `INGRASS_TEST_SEED` when set (CI re-runs the suites with extra
/// seeds so determinism pins aren't single-seed artifacts), else 42.
///
/// Malformed values fall back to the default rather than panicking, so a
/// stray environment variable cannot fail a test run for a spurious
/// reason.
///
/// # Example
/// ```
/// let seed = ingrass_repro::test_seed();
/// assert!(seed == 42 || std::env::var("INGRASS_TEST_SEED").is_ok());
/// ```
pub fn test_seed() -> u64 {
    std::env::var("INGRASS_TEST_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(42)
}

/// Converts generator churn operations ([`ingrass_gen::ChurnOp`]) into
/// engine update operations ([`ingrass::UpdateOp`]).
///
/// The two types mirror each other on purpose: `ingrass-gen` cannot depend
/// on the core crate (the core crate's tests consume the generators), so
/// the facade owns the bridge.
///
/// # Example
/// ```
/// use ingrass_repro::prelude::*;
/// let ops = churn_to_update_ops(&[
///     ChurnOp::Insert(0, 1, 2.0),
///     ChurnOp::Delete(0, 1),
///     ChurnOp::Reweight(2, 3, 0.5),
/// ]);
/// assert_eq!(ops[1], UpdateOp::Delete { u: 0, v: 1 });
/// ```
pub fn churn_to_update_ops(ops: &[ingrass_gen::ChurnOp]) -> Vec<ingrass::UpdateOp> {
    ops.iter()
        .map(|op| match *op {
            ingrass_gen::ChurnOp::Insert(u, v, weight) => {
                ingrass::UpdateOp::Insert { u, v, weight }
            }
            ingrass_gen::ChurnOp::Delete(u, v) => ingrass::UpdateOp::Delete { u, v },
            ingrass_gen::ChurnOp::Reweight(u, v, weight) => {
                ingrass::UpdateOp::Reweight { u, v, weight }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        use crate::prelude::*;
        let g = grid_2d(4, 4, WeightModel::Unit, 0);
        assert_eq!(g.num_nodes(), 16);
    }
}
