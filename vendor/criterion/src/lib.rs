//! Vendored minimal stand-in for the `criterion` crate.
//!
//! The build environment has no access to a crates registry, so this shim
//! implements the criterion API surface the workspace's benches use:
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::benchmark_group`],
//! `bench_function` / `bench_with_input`, `iter` / `iter_batched`,
//! [`BenchmarkId`], [`Throughput`], [`BatchSize`], and [`black_box`].
//!
//! Statistics are deliberately simple: each benchmark runs `sample_size`
//! timed iterations (after one warm-up) and reports the mean, min and max
//! wall-clock time per iteration. That is enough to compare orders of
//! magnitude locally; CI only compiles benches (`cargo bench --no-run`).
//! Set `CRITERION_SHIM_SAMPLES` to override the per-benchmark iteration
//! budget.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: default_samples(),
            _criterion: self,
        }
    }

    /// Registers a stand-alone benchmark (group-less `bench_function`).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one("", id, default_samples(), &mut f);
        self
    }
}

fn default_samples() -> usize {
    std::env::var("CRITERION_SHIM_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10)
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = self.sample_size.min(n.max(1));
        self
    }

    /// Sets a target measurement time. Accepted for API compatibility; the
    /// shim's budget is iteration-count based.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Records the logical throughput of each iteration (printed alongside
    /// the timing).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &self.name,
            &id.into_benchmark_id().label,
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &self.name,
            &id.into_benchmark_id().label,
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (printing is immediate in this shim, so this is a
    /// no-op kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one(group: &str, label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        times: Vec::with_capacity(samples),
    };
    f(&mut b);
    let full = if group.is_empty() {
        label.to_string()
    } else {
        format!("{group}/{label}")
    };
    if b.times.is_empty() {
        println!("bench {full}: no measurements");
        return;
    }
    let total: Duration = b.times.iter().sum();
    let mean = total / b.times.len() as u32;
    let min = b.times.iter().min().expect("nonempty");
    let max = b.times.iter().max().expect("nonempty");
    println!(
        "bench {full}: mean {} (min {}, max {}) over {} iters",
        fmt_dur(mean),
        fmt_dur(*min),
        fmt_dur(*max),
        b.times.len()
    );
}

fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.0} ns", s * 1e9)
    }
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over the sample budget (one untimed warm-up first).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(routine());
            self.times.push(t.elapsed());
        }
    }

    /// Times `routine` on fresh input from `setup` each iteration; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.times.push(t.elapsed());
        }
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion accepted by `bench_function` ids (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Converts into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Logical work per iteration (accepted, not yet folded into the report).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Input-size hint for `iter_batched` (the shim treats all sizes alike).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Bundles benchmark functions into a callable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = { let _ = $cfg; $crate::Criterion::default() };
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more [`criterion_group!`]s, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        // 1 warm-up + 3 timed.
        assert_eq!(runs, 4);
        group.bench_with_input(BenchmarkId::new("param", 7), &7usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn iter_batched_sets_up_fresh_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g2");
        group.sample_size(2);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("n", 4).label, "n/4");
        assert_eq!(BenchmarkId::from_parameter(9).label, "9");
    }
}
