//! Vendored minimal stand-in for the `proptest` crate.
//!
//! The build environment has no access to a crates registry, so this shim
//! implements the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * range strategies over the numeric types, tuple strategies, and
//!   [`collection::vec`];
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`.
//!
//! Differences from real proptest, chosen deliberately:
//!
//! * **Deterministic**: every test function derives its RNG seed from its
//!   own name, so `cargo test` is bit-for-bit reproducible run to run.
//! * **No shrinking**: a failing case reports the case index; rerunning
//!   reproduces it exactly (see determinism above), which substitutes for
//!   minimisation in practice.
//! * `PROPTEST_CASES` acts as a **cap** on the per-test case count (the
//!   tier-1 verify uses it to bound runtime), never as an increase.

#![deny(missing_docs)]

/// Test-runner configuration and RNG.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Mirrors `proptest::test_runner::Config` for the fields used here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// The case count after applying the `PROPTEST_CASES` environment
        /// cap (used by CI / the tier-1 verify to bound runtime).
        pub fn effective_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse::<u32>().ok())
            {
                Some(cap) => self.cases.min(cap.max(1)),
                None => self.cases,
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// The RNG handed to strategies; a deterministic [`StdRng`].
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// An RNG seeded from a stable FNV-1a hash of `name` (the test
        /// function's name), making every property test reproducible.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h),
            }
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A source of random values of one type. Unlike real proptest there is
    /// no value tree / shrinking; `sample` draws directly.
    pub trait Strategy {
        /// The value type produced.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    /// A strategy that always yields a clone of one value (`Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A half-open length range for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, len)` — `len` may be a `usize`
    /// (exact) or a (inclusive) range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.random_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The names property tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn prop(x in 0usize..10, y in 0.0f64..1.0) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal item-muncher behind [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __cases = __config.effective_cases();
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                // One case per closure call so `prop_assume!` can skip a
                // case with `return`.
                let __case_fn = || { $body };
                __case_fn();
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `assert!` for property bodies (no shrinking, so it simply asserts).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its sampled inputs don't satisfy a
/// precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Sampled ranges stay in bounds and tuples/vecs compose.
        #[test]
        fn shim_self_check(
            a in 0usize..10,
            b in 0.5f64..2.0,
            v in collection::vec((0usize..5, 0.0f64..1.0), 2..6),
        ) {
            prop_assert!(a < 10);
            prop_assert!((0.5..2.0).contains(&b));
            prop_assert!((2..6).contains(&v.len()));
            for (i, x) in v {
                prop_assert!(i < 5);
                prop_assert!((0.0..1.0).contains(&x));
            }
        }

        #[test]
        fn assume_skips(x in 0usize..4) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn deterministic_rng_streams_match() {
        use crate::strategy::Strategy;
        let s = 0usize..1000;
        let mut r1 = crate::test_runner::TestRng::deterministic("t");
        let mut r2 = crate::test_runner::TestRng::deterministic("t");
        for _ in 0..50 {
            assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
        }
    }

    #[test]
    fn proptest_cases_env_caps() {
        let cfg = ProptestConfig::with_cases(1000);
        // Whatever the environment says, the cap can only shrink the count.
        assert!(cfg.effective_cases() <= 1000);
    }
}
