//! Vendored minimal stand-in for the `scoped_threadpool` crate.
//!
//! The build environment has no access to a crates registry (see
//! `vendor/README.md`), so this shim implements the API shape the workspace
//! uses: [`Pool::new`], [`Pool::scoped`], [`Scope::execute`]. Jobs may borrow
//! from the caller's stack; every job is joined before [`Pool::scoped`]
//! returns, and a panicking job re-panics in the caller (after all sibling
//! jobs have finished).
//!
//! Implementation notes, which differ from the upstream crate but are
//! observationally equivalent for this workspace:
//!
//! * Built entirely on [`std::thread::scope`] — no `unsafe` (the workspace
//!   denies it), no persistent worker threads. Each `execute` spawns one OS
//!   thread; on Linux that costs tens of microseconds, far below the
//!   millisecond-scale probe solves and CG batches the workspace runs on it.
//! * Because threads are per-job, [`Pool::thread_count`] is a *width
//!   contract*, not a multiplexing cap: callers (see `ingrass-par`) submit at
//!   most `thread_count()` jobs per scope and share finer-grained work inside
//!   them via an atomic cursor.

use std::thread;

/// A scoped "pool" with a fixed parallel width.
///
/// ```
/// use scoped_threadpool::Pool;
/// let pool = Pool::new(4);
/// let mut parts = [0u64; 4];
/// pool.scoped(|scope| {
///     for (i, slot) in parts.iter_mut().enumerate() {
///         scope.execute(move || *slot = i as u64 + 1);
///     }
/// });
/// assert_eq!(parts.iter().sum::<u64>(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool of the given width. A width of 0 is clamped to 1.
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
        }
    }

    /// The width this pool was created with.
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// Runs `f` with a [`Scope`] handle that can spawn borrowing jobs.
    ///
    /// Returns `f`'s value after **all** executed jobs have finished.
    ///
    /// # Panics
    /// Re-panics in the caller if any job panicked (after joining the rest),
    /// mirroring [`std::thread::scope`] semantics.
    pub fn scoped<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        thread::scope(|s| f(&Scope { inner: s }))
    }
}

/// Handle for spawning jobs inside one [`Pool::scoped`] call.
#[derive(Debug)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns one job. The job may borrow anything that outlives the
    /// enclosing [`Pool::scoped`] call.
    pub fn execute<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.inner.spawn(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn zero_width_clamps_to_one() {
        assert_eq!(Pool::new(0).thread_count(), 1);
        assert_eq!(Pool::new(3).thread_count(), 3);
    }

    #[test]
    fn jobs_borrow_and_all_run() {
        let pool = Pool::new(4);
        let counter = AtomicUsize::new(0);
        pool.scoped(|s| {
            for _ in 0..16 {
                s.execute(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn scope_with_no_jobs_returns_value() {
        let pool = Pool::new(2);
        let v = pool.scoped(|_| 7);
        assert_eq!(v, 7);
    }

    #[test]
    fn mutable_disjoint_borrows_work() {
        let pool = Pool::new(3);
        let mut data = vec![0usize; 9];
        pool.scoped(|s| {
            for (i, chunk) in data.chunks_mut(3).enumerate() {
                s.execute(move || {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = 3 * i + j;
                    }
                });
            }
        });
        assert_eq!(data, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_job_propagates_after_join() {
        let pool = Pool::new(2);
        let finished = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scoped(|s| {
                s.execute(|| panic!("job failed"));
                s.execute(|| {
                    finished.fetch_add(1, Ordering::Relaxed);
                });
            });
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        // The sibling job was still joined before the re-panic.
        assert_eq!(finished.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pool_is_reusable() {
        let pool = Pool::new(2);
        for round in 1..=3usize {
            let sum = AtomicUsize::new(0);
            pool.scoped(|s| {
                for _ in 0..round {
                    s.execute(|| {
                        sum.fetch_add(round, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(sum.load(Ordering::Relaxed), round * round);
        }
    }
}
