//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so this shim
//! implements exactly the (rand 0.9-flavoured) API surface the workspace
//! uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator. Unlike the
//!   real `rand`, the stream is guaranteed stable across releases of this
//!   workspace, which is what the seeded generators and tests want.
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`].
//! * [`Rng::random`], [`Rng::random_range`], [`Rng::random_bool`] (and the
//!   `RngExt` alias some call sites import).
//!
//! Only the distributions the workspace samples are implemented: `f64`/`f32`
//! in `[0, 1)`, `bool`, and the unsigned/signed integer types.

#![deny(missing_docs)]

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A type samplable from the "standard" distribution of an RNG: uniform over
/// `[0, 1)` for floats, uniform over the whole domain for integers and
/// `bool`.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range form accepted by [`Rng::random_range`]. Generic over the output
/// type (like the real rand) so integer literals in ranges infer from the
/// call site's target type.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` by widening multiplication (Lemire); the
/// modulo bias at `span << 2^64` is far below anything these workloads can
/// observe, so no rejection loop is needed.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-domain u64/i64 range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::standard_sample(rng)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * f64::standard_sample(rng)
    }
}

/// User-facing sampling methods, mirroring `rand::Rng` (0.9 naming).
pub trait Rng: RngCore {
    /// A value from the standard distribution of `T`.
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// A value uniform in `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Alias kept because parts of the workspace import the sampling methods
/// under this name.
pub use crate::Rng as RngExt;

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Constructs from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named RNGs, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++ seeded via
    /// SplitMix64 (the reference initialisation recommended by its authors).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s = [0x9E37_79B9_7F4A_7C15, 0xD1B5_4A32_D192_ED03, 1, 2];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let k = rng.random_range(3usize..10);
            assert!((3..10).contains(&k));
            let k = rng.random_range(0usize..=4);
            assert!(k <= 4);
            let f = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
