//! The GRASS-style from-scratch spectral sparsifier.

use ingrass_graph::{
    effective_weight_tree, kruskal_tree, low_stretch_tree, Graph, GraphError, TreeObjective,
    TreePathResistance, TreeResult,
};
use ingrass_metrics::{estimate_condition_number, ConditionOptions, MetricsError};

/// Spanning-tree backbone used by the sparsifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeKind {
    /// Maximum-weight Kruskal tree.
    MaxWeight,
    /// feGRASS-style maximum effective-weight tree.
    EffectiveWeight,
    /// AKPW/MPX-flavoured low-stretch tree with the given seed (default —
    /// measurably the best κ at equal density on every generator family;
    /// see `bench_ablation`).
    LowStretch(u64),
}

impl Default for TreeKind {
    fn default() -> Self {
        TreeKind::LowStretch(7)
    }
}

/// How the ranked off-tree edges are admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionPolicy {
    /// Rounds of *forest peeling*: within each pass, an edge is admitted
    /// only if it joins two components not yet joined by this pass's picks,
    /// spreading the budget across the graph instead of stacking parallel
    /// high-distortion edges in one region. This emulates GRASS's
    /// similarity-aware filtering \[6\] and is the default.
    #[default]
    SpreadPeel,
    /// Plain top-k by distortion (the naive greedy; kept as an ablation).
    TopK,
}

/// Configuration for [`GrassSparsifier`].
#[derive(Debug, Clone, Default)]
pub struct GrassConfig {
    /// Which spanning tree anchors the sparsifier.
    pub tree: TreeKind,
    /// How the ranked edges are admitted.
    pub selection: SelectionPolicy,
}

/// Output of a sparsification run.
#[derive(Debug, Clone)]
pub struct SparsifierOutput {
    /// The sparsifier `H` (same node set as the input graph).
    pub graph: Graph,
    /// Per-input-edge membership mask.
    pub in_sparsifier: Vec<bool>,
    /// Number of tree edges (= `N − 1`).
    pub tree_edges: usize,
    /// Number of off-tree edges recovered.
    pub offtree_added: usize,
    /// Condition number measured at termination, when the run targets one.
    pub kappa: Option<f64>,
}

/// From-scratch spectral sparsification in the GRASS \[7\] mould:
/// spanning-tree backbone + off-tree edges ranked by spectral distortion
/// `w(e) · R_T(e)`.
///
/// Two entry points:
/// * [`GrassSparsifier::by_offtree_density`] — keep the top-distortion
///   off-tree edges up to a density budget (Table I timing workload);
/// * [`GrassSparsifier::to_condition`] — add ranked edges in growing
///   batches, estimating `κ(L_G, L_H)` after each, until the target is met
///   (the "GRASS-D for a target condition number" workload of Tables II/III).
#[derive(Debug, Clone, Default)]
pub struct GrassSparsifier {
    config: GrassConfig,
}

impl GrassSparsifier {
    /// Creates a sparsifier with the given configuration.
    pub fn new(config: GrassConfig) -> Self {
        GrassSparsifier { config }
    }

    fn build_tree(&self, g: &Graph) -> Result<TreeResult, GraphError> {
        match self.config.tree {
            TreeKind::MaxWeight => kruskal_tree(g, TreeObjective::MaxWeight),
            TreeKind::EffectiveWeight => effective_weight_tree(g),
            TreeKind::LowStretch(seed) => low_stretch_tree(g, seed),
        }
    }

    /// Off-tree edge ids of `g` sorted by decreasing spectral distortion
    /// w.r.t. the configured tree — the core GRASS ranking, exposed for the
    /// benches.
    ///
    /// # Errors
    /// Propagates tree-construction failures ([`GraphError`]).
    pub fn ranked_offtree_edges(&self, g: &Graph) -> Result<(TreeResult, Vec<usize>), GraphError> {
        let tree = self.build_tree(g)?;
        let oracle = TreePathResistance::new(g, &tree.tree);
        let mut off: Vec<(usize, f64)> = g
            .edges()
            .iter()
            .enumerate()
            .filter(|(i, _)| !tree.in_tree[*i])
            .map(|(i, e)| (i, oracle.distortion(e.u, e.v, e.weight)))
            .collect();
        off.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        Ok((tree, off.into_iter().map(|(i, _)| i).collect()))
    }

    /// Admits `budget` edges from the ranked list into `mask` under the
    /// configured selection policy; returns how many were admitted.
    fn admit(&self, g: &Graph, mask: &mut [bool], ranked: &[usize], budget: usize) -> usize {
        match self.config.selection {
            SelectionPolicy::TopK => {
                let mut added = 0usize;
                for &e in ranked {
                    if added >= budget {
                        break;
                    }
                    if !mask[e] {
                        mask[e] = true;
                        added += 1;
                    }
                }
                added
            }
            SelectionPolicy::SpreadPeel => {
                let mut added = 0usize;
                while added < budget {
                    let mut dsu = ingrass_graph::DisjointSets::new(g.num_nodes());
                    let mut progress = false;
                    for &e in ranked {
                        if added >= budget {
                            break;
                        }
                        if mask[e] {
                            continue;
                        }
                        let edge = &g.edges()[e];
                        if dsu.union(edge.u.index(), edge.v.index()) {
                            mask[e] = true;
                            added += 1;
                            progress = true;
                        }
                    }
                    if !progress {
                        break;
                    }
                }
                added
            }
        }
    }

    /// Sparsifies `g` keeping `density` (0–1) of its off-tree edges.
    ///
    /// # Errors
    /// [`GraphError::Empty`] / [`GraphError::Disconnected`] if no spanning
    /// tree exists.
    pub fn by_offtree_density(
        &self,
        g: &Graph,
        density: f64,
    ) -> Result<SparsifierOutput, GraphError> {
        let (tree, ranked) = self.ranked_offtree_edges(g)?;
        let keep_count = ((ranked.len() as f64) * density.clamp(0.0, 1.0)).round() as usize;
        let mut mask = tree.in_tree.clone();
        let added = self.admit(g, &mut mask, &ranked, keep_count);
        let graph = g.edge_subgraph(&mask);
        Ok(SparsifierOutput {
            graph,
            in_sparsifier: mask,
            tree_edges: g.num_nodes() - 1,
            offtree_added: added,
            kappa: None,
        })
    }

    /// Sparsifies `g` until `κ(L_G, L_H) ≤ target_kappa`, adding ranked
    /// off-tree edges in geometrically growing batches.
    ///
    /// Batches start at 2 % of the off-tree edges and grow ×1.5; each round
    /// costs one condition-number estimate. If even the full graph misses
    /// the target (it cannot — `κ(L_G, L_G) = 1`), the full edge set is
    /// returned.
    ///
    /// # Errors
    /// Tree construction errors ([`GraphError`] wrapped in
    /// [`MetricsError::Linalg`] never occur here — graph errors are
    /// returned as the `Err` of the inner estimator) and estimator failures
    /// ([`MetricsError`]).
    pub fn to_condition(
        &self,
        g: &Graph,
        target_kappa: f64,
        cond_opts: &ConditionOptions,
    ) -> Result<SparsifierOutput, MetricsError> {
        let (tree, ranked) = self
            .ranked_offtree_edges(g)
            .map_err(|e| MetricsError::Linalg(e.to_string()))?;
        let mut mask = tree.in_tree.clone();
        let mut added = 0usize;
        let mut batch = ((ranked.len() as f64) * 0.02).ceil() as usize;
        batch = batch.max(1);
        loop {
            let graph = g.edge_subgraph(&mask);
            let est = estimate_condition_number(g, &graph, cond_opts)?;
            if est.kappa <= target_kappa || added >= ranked.len() {
                return Ok(SparsifierOutput {
                    graph,
                    in_sparsifier: mask,
                    tree_edges: g.num_nodes() - 1,
                    offtree_added: added,
                    kappa: Some(est.kappa),
                });
            }
            let take = batch.min(ranked.len() - added);
            added += self.admit(g, &mut mask, &ranked, take);
            batch = ((batch as f64) * 1.5).ceil() as usize;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingrass_gen::{grid_2d, power_grid, PowerGridConfig, WeightModel};
    use ingrass_metrics::SparsifierDensity;

    fn test_graph() -> Graph {
        grid_2d(14, 14, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 7)
    }

    #[test]
    fn density_target_is_respected() {
        let g = test_graph();
        let out = GrassSparsifier::default()
            .by_offtree_density(&g, 0.10)
            .unwrap();
        let d = SparsifierDensity::new(g.num_nodes()).report_graphs(&out.graph, &g);
        assert!((d.off_tree - 0.10).abs() < 0.02, "off-tree {}", d.off_tree);
        assert!(ingrass_graph::is_connected(&out.graph));
    }

    #[test]
    fn higher_density_gives_lower_condition_number() {
        let g = test_graph();
        let grass = GrassSparsifier::default();
        let lo = grass.by_offtree_density(&g, 0.05).unwrap();
        let hi = grass.by_offtree_density(&g, 0.30).unwrap();
        let opts = ConditionOptions::default();
        let k_lo = estimate_condition_number(&g, &lo.graph, &opts)
            .unwrap()
            .kappa;
        let k_hi = estimate_condition_number(&g, &hi.graph, &opts)
            .unwrap()
            .kappa;
        assert!(k_hi < k_lo, "dense κ {k_hi} vs sparse κ {k_lo}");
    }

    #[test]
    fn distortion_ranking_beats_random_selection_at_equal_density() {
        let g = power_grid(&PowerGridConfig {
            width: 16,
            height: 16,
            ..Default::default()
        });
        let grass = GrassSparsifier::default()
            .by_offtree_density(&g, 0.10)
            .unwrap();
        let random = crate::random::RandomSparsifier::new(123)
            .by_offtree_density(&g, 0.10)
            .unwrap();
        let opts = ConditionOptions::default();
        let k_grass = estimate_condition_number(&g, &grass.graph, &opts)
            .unwrap()
            .kappa;
        let k_random = estimate_condition_number(&g, &random.graph, &opts)
            .unwrap()
            .kappa;
        assert!(
            k_grass < k_random,
            "grass κ {k_grass} vs random κ {k_random}"
        );
    }

    #[test]
    fn to_condition_meets_target() {
        let g = test_graph();
        let opts = ConditionOptions::default();
        // A loose target reachable with few edges.
        let tree_out = GrassSparsifier::default()
            .by_offtree_density(&g, 0.0)
            .unwrap();
        let k_tree = estimate_condition_number(&g, &tree_out.graph, &opts)
            .unwrap()
            .kappa;
        let target = 0.5 * k_tree;
        let out = GrassSparsifier::default()
            .to_condition(&g, target, &opts)
            .unwrap();
        assert!(out.kappa.unwrap() <= target * 1.01);
        assert!(out.offtree_added > 0);
    }

    #[test]
    fn all_tree_kinds_work() {
        let g = test_graph();
        for kind in [
            TreeKind::MaxWeight,
            TreeKind::EffectiveWeight,
            TreeKind::LowStretch(5),
        ] {
            let out = GrassSparsifier::new(GrassConfig {
                tree: kind,
                ..Default::default()
            })
            .by_offtree_density(&g, 0.1)
            .unwrap();
            assert!(ingrass_graph::is_connected(&out.graph), "{kind:?}");
        }
    }

    #[test]
    fn zero_density_returns_spanning_tree() {
        let g = test_graph();
        let out = GrassSparsifier::default()
            .by_offtree_density(&g, 0.0)
            .unwrap();
        assert_eq!(out.graph.num_edges(), g.num_nodes() - 1);
        assert_eq!(out.offtree_added, 0);
    }

    #[test]
    fn full_density_returns_input_graph() {
        let g = test_graph();
        let out = GrassSparsifier::default()
            .by_offtree_density(&g, 1.0)
            .unwrap();
        assert_eq!(out.graph.num_edges(), g.num_edges());
    }

    #[test]
    fn disconnected_input_errors() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        assert!(GrassSparsifier::default()
            .by_offtree_density(&g, 0.1)
            .is_err());
    }
}
