//! Baselines for the inGRASS reproduction: the GRASS-style from-scratch
//! spectral sparsifier and the Random selection baseline.
//!
//! inGRASS's evaluation compares three ways of maintaining a sparsifier
//! under edge insertions (paper Table II):
//!
//! * **GRASS** — re-run spectral sparsification from scratch on the updated
//!   graph ([`GrassSparsifier`]);
//! * **inGRASS** — incremental updates (the `ingrass` core crate);
//! * **Random** — include random new edges until the condition-number
//!   target is met ([`RandomSparsifier`], [`random_update_to_condition`]).
//!
//! The GRASS recipe follows the published line of work \[5\], \[7\], \[8\]: build
//! a low-stretch-flavoured spanning tree, rank every off-tree edge by its
//! spectral distortion `w(e)·R_T(e)` (paper Lemma 3.2), and recover the
//! highest-distortion edges until a density or condition-number target is
//! reached.
//!
//! # Example
//!
//! ```
//! use ingrass_baselines::{GrassSparsifier, GrassConfig};
//! use ingrass_gen::{grid_2d, WeightModel};
//!
//! let g = grid_2d(12, 12, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 1);
//! let out = GrassSparsifier::new(GrassConfig::default())
//!     .by_offtree_density(&g, 0.10)
//!     .unwrap();
//! // Spanning tree plus 10 % of the off-tree edges.
//! assert_eq!(out.tree_edges, g.num_nodes() - 1);
//! assert!(out.graph.num_edges() > out.tree_edges);
//! ```

#![deny(missing_docs)]

mod grass;
mod random;

pub use grass::{GrassConfig, GrassSparsifier, SelectionPolicy, SparsifierOutput, TreeKind};
pub use random::{random_update_to_condition, RandomSparsifier, RandomUpdateOutcome};
