//! The Random baseline: uniform edge selection.

use crate::grass::SparsifierOutput;
use ingrass_graph::{kruskal_tree, DynGraph, Graph, GraphError, NodeId, TreeObjective};
use ingrass_metrics::{estimate_condition_number, ConditionOptions, MetricsError};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Random off-tree edge selection — the "Random" column of paper Table II.
///
/// A spanning tree keeps the result connected (random selection without a
/// backbone would disconnect the graph at low densities and make
/// `κ` undefined); beyond that, edges are chosen uniformly at random with
/// no spectral guidance.
#[derive(Debug, Clone)]
pub struct RandomSparsifier {
    seed: u64,
}

impl RandomSparsifier {
    /// Creates the baseline with an RNG seed.
    pub fn new(seed: u64) -> Self {
        RandomSparsifier { seed }
    }

    /// Keeps a random `density` (0–1) fraction of the off-tree edges on top
    /// of a max-weight spanning tree.
    ///
    /// # Errors
    /// [`GraphError::Empty`] / [`GraphError::Disconnected`] if no spanning
    /// tree exists.
    pub fn by_offtree_density(
        &self,
        g: &Graph,
        density: f64,
    ) -> Result<SparsifierOutput, GraphError> {
        let tree = kruskal_tree(g, TreeObjective::MaxWeight)?;
        let mut off: Vec<usize> = (0..g.num_edges()).filter(|&e| !tree.in_tree[e]).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Fisher–Yates prefix shuffle.
        for i in (1..off.len()).rev() {
            let j = rng.random_range(0..=i);
            off.swap(i, j);
        }
        let keep = ((off.len() as f64) * density.clamp(0.0, 1.0)).round() as usize;
        let mut mask = tree.in_tree.clone();
        for &e in off.iter().take(keep) {
            mask[e] = true;
        }
        Ok(SparsifierOutput {
            graph: g.edge_subgraph(&mask),
            in_sparsifier: mask,
            tree_edges: g.num_nodes() - 1,
            offtree_added: keep,
            kappa: None,
        })
    }
}

/// Outcome of [`random_update_to_condition`].
#[derive(Debug, Clone)]
pub struct RandomUpdateOutcome {
    /// The updated sparsifier.
    pub sparsifier: Graph,
    /// How many of the new edges were included.
    pub included: usize,
    /// Condition number at termination.
    pub kappa: f64,
}

/// The Random *update* policy of Table II: shuffle the newly inserted
/// edges, add them to the sparsifier in batches (10 % of the batch at a
/// time), and stop as soon as `κ(L_G, L_H) ≤ target` or the edges run out.
///
/// `g_updated` must already contain the new edges (they are part of the
/// updated original graph).
///
/// # Errors
/// Propagates estimator failures ([`MetricsError`]) and invalid edge
/// insertions ([`MetricsError::Linalg`] with the graph error message).
pub fn random_update_to_condition(
    g_updated: &Graph,
    h_current: &Graph,
    new_edges: &[(usize, usize, f64)],
    target_kappa: f64,
    cond_opts: &ConditionOptions,
    seed: u64,
) -> Result<RandomUpdateOutcome, MetricsError> {
    let mut h = DynGraph::from_graph(h_current);
    let mut order: Vec<usize> = (0..new_edges.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..order.len()).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    let batch = (new_edges.len() / 10).max(1);
    let mut included = 0usize;
    loop {
        let snapshot = h.to_graph();
        let est = estimate_condition_number(g_updated, &snapshot, cond_opts)?;
        if est.kappa <= target_kappa || included >= new_edges.len() {
            return Ok(RandomUpdateOutcome {
                sparsifier: snapshot,
                included,
                kappa: est.kappa,
            });
        }
        let take = batch.min(new_edges.len() - included);
        for &idx in &order[included..included + take] {
            let (u, v, w) = new_edges[idx];
            h.add_edge(NodeId::new(u), NodeId::new(v), w)
                .map_err(|e| MetricsError::Linalg(e.to_string()))?;
        }
        included += take;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingrass_gen::{grid_2d, InsertionStream, StreamConfig, WeightModel};
    use ingrass_graph::GraphBuilder;

    #[test]
    fn random_density_selection_is_seeded_and_sized() {
        let g = grid_2d(12, 12, WeightModel::Unit, 3);
        let a = RandomSparsifier::new(5)
            .by_offtree_density(&g, 0.2)
            .unwrap();
        let b = RandomSparsifier::new(5)
            .by_offtree_density(&g, 0.2)
            .unwrap();
        assert_eq!(a.in_sparsifier, b.in_sparsifier);
        let c = RandomSparsifier::new(6)
            .by_offtree_density(&g, 0.2)
            .unwrap();
        assert_ne!(a.in_sparsifier, c.in_sparsifier);
        let off_total = g.num_edges() - (g.num_nodes() - 1);
        assert_eq!(a.offtree_added, ((off_total as f64) * 0.2).round() as usize);
    }

    #[test]
    fn random_update_reaches_loose_target() {
        let g = grid_2d(10, 10, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 1);
        let h0 = RandomSparsifier::new(1)
            .by_offtree_density(&g, 0.1)
            .unwrap();
        // Insert a stream of new edges into G.
        let stream = InsertionStream::generate(
            &g,
            &StreamConfig {
                batches: 1,
                edges_per_batch: 40,
                ..Default::default()
            },
        );
        let new_edges = &stream.batches()[0];
        let mut gb = GraphBuilder::with_capacity(g.num_nodes(), g.num_edges() + new_edges.len());
        for e in g.edges() {
            gb.add_edge(e.u.index(), e.v.index(), e.weight).unwrap();
        }
        for &(u, v, w) in new_edges {
            gb.add_edge(u, v, w).unwrap();
        }
        let g_updated = gb.build();
        let opts = ConditionOptions::default();
        // Loose target: the κ of H0 against the updated graph, i.e. stop
        // quickly; a tight target forces inclusion.
        let k_now = estimate_condition_number(&g_updated, &h0.graph, &opts)
            .unwrap()
            .kappa;
        let out =
            random_update_to_condition(&g_updated, &h0.graph, new_edges, k_now * 1.1, &opts, 9)
                .unwrap();
        assert!(out.included <= new_edges.len());
        assert!(out.kappa <= k_now * 1.1 + 1e-9 || out.included == new_edges.len());
    }

    #[test]
    fn random_update_includes_everything_for_impossible_target() {
        let g = grid_2d(8, 8, WeightModel::Unit, 2);
        let h0 = RandomSparsifier::new(2)
            .by_offtree_density(&g, 0.1)
            .unwrap();
        let stream = InsertionStream::generate(
            &g,
            &StreamConfig {
                batches: 1,
                edges_per_batch: 10,
                ..Default::default()
            },
        );
        let new_edges = &stream.batches()[0];
        let mut gb = GraphBuilder::new(g.num_nodes());
        for e in g.edges() {
            gb.add_edge(e.u.index(), e.v.index(), e.weight).unwrap();
        }
        for &(u, v, w) in new_edges {
            gb.add_edge(u, v, w).unwrap();
        }
        let g_updated = gb.build();
        let out = random_update_to_condition(
            &g_updated,
            &h0.graph,
            new_edges,
            1.0, // unreachable: H ⊂ G strictly
            &ConditionOptions::fast(),
            11,
        )
        .unwrap();
        assert_eq!(out.included, new_edges.len());
    }
}
