//! Sparse and dense linear algebra substrate for the inGRASS reproduction.
//!
//! This crate provides the numerical kernels every other crate in the
//! workspace builds on:
//!
//! * [`CsrMatrix`] — compressed sparse row matrices (graph Laplacians and
//!   adjacency matrices live here), with fast symmetric mat-vec.
//! * [`DenseMatrix`] — small dense matrices with Cholesky factorisation and a
//!   cyclic-Jacobi symmetric eigensolver, used as ground truth in tests and
//!   for exact effective-resistance references on small graphs.
//! * [`pcg`] — preconditioned conjugate gradients with pluggable
//!   [`Preconditioner`]s (identity, Jacobi; the spanning-tree preconditioner
//!   lives in `ingrass-graph` because it needs a tree).
//! * [`SparseCholesky`] / [`min_degree_order`] — sparse `L Lᵀ` factorisation
//!   with an AMD-lite fill-reducing ordering; a factor is itself a
//!   [`Preconditioner`], which is how `ingrass-solve` turns the sparsifier
//!   into a preconditioner for solves on the original graph.
//! * [`lanczos_extreme`] / [`generalized_lanczos`] — symmetric Lanczos for
//!   extreme eigenvalues of an operator or of a matrix pencil `(A, B)`; the
//!   pencil variant powers the relative condition number estimator
//!   `κ(L_G, L_H)` in `ingrass-metrics`.
//! * [`vector`] — the small set of BLAS-1 style helpers shared by the
//!   iterative methods.
//!
//! # Example
//!
//! Solve a small SPD system with CG and verify against dense Cholesky:
//!
//! ```
//! use ingrass_linalg::{CsrMatrix, DenseMatrix, pcg, CgOptions, JacobiPrecond};
//!
//! // 2x2 SPD matrix [[4, 1], [1, 3]].
//! let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 4.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)]);
//! let b = vec![1.0, 2.0];
//! let mut x = vec![0.0; 2];
//! let pre = JacobiPrecond::from_matrix(&a);
//! let res = pcg(&a, &b, &mut x, &pre, None, &CgOptions::default());
//! assert!(res.converged);
//!
//! let dense = DenseMatrix::from_csr(&a);
//! let exact = dense.solve_spd(&b).unwrap();
//! assert!((x[0] - exact[0]).abs() < 1e-8 && (x[1] - exact[1]).abs() < 1e-8);
//! ```

#![deny(missing_docs)]

mod cg;
mod cholesky;
mod csr;
mod dense;
mod error;
mod lanczos;
mod op;
pub mod vector;

pub use cg::{pcg, pcg_multi, CgOptions, CgResult, IdentityPrecond, JacobiPrecond, Preconditioner};
pub use cholesky::{
    min_degree_order, min_degree_order_with_hints, min_degree_order_with_priority, CholeskyState,
    SparseCholesky,
};
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use error::LinalgError;
pub use lanczos::{
    generalized_lanczos, lanczos_extreme, LanczosOptions, LanczosResult, PencilEigenResult,
};
pub use op::{FnOperator, LinearOperator, ShiftedOperator};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
