//! The [`LinearOperator`] abstraction used by the iterative methods.

/// A square linear operator `y = A·x` applied matrix-free.
///
/// Implemented by [`crate::CsrMatrix`] and by wrapper types such as
/// [`FnOperator`]; the Lanczos and CG kernels are written against this trait
/// so callers can pass composed operators (e.g. `L_H⁺·L_G` built from a
/// matvec and a CG solve) without materialising them.
pub trait LinearOperator {
    /// The dimension `n` of the operator.
    fn dim(&self) -> usize;

    /// Computes `y ← A·x`.
    ///
    /// # Panics
    /// Implementations may panic if `x.len() != self.dim()` or
    /// `y.len() != self.dim()`.
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// Allocating convenience wrapper around [`LinearOperator::apply`].
    fn apply_alloc(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.dim()];
        self.apply(x, &mut y);
        y
    }
}

impl<T: LinearOperator + ?Sized> LinearOperator for &T {
    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        (**self).apply(x, y)
    }
}

/// Wraps a closure as a [`LinearOperator`].
///
/// # Example
///
/// ```
/// use ingrass_linalg::{FnOperator, LinearOperator};
/// // The operator 2·I on R³.
/// let op = FnOperator::new(3, |x, y| {
///     for (yi, xi) in y.iter_mut().zip(x) { *yi = 2.0 * xi; }
/// });
/// assert_eq!(op.apply_alloc(&[1.0, 2.0, 3.0]), vec![2.0, 4.0, 6.0]);
/// ```
pub struct FnOperator<F>
where
    F: Fn(&[f64], &mut [f64]),
{
    dim: usize,
    f: F,
}

impl<F> FnOperator<F>
where
    F: Fn(&[f64], &mut [f64]),
{
    /// Creates an operator of dimension `dim` applying `f`.
    pub fn new(dim: usize, f: F) -> Self {
        FnOperator { dim, f }
    }
}

impl<F> LinearOperator for FnOperator<F>
where
    F: Fn(&[f64], &mut [f64]),
{
    fn dim(&self) -> usize {
        self.dim
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        (self.f)(x, y)
    }
}

impl<F> std::fmt::Debug for FnOperator<F>
where
    F: Fn(&[f64], &mut [f64]),
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnOperator")
            .field("dim", &self.dim)
            .finish()
    }
}

/// The operator `A + σ·I` for a base operator `A` and shift `σ`.
///
/// Useful for regularising singular Laplacians and for spectral shifts in
/// tests.
#[derive(Debug)]
pub struct ShiftedOperator<A: LinearOperator> {
    base: A,
    shift: f64,
}

impl<A: LinearOperator> ShiftedOperator<A> {
    /// Creates `base + shift·I`.
    pub fn new(base: A, shift: f64) -> Self {
        ShiftedOperator { base, shift }
    }
}

impl<A: LinearOperator> LinearOperator for ShiftedOperator<A> {
    fn dim(&self) -> usize {
        self.base.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.base.apply(x, y);
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += self.shift * xi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrMatrix;

    #[test]
    fn fn_operator_applies_closure() {
        let op = FnOperator::new(2, |x: &[f64], y: &mut [f64]| {
            y[0] = x[1];
            y[1] = x[0];
        });
        assert_eq!(op.apply_alloc(&[1.0, 2.0]), vec![2.0, 1.0]);
        assert_eq!(op.dim(), 2);
    }

    #[test]
    fn shifted_operator_adds_identity() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let op = ShiftedOperator::new(&m, 2.0);
        assert_eq!(op.apply_alloc(&[1.0, 1.0]), vec![3.0, 3.0]);
    }

    #[test]
    fn reference_to_operator_is_operator() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        fn takes_op<O: LinearOperator>(o: O) -> usize {
            o.dim()
        }
        assert_eq!(takes_op(&m), 2);
    }
}
