//! BLAS-1 style helpers shared by the iterative solvers.
//!
//! All functions operate on `&[f64]` / `&mut [f64]` slices and panic on
//! length mismatch (these are internal hot-path kernels; the public solver
//! entry points validate dimensions and return [`crate::LinalgError`]).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Dot product `aᵀb`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm `‖a‖₂`.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y ← y + α·x`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x ← α·x`.
#[inline]
pub fn scale(x: &mut [f64], alpha: f64) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Normalises `x` to unit Euclidean length and returns its previous norm.
///
/// If `x` is (numerically) zero it is left untouched and `0.0` is returned.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale(x, 1.0 / n);
    }
    n
}

/// Removes the component of `x` along `u`: `x ← x − (xᵀu / uᵀu)·u`.
///
/// No-op when `u` is numerically zero.
pub fn project_out(x: &mut [f64], u: &[f64]) {
    let uu = dot(u, u);
    if uu <= f64::MIN_POSITIVE {
        return;
    }
    let c = dot(x, u) / uu;
    axpy(-c, u, x);
}

/// Removes the mean of `x`, i.e. projects out the all-ones direction.
///
/// Graph Laplacians of connected graphs are singular exactly along the
/// constant vector; every Krylov/Lanczos/CG loop in this workspace keeps its
/// iterates in the complement of that null space using this helper.
pub fn project_out_ones(x: &mut [f64]) {
    if x.is_empty() {
        return;
    }
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    for xi in x.iter_mut() {
        *xi -= mean;
    }
}

/// Draws a random vector with i.i.d. entries in `[-1, 1)`, projects out the
/// all-ones direction and normalises it.
///
/// Used to seed Krylov iterations deterministically (`seed` fully determines
/// the result).
pub fn random_unit_perp_ones(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    random_unit_perp_ones_with(n, &mut rng)
}

/// As [`random_unit_perp_ones`] but drawing from a caller-provided RNG.
pub fn random_unit_perp_ones_with<R: Rng>(n: usize, rng: &mut R) -> Vec<f64> {
    let mut v: Vec<f64> = (0..n).map(|_| rng.random::<f64>() * 2.0 - 1.0).collect();
    project_out_ones(&mut v);
    if normalize(&mut v) == 0.0 && n > 1 {
        // Astronomically unlikely; fall back to a deterministic non-constant vector.
        for (i, vi) in v.iter_mut().enumerate() {
            *vi = if i % 2 == 0 { 1.0 } else { -1.0 };
        }
        project_out_ones(&mut v);
        normalize(&mut v);
    }
    v
}

/// Modified Gram–Schmidt: orthogonalises `x` against each vector in `basis`
/// (assumed mutually orthonormal), twice for numerical robustness.
pub fn mgs_orthogonalize(x: &mut [f64], basis: &[Vec<f64>]) {
    for _ in 0..2 {
        for b in basis {
            let c = dot(x, b);
            axpy(-c, b, x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut x = vec![0.0, 0.0];
        assert_eq!(normalize(&mut x), 0.0);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn project_out_ones_zeroes_mean() {
        let mut x = vec![1.0, 2.0, 3.0, 6.0];
        project_out_ones(&mut x);
        assert!(x.iter().sum::<f64>().abs() < 1e-12);
    }

    #[test]
    fn random_unit_vector_is_deterministic_unit_and_perp() {
        let a = random_unit_perp_ones(100, 42);
        let b = random_unit_perp_ones(100, 42);
        assert_eq!(a, b);
        assert!((norm2(&a) - 1.0).abs() < 1e-12);
        assert!(a.iter().sum::<f64>().abs() < 1e-10);
        let c = random_unit_perp_ones(100, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn mgs_produces_orthogonal_vectors() {
        let b1 = {
            let mut v = vec![1.0, 0.0, 0.0];
            normalize(&mut v);
            v
        };
        let b2 = {
            let mut v = vec![1.0, 1.0, 0.0];
            mgs_orthogonalize(&mut v, std::slice::from_ref(&b1));
            normalize(&mut v);
            v
        };
        let mut x = vec![1.0, 2.0, 3.0];
        mgs_orthogonalize(&mut x, &[b1.clone(), b2.clone()]);
        assert!(dot(&x, &b1).abs() < 1e-12);
        assert!(dot(&x, &b2).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_project_out_makes_orthogonal(
            x in proptest::collection::vec(-100.0f64..100.0, 2..32),
            u in proptest::collection::vec(-100.0f64..100.0, 2..32),
        ) {
            let n = x.len().min(u.len());
            let mut x = x[..n].to_vec();
            let u = &u[..n];
            let unorm = norm2(u);
            prop_assume!(unorm > 1e-6);
            let xnorm = norm2(&x).max(1.0);
            project_out(&mut x, u);
            prop_assert!(dot(&x, u).abs() <= 1e-9 * xnorm * unorm);
        }

        #[test]
        fn prop_cauchy_schwarz(
            a in proptest::collection::vec(-10.0f64..10.0, 1..16),
            b in proptest::collection::vec(-10.0f64..10.0, 1..16),
        ) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            prop_assert!(dot(a, b).abs() <= norm2(a) * norm2(b) + 1e-9);
        }
    }
}
