//! Preconditioned conjugate gradients.

use crate::op::LinearOperator;
use crate::vector::{axpy, dot, norm2, project_out};
use crate::CsrMatrix;

/// A symmetric positive (semi-)definite preconditioner `M ≈ A`, applied as
/// `z ← M⁻¹ r`.
///
/// The spanning-tree preconditioner used for Laplacian systems lives in
/// `ingrass-graph` (it needs a tree); this crate provides [`IdentityPrecond`]
/// and [`JacobiPrecond`].
pub trait Preconditioner {
    /// Dimension of the preconditioner.
    fn dim(&self) -> usize;

    /// Computes `z ← M⁻¹ r`.
    fn apply(&self, r: &[f64], z: &mut [f64]);
}

impl<T: Preconditioner + ?Sized> Preconditioner for &T {
    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        (**self).apply(r, z)
    }
}

/// The trivial preconditioner `M = I` (plain CG).
#[derive(Debug, Clone)]
pub struct IdentityPrecond {
    dim: usize,
}

impl IdentityPrecond {
    /// Identity preconditioner of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        IdentityPrecond { dim }
    }
}

impl Preconditioner for IdentityPrecond {
    fn dim(&self) -> usize {
        self.dim
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }
}

/// Diagonal (Jacobi) preconditioner `M = diag(A)`.
#[derive(Debug, Clone)]
pub struct JacobiPrecond {
    inv_diag: Vec<f64>,
}

impl JacobiPrecond {
    /// Builds the Jacobi preconditioner from the diagonal of `m`.
    ///
    /// Zero or negative diagonal entries (possible for isolated vertices in a
    /// Laplacian) are replaced by 1 so the preconditioner stays SPD.
    pub fn from_matrix(m: &CsrMatrix) -> Self {
        Self::from_diagonal(m.diagonal())
    }

    /// Builds the preconditioner from an explicit diagonal.
    pub fn from_diagonal(diag: Vec<f64>) -> Self {
        let inv_diag = diag
            .into_iter()
            .map(|d| if d > 0.0 { 1.0 / d } else { 1.0 })
            .collect();
        JacobiPrecond { inv_diag }
    }
}

impl Preconditioner for JacobiPrecond {
    fn dim(&self) -> usize {
        self.inv_diag.len()
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        for ((zi, ri), di) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * di;
        }
    }
}

/// Options controlling a [`pcg`] run.
#[derive(Debug, Clone)]
pub struct CgOptions {
    /// Maximum number of iterations (default 2000).
    pub max_iters: usize,
    /// Relative residual tolerance `‖r‖/‖b‖` (default `1e-10`).
    pub rel_tol: f64,
    /// Absolute residual tolerance, used when `‖b‖ = 0` (default `1e-14`).
    pub abs_tol: f64,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            max_iters: 2000,
            rel_tol: 1e-10,
            abs_tol: 1e-14,
        }
    }
}

impl CgOptions {
    /// Returns options with the given relative tolerance.
    pub fn with_rel_tol(mut self, tol: f64) -> Self {
        self.rel_tol = tol;
        self
    }

    /// Returns options with the given iteration cap.
    pub fn with_max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }
}

/// Outcome of a [`pcg`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct CgResult {
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual norm `‖b − Ax‖`.
    pub residual_norm: f64,
    /// Whether the tolerance was reached within the iteration budget.
    pub converged: bool,
}

/// Preconditioned conjugate gradients: solves `A x = b` for a symmetric
/// positive (semi-)definite operator `A`, starting from the initial guess in
/// `x` and overwriting it with the solution.
///
/// For *singular consistent* systems (graph Laplacians of connected graphs
/// with `b ⊥ 1`), pass the null-space vector via `deflate`; the iterates and
/// residuals are projected against it every iteration so rounding error
/// cannot excite the null space.
///
/// Returns a [`CgResult`] rather than an error on non-convergence: partial
/// solutions are still useful to callers like the condition-number estimator,
/// which inspects `converged` itself.
///
/// # Panics
/// Panics if `b.len()`, `x.len()` or the preconditioner dimension disagree
/// with `a.dim()`.
pub fn pcg<A, M>(
    a: &A,
    b: &[f64],
    x: &mut [f64],
    precond: &M,
    deflate: Option<&[f64]>,
    opts: &CgOptions,
) -> CgResult
where
    A: LinearOperator + ?Sized,
    M: Preconditioner + ?Sized,
{
    let n = a.dim();
    assert_eq!(b.len(), n, "pcg: b dimension");
    assert_eq!(x.len(), n, "pcg: x dimension");
    assert_eq!(precond.dim(), n, "pcg: preconditioner dimension");

    let bnorm = norm2(b);
    let target = (opts.rel_tol * bnorm).max(opts.abs_tol);

    let mut r = vec![0.0; n];
    a.apply(x, &mut r);
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    if let Some(u) = deflate {
        project_out(&mut r, u);
        project_out(x, u);
    }

    let mut z = vec![0.0; n];
    precond.apply(&r, &mut z);
    if let Some(u) = deflate {
        project_out(&mut z, u);
    }
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];

    let mut rnorm = norm2(&r);
    if rnorm <= target {
        return CgResult {
            iterations: 0,
            residual_norm: rnorm,
            converged: true,
        };
    }

    for iter in 1..=opts.max_iters {
        a.apply(&p, &mut ap);
        if let Some(u) = deflate {
            project_out(&mut ap, u);
        }
        let pap = dot(&p, &ap);
        if pap <= 0.0 || !pap.is_finite() {
            // Operator is (numerically) indefinite along p — typically the
            // null space re-entering; stop with what we have.
            return CgResult {
                iterations: iter,
                residual_norm: rnorm,
                converged: rnorm <= target,
            };
        }
        let alpha = rz / pap;
        axpy(alpha, &p, x);
        axpy(-alpha, &ap, &mut r);
        if let Some(u) = deflate {
            project_out(&mut r, u);
        }
        rnorm = norm2(&r);
        if rnorm <= target {
            return CgResult {
                iterations: iter,
                residual_norm: rnorm,
                converged: true,
            };
        }
        precond.apply(&r, &mut z);
        if let Some(u) = deflate {
            project_out(&mut z, u);
        }
        let rz_next = dot(&r, &z);
        let beta = rz_next / rz;
        rz = rz_next;
        for (pi, zi) in p.iter_mut().zip(&z) {
            *pi = zi + beta * *pi;
        }
    }

    CgResult {
        iterations: opts.max_iters,
        residual_norm: rnorm,
        converged: false,
    }
}

/// Solves `A xᵢ = bᵢ` for a batch of right-hand sides, each from a zero
/// initial guess, distributing the (mutually independent) solves over
/// `threads` workers.
///
/// This is the batched form the embedding estimators use: the JL sketch and
/// the condition estimator all issue `O(log n)` independent Laplacian solves
/// against one fixed operator/preconditioner pair. Results are **bit-for-bit
/// identical to calling [`pcg`] in a serial loop**, at any thread count —
/// each solve touches only its own vectors, and outputs are placed back by
/// batch index (see `ingrass-par`).
///
/// # Panics
/// Panics if any right-hand side's length disagrees with `a.dim()` (same
/// contract as [`pcg`]).
pub fn pcg_multi<A, M>(
    a: &A,
    rhss: &[Vec<f64>],
    precond: &M,
    deflate: Option<&[f64]>,
    opts: &CgOptions,
    threads: usize,
) -> Vec<(Vec<f64>, CgResult)>
where
    A: LinearOperator + Sync + ?Sized,
    M: Preconditioner + Sync + ?Sized,
{
    ingrass_par::par_map_with(threads, rhss, |b| {
        let mut x = vec![0.0; a.dim()];
        let res = pcg(a, b, &mut x, precond, deflate, opts);
        (x, res)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;
    use proptest::prelude::*;

    fn laplacian_path(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n - 1 {
            t.push((i, i, 1.0));
            t.push((i + 1, i + 1, 1.0));
            t.push((i, i + 1, -1.0));
            t.push((i + 1, i, -1.0));
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn solves_small_spd_system() {
        let a =
            CsrMatrix::from_triplets(2, 2, &[(0, 0, 4.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)]);
        let b = [1.0, 2.0];
        let mut x = vec![0.0; 2];
        let pre = IdentityPrecond::new(2);
        let res = pcg(&a, &b, &mut x, &pre, None, &CgOptions::default());
        assert!(res.converged);
        let exact = DenseMatrix::from_csr(&a).solve_spd(&b).unwrap();
        assert!((x[0] - exact[0]).abs() < 1e-8);
        assert!((x[1] - exact[1]).abs() < 1e-8);
    }

    #[test]
    fn jacobi_precond_reduces_iterations_on_ill_scaled_system() {
        // diag(1, 1e4) with small coupling: Jacobi fixes the scaling.
        let a =
            CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 0.1), (1, 0, 0.1), (1, 1, 1e4)]);
        let b = [1.0, 1.0];
        let opts = CgOptions::default();

        let mut x1 = vec![0.0; 2];
        let id = IdentityPrecond::new(2);
        let r1 = pcg(&a, &b, &mut x1, &id, None, &opts);

        let mut x2 = vec![0.0; 2];
        let jac = JacobiPrecond::from_matrix(&a);
        let r2 = pcg(&a, &b, &mut x2, &jac, None, &opts);

        assert!(r1.converged && r2.converged);
        assert!(r2.iterations <= r1.iterations);
    }

    #[test]
    fn solves_singular_laplacian_with_deflation() {
        let n = 20;
        let l = laplacian_path(n);
        // b ⊥ 1: potential difference between endpoints.
        let mut b = vec![0.0; n];
        b[0] = 1.0;
        b[n - 1] = -1.0;
        let ones: Vec<f64> = vec![1.0; n];
        let mut x = vec![0.0; n];
        let pre = JacobiPrecond::from_matrix(&l);
        let res = pcg(&l, &b, &mut x, &pre, Some(&ones), &CgOptions::default());
        assert!(res.converged, "residual {}", res.residual_norm);
        // Effective resistance across a unit path of n-1 edges is n-1.
        let r_eff = x[0] - x[n - 1];
        assert!((r_eff - (n as f64 - 1.0)).abs() < 1e-6, "got {r_eff}");
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let mut x = vec![0.0; 2];
        let pre = IdentityPrecond::new(2);
        let res = pcg(&a, &[0.0, 0.0], &mut x, &pre, None, &CgOptions::default());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn reports_non_convergence() {
        let n = 50;
        let l = laplacian_path(n);
        let mut b = vec![0.0; n];
        b[0] = 1.0;
        b[n - 1] = -1.0;
        let mut x = vec![0.0; n];
        let pre = IdentityPrecond::new(n);
        let opts = CgOptions::default().with_max_iters(2);
        let ones = vec![1.0; n];
        let res = pcg(&l, &b, &mut x, &pre, Some(&ones), &opts);
        assert!(!res.converged);
        assert_eq!(res.iterations, 2);
    }

    #[test]
    fn warm_start_helps() {
        let a =
            CsrMatrix::from_triplets(2, 2, &[(0, 0, 4.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)]);
        let b = [1.0, 2.0];
        let exact = DenseMatrix::from_csr(&a).solve_spd(&b).unwrap();
        let mut x = exact.clone();
        let pre = IdentityPrecond::new(2);
        let res = pcg(&a, &b, &mut x, &pre, None, &CgOptions::default());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn pcg_multi_is_bitwise_identical_to_serial_at_any_width() {
        let n = 30;
        let l = laplacian_path(n);
        let pre = JacobiPrecond::from_matrix(&l);
        let ones = vec![1.0; n];
        let opts = CgOptions::default();
        // A handful of b ⊥ 1 right-hand sides of varying difficulty.
        let rhss: Vec<Vec<f64>> = (1..6)
            .map(|k| {
                let mut b = vec![0.0; n];
                b[0] = k as f64;
                b[n - 1] = -(k as f64);
                b
            })
            .collect();
        let serial: Vec<(Vec<f64>, CgResult)> = rhss
            .iter()
            .map(|b| {
                let mut x = vec![0.0; n];
                let r = pcg(&l, b, &mut x, &pre, Some(&ones), &opts);
                (x, r)
            })
            .collect();
        for threads in [1, 2, 4, 8] {
            let batch = pcg_multi(&l, &rhss, &pre, Some(&ones), &opts, threads);
            assert_eq!(batch, serial, "width {threads} diverged");
        }
    }

    #[test]
    fn pcg_multi_empty_batch() {
        let l = laplacian_path(4);
        let pre = IdentityPrecond::new(4);
        let out = pcg_multi(&l, &[], &pre, None, &CgOptions::default(), 4);
        assert!(out.is_empty());
    }

    proptest! {
        #[test]
        fn prop_cg_matches_dense_solve(
            raw in proptest::collection::vec(-1.0f64..1.0, 25),
            b in proptest::collection::vec(-1.0f64..1.0, 5),
        ) {
            // SPD A = MᵀM + I as triplets.
            let m = DenseMatrix::from_rows(5, 5, &raw);
            let mut trip = Vec::new();
            for i in 0..5 {
                for j in 0..5 {
                    let mut acc = if i == j { 1.0 } else { 0.0 };
                    for k in 0..5 {
                        acc += m.get(k, i) * m.get(k, j);
                    }
                    trip.push((i, j, acc));
                }
            }
            let a = CsrMatrix::from_triplets(5, 5, &trip);
            let mut x = vec![0.0; 5];
            let pre = JacobiPrecond::from_matrix(&a);
            let res = pcg(&a, &b, &mut x, &pre, None, &CgOptions::default());
            prop_assert!(res.converged);
            let exact = DenseMatrix::from_csr(&a).solve_spd(&b).unwrap();
            for i in 0..5 {
                prop_assert!((x[i] - exact[i]).abs() < 1e-6);
            }
        }
    }
}
