//! Sparse Cholesky factorisation with a fill-reducing ordering.
//!
//! The solve subsystem (`ingrass-solve`) preconditions conjugate gradients
//! on the *original* graph Laplacian with an exact factorisation of the
//! *sparsifier* Laplacian: the sparsifier is sparse enough that `L Lᵀ`
//! carries little fill, and κ(L_H⁻¹ L_G) is exactly the condition number
//! the inGRASS engine maintains, so PCG converges in `O(√κ)` iterations.
//!
//! Two pieces:
//!
//! * [`min_degree_order`] — an AMD-lite minimum-degree ordering: eliminate
//!   the vertex of least degree, connect its neighbours into a clique,
//!   repeat. Deterministic (ties break on the smaller node index).
//! * [`SparseCholesky`] — up-looking sparse `L Lᵀ` factorisation over the
//!   elimination tree, `O(|L|)` forward/backward solves, and a
//!   [`Preconditioner`] impl so a factor can drop straight into [`crate::pcg`].

use crate::cg::Preconditioner;
use crate::error::LinalgError;
use crate::CsrMatrix;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

/// AMD-lite fill-reducing ordering of a symmetric sparsity pattern.
///
/// Classic minimum degree: repeatedly eliminate the vertex of smallest
/// current degree in the quotient graph (ties break on the smaller index,
/// so the ordering is deterministic), turning its neighbourhood into a
/// clique. No supernode detection or degree approximation — "lite" — but
/// on the mesh/grid Laplacians this workspace factors it keeps fill within
/// a small constant of full AMD.
///
/// Returns `perm` with `perm[k]` = the original index eliminated at step
/// `k` (i.e. new-to-old).
///
/// # Panics
/// Panics if `a` is not square.
pub fn min_degree_order(a: &CsrMatrix) -> Vec<usize> {
    assert_eq!(a.n_rows(), a.n_cols(), "min_degree_order: square input");
    min_degree_core(a, None, None).0
}

/// Constrained AMD-lite: minimum-degree elimination under a vertex
/// priority (CAMD). All vertices of priority `p` are eliminated before any
/// vertex of priority `p + 1`; *within* one priority class the pivot is
/// the vertex of smallest current quotient-graph degree (ties on index).
///
/// This is the glue between a structural ordering (e.g. a nested
/// dissection tree, whose constraint classes are "region interiors before
/// their separators, finer separators before coarser") and the local
/// fill-reduction a pure lexicographic tree order lacks.
///
/// Returns `perm` with `perm[k]` = the original index eliminated at step
/// `k` (new-to-old).
///
/// # Panics
/// Panics if `a` is not square or `priority.len() != a.n_rows()`.
pub fn min_degree_order_with_priority(a: &CsrMatrix, priority: &[u32]) -> Vec<usize> {
    assert_eq!(a.n_rows(), a.n_cols(), "min_degree_order: square input");
    assert_eq!(
        priority.len(),
        a.n_rows(),
        "min_degree_order_with_priority: one priority per vertex"
    );
    min_degree_core(a, Some(priority), None).0
}

/// AMD-lite with structural hints, reporting the exact factor size.
///
/// `hard_priority` (optional) is a CAMD constraint as in
/// [`min_degree_order_with_priority`]. `tiebreak` (optional) is a *soft*
/// hint consulted only between vertices of equal current degree (and equal
/// hard priority): lower tie values are eliminated first. Soft hints never
/// override the degree heuristic — they steer it where it is indifferent,
/// which is how a separator structure can defer "bad" vertices (e.g.
/// churn-inserted chord endpoints) at zero cost.
///
/// Returns `(perm, fill)` where `fill` is exactly `nnz(L)` (stored entries
/// including the diagonal) of a Cholesky factorisation of `a`'s pattern
/// under `perm` — the quotient-graph elimination materialises the filled
/// graph, so the count is a byproduct. Lets callers race orderings and
/// keep the cheapest without a numeric factorisation per candidate.
///
/// # Panics
/// Panics if `a` is not square or a hint slice has the wrong length.
pub fn min_degree_order_with_hints(
    a: &CsrMatrix,
    hard_priority: Option<&[u32]>,
    tiebreak: Option<&[u32]>,
) -> (Vec<usize>, usize) {
    assert_eq!(a.n_rows(), a.n_cols(), "min_degree_order: square input");
    for hint in [hard_priority, tiebreak].into_iter().flatten() {
        assert_eq!(
            hint.len(),
            a.n_rows(),
            "min_degree_order_with_hints: one hint entry per vertex"
        );
    }
    min_degree_core(a, hard_priority, tiebreak)
}

fn min_degree_core(
    a: &CsrMatrix,
    priority: Option<&[u32]>,
    tiebreak: Option<&[u32]>,
) -> (Vec<usize>, usize) {
    let n = a.n_rows();
    let pri = |v: usize| priority.map_or(0, |p| p[v]);
    let tie = |v: usize| tiebreak.map_or(0, |t| t[v]);
    let mut adj: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n];
    for r in 0..n {
        let (cols, _) = a.row(r);
        for &c in cols {
            if c as usize != r {
                adj[r].insert(c);
                adj[c as usize].insert(r as u32);
            }
        }
    }
    let mut heap: BinaryHeap<Reverse<(u32, usize, u32, u32)>> = (0..n)
        .map(|v| Reverse((pri(v), adj[v].len(), tie(v), v as u32)))
        .collect();
    let mut eliminated = vec![false; n];
    let mut perm = Vec::with_capacity(n);
    let mut fill = 0usize;
    while let Some(Reverse((_, deg, _, v))) = heap.pop() {
        let v = v as usize;
        // Lazy heap: skip stale entries (already eliminated or re-pushed
        // with a different degree after a neighbour's elimination).
        if eliminated[v] || adj[v].len() != deg {
            continue;
        }
        eliminated[v] = true;
        perm.push(v);
        // The factor column for this pivot holds the diagonal plus one
        // entry per uneliminated neighbour in the filled graph.
        fill += 1 + deg;
        let neighbours: Vec<u32> = adj[v].iter().copied().collect();
        // Detach v, then join its neighbourhood into a clique.
        for &u in &neighbours {
            adj[u as usize].remove(&(v as u32));
        }
        for (i, &u) in neighbours.iter().enumerate() {
            for &w in &neighbours[i + 1..] {
                adj[u as usize].insert(w);
                adj[w as usize].insert(u);
            }
        }
        for &u in &neighbours {
            let u = u as usize;
            heap.push(Reverse((pri(u), adj[u].len(), tie(u), u as u32)));
        }
    }
    (perm, fill)
}

/// Sparse Cholesky factorisation `P A Pᵀ = L Lᵀ` of a symmetric positive
/// definite matrix.
///
/// Up-looking factorisation over the elimination tree (the CSparse
/// `cs_chol` scheme): for each row the nonzero pattern is the tree reach of
/// the row's entries, and the numeric step is one sparse triangular solve.
/// The permutation defaults to [`min_degree_order`]; pass a custom one via
/// [`SparseCholesky::factor_with_order`].
///
/// The factor implements [`Preconditioner`], so it can precondition
/// [`crate::pcg`] directly — this is how the solve service applies the
/// sparsifier factor to the original Laplacian.
///
/// # Example
/// ```
/// use ingrass_linalg::{CsrMatrix, SparseCholesky};
/// // SPD: [[4, 1], [1, 3]].
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 4.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)]);
/// let f = SparseCholesky::factor(&a).unwrap();
/// let x = f.solve(&[1.0, 2.0]);
/// let r = a.matvec_alloc(&x);
/// assert!((r[0] - 1.0).abs() < 1e-12 && (r[1] - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct SparseCholesky {
    n: usize,
    /// `perm[k]` = original index of the k-th pivot (new-to-old).
    perm: Vec<u32>,
    /// `iperm[old]` = pivot position of original index `old` (old-to-new);
    /// the inverse of `perm`, kept so incremental updates can scatter a
    /// sparse vector straight into the permuted basis.
    iperm: Vec<u32>,
    /// Column pointers of `L` (column-major, diagonal entry first per
    /// column, off-diagonal rows strictly ascending after it).
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f64>,
}

impl SparseCholesky {
    /// Factors `a` with the default [`min_degree_order`] ordering.
    ///
    /// # Errors
    /// [`LinalgError::NotSpd`] if a pivot is non-positive;
    /// [`LinalgError::InvalidArgument`] if `a` is not square.
    pub fn factor(a: &CsrMatrix) -> Result<Self, LinalgError> {
        if a.n_rows() != a.n_cols() {
            return Err(LinalgError::InvalidArgument(format!(
                "cholesky needs a square matrix, got {}x{}",
                a.n_rows(),
                a.n_cols()
            )));
        }
        let perm = min_degree_order(a);
        Self::factor_with_order(a, &perm)
    }

    /// Factors `a` with an explicit elimination order (`perm[k]` = original
    /// index of the k-th pivot; must be a permutation of `0..n`).
    ///
    /// # Errors
    /// [`LinalgError::NotSpd`] on a non-positive pivot;
    /// [`LinalgError::InvalidArgument`] on a malformed permutation or a
    /// non-square input.
    pub fn factor_with_order(a: &CsrMatrix, perm: &[usize]) -> Result<Self, LinalgError> {
        let n = a.n_rows();
        if a.n_cols() != n {
            return Err(LinalgError::InvalidArgument(format!(
                "cholesky needs a square matrix, got {}x{}",
                n,
                a.n_cols()
            )));
        }
        if perm.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                found: perm.len(),
            });
        }
        let mut iperm = vec![u32::MAX; n];
        for (k, &old) in perm.iter().enumerate() {
            if old >= n || iperm[old] != u32::MAX {
                return Err(LinalgError::InvalidArgument(
                    "ordering is not a permutation".into(),
                ));
            }
            iperm[old] = k as u32;
        }

        // Upper triangle of the permuted matrix in CSC form: column k holds
        // the rows i ≤ k of P A Pᵀ (i.e. row k of the lower part — what the
        // up-looking step consumes). Symmetric input stores each off-diagonal
        // twice; exactly one orientation lands in the upper triangle.
        let mut cols: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for r in 0..n {
            let (cidx, vals) = a.row(r);
            let pr = iperm[r];
            for (&c, &v) in cidx.iter().zip(vals) {
                let pc = iperm[c as usize];
                if pr <= pc {
                    cols[pc as usize].push((pr, v));
                }
            }
        }
        for col in &mut cols {
            col.sort_unstable_by_key(|&(r, _)| r);
        }

        // Elimination tree of the permuted pattern (Liu's algorithm with
        // path compression through `ancestor`).
        const NONE: u32 = u32::MAX;
        let mut parent = vec![NONE; n];
        let mut ancestor = vec![NONE; n];
        for k in 0..n {
            for &(i, _) in &cols[k] {
                let mut j = i;
                while j != NONE && (j as usize) < k {
                    let next = ancestor[j as usize];
                    ancestor[j as usize] = k as u32;
                    if next == NONE {
                        parent[j as usize] = k as u32;
                        break;
                    }
                    j = next;
                }
            }
        }

        // Up-looking numeric factorisation. Columns of L grow as later rows
        // append their entries; each column starts with its diagonal.
        let mut l_cols: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        let mut x = vec![0.0; n];
        let mut mark = vec![usize::MAX; n];
        let mut reach: Vec<u32> = Vec::with_capacity(n);
        let mut path: Vec<u32> = Vec::with_capacity(64);
        for k in 0..n {
            // Pattern of row k of L = the etree reach of column k's rows,
            // collected per leaf in root→leaf order and reversed below.
            reach.clear();
            mark[k] = k;
            let mut d = 0.0;
            for &(i, v) in &cols[k] {
                if i as usize == k {
                    d = v;
                    continue;
                }
                x[i as usize] = v;
                path.clear();
                let mut j = i;
                while mark[j as usize] != k {
                    path.push(j);
                    mark[j as usize] = k;
                    j = parent[j as usize];
                }
                // Reverse the leaf-to-ancestor path so `reach` stays in
                // ascending (topological) elimination order per segment.
                reach.extend(path.drain(..).rev());
            }
            reach.sort_unstable();

            for &j in reach.iter() {
                let j = j as usize;
                let col = &l_cols[j];
                let ljj = col[0].1;
                let lkj = x[j] / ljj;
                x[j] = 0.0;
                for &(i, lij) in &col[1..] {
                    x[i as usize] -= lij * lkj;
                }
                d -= lkj * lkj;
                l_cols[j].push((k as u32, lkj));
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotSpd { pivot: k });
            }
            l_cols[k].push((k as u32, d.sqrt()));
        }

        // Flatten the per-column vectors into CSC arrays.
        let nnz: usize = l_cols.iter().map(Vec::len).sum();
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut row_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        col_ptr.push(0);
        for col in &l_cols {
            for &(i, v) in col {
                row_idx.push(i);
                values.push(v);
            }
            col_ptr.push(row_idx.len());
        }
        Ok(SparseCholesky {
            n,
            perm: perm.iter().map(|&p| p as u32).collect(),
            iperm,
            col_ptr,
            row_idx,
            values,
        })
    }

    /// Rank-1 update: replaces the factor of `A` with a factor of
    /// `A + x xᵀ`, where `x` is given as sparse `(index, value)` entries in
    /// the **original** (unpermuted) index space. Entries on the same index
    /// accumulate.
    ///
    /// The patched factor keeps the original elimination ordering; new
    /// structural entries (fill) appear where the update vector's etree
    /// paths leave the existing pattern. If `max_nnz` is given and the
    /// patched pattern would store more than that many entries, the call
    /// fails with [`LinalgError::FillBudget`] **without touching the
    /// factor** — the caller's cue to refactorize instead.
    ///
    /// Cost is proportional to the entries of `L` along the elimination
    /// paths of `x`'s nonzeros — for localized updates, far below a
    /// refactorization.
    ///
    /// # Errors
    /// [`LinalgError::FillBudget`] (factor untouched) and
    /// [`LinalgError::InvalidArgument`] on out-of-range or non-finite
    /// entries (factor untouched).
    pub fn cholupdate(
        &mut self,
        x: &[(usize, f64)],
        max_nnz: Option<usize>,
    ) -> Result<(), LinalgError> {
        self.rank_one(x, false, max_nnz)
    }

    /// Rank-1 downdate: replaces the factor of `A` with a factor of
    /// `A - x xᵀ`. Same contract as [`SparseCholesky::cholupdate`], with
    /// one addition: if `A - x xᵀ` is not positive definite the hyperbolic
    /// rotation breaks down with [`LinalgError::NotSpd`], and the factor is
    /// left **partially patched** (unusable) — callers must refactorize on
    /// any error from this method.
    pub fn choldowndate(
        &mut self,
        x: &[(usize, f64)],
        max_nnz: Option<usize>,
    ) -> Result<(), LinalgError> {
        self.rank_one(x, true, max_nnz)
    }

    fn rank_one(
        &mut self,
        x: &[(usize, f64)],
        downdate: bool,
        max_nnz: Option<usize>,
    ) -> Result<(), LinalgError> {
        let n = self.n;
        for &(i, v) in x {
            if i >= n {
                return Err(LinalgError::InvalidArgument(format!(
                    "update entry index {i} out of range for dimension {n}"
                )));
            }
            if !v.is_finite() {
                return Err(LinalgError::InvalidArgument(
                    "update entry value is not finite".into(),
                ));
            }
        }
        // Scatter into the permuted basis; track the structural nonzeros.
        let mut w = vec![0.0; n];
        let mut front: Vec<u32> = Vec::with_capacity(x.len());
        for &(i, v) in x {
            let p = self.iperm[i] as usize;
            if w[p] == 0.0 && v != 0.0 {
                front.push(p as u32);
            }
            w[p] += v;
        }
        front.sort_unstable();
        front.dedup();
        if front.is_empty() {
            return Ok(());
        }

        // Symbolic pass: walk the affected columns in elimination order.
        // Rotating at column k makes w structurally nonzero at every stored
        // row of column k, and column k structurally nonzero at every row
        // where w is — so the frontier evolves as a sorted-list union, and
        // the rows w brings that the column lacks become fill. Nothing is
        // mutated yet, so a fill-budget rejection leaves the factor intact.
        let first = front[0] as usize;
        let mut fill: Vec<(u32, u32)> = Vec::new(); // (col, row), built sorted
        let mut rest: Vec<u32> = front[1..].to_vec();
        let mut merged: Vec<u32> = Vec::new();
        let mut k = first;
        loop {
            let (lo, hi) = (self.col_ptr[k], self.col_ptr[k + 1]);
            let col_rows = &self.row_idx[lo + 1..hi];
            merged.clear();
            let (mut a, mut b) = (0, 0);
            while a < rest.len() || b < col_rows.len() {
                let ra = rest.get(a).copied().unwrap_or(u32::MAX);
                let rb = col_rows.get(b).copied().unwrap_or(u32::MAX);
                match ra.cmp(&rb) {
                    std::cmp::Ordering::Less => {
                        fill.push((k as u32, ra));
                        merged.push(ra);
                        a += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push(rb);
                        b += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        merged.push(ra);
                        a += 1;
                        b += 1;
                    }
                }
            }
            if merged.is_empty() {
                break;
            }
            k = merged[0] as usize;
            rest.clear();
            rest.extend_from_slice(&merged[1..]);
        }

        if let Some(budget) = max_nnz {
            let needed = self.nnz() + fill.len();
            if needed > budget {
                return Err(LinalgError::FillBudget { needed, budget });
            }
        }

        // Splice the fill into the flat CSC arrays (one O(nnz + fill)
        // rebuild; new entries start at exactly 0.0 so the numeric sweep
        // below treats them like any stored entry).
        if !fill.is_empty() {
            let new_nnz = self.nnz() + fill.len();
            let mut col_ptr = Vec::with_capacity(n + 1);
            let mut row_idx = Vec::with_capacity(new_nnz);
            let mut values = Vec::with_capacity(new_nnz);
            col_ptr.push(0);
            let mut f = 0;
            for j in 0..n {
                let (lo, hi) = (self.col_ptr[j], self.col_ptr[j + 1]);
                // Diagonal first, then merge old off-diagonals with fill.
                row_idx.push(self.row_idx[lo]);
                values.push(self.values[lo]);
                let mut p = lo + 1;
                while p < hi || (f < fill.len() && fill[f].0 as usize == j) {
                    let old_row = if p < hi { self.row_idx[p] } else { u32::MAX };
                    let fill_row = if f < fill.len() && fill[f].0 as usize == j {
                        fill[f].1
                    } else {
                        u32::MAX
                    };
                    if old_row < fill_row {
                        row_idx.push(old_row);
                        values.push(self.values[p]);
                        p += 1;
                    } else {
                        row_idx.push(fill_row);
                        values.push(0.0);
                        f += 1;
                    }
                }
                col_ptr.push(row_idx.len());
            }
            self.col_ptr = col_ptr;
            self.row_idx = row_idx;
            self.values = values;
        }

        // Numeric pass: one Givens (update) or hyperbolic (downdate)
        // rotation per affected column. A column where w cancelled to
        // exactly zero gets the identity rotation — skip it.
        for k in first..n {
            let wk = w[k];
            if wk == 0.0 {
                continue;
            }
            w[k] = 0.0;
            let (lo, hi) = (self.col_ptr[k], self.col_ptr[k + 1]);
            let ljj = self.values[lo];
            let (c, s, r) = if downdate {
                let r2 = ljj * ljj - wk * wk;
                if r2 <= 0.0 || !r2.is_finite() {
                    return Err(LinalgError::NotSpd { pivot: k });
                }
                let r = r2.sqrt();
                (r / ljj, wk / ljj, r)
            } else {
                let r = ljj.hypot(wk);
                (r / ljj, wk / ljj, r)
            };
            self.values[lo] = r;
            if downdate {
                for p in lo + 1..hi {
                    let i = self.row_idx[p] as usize;
                    let lnew = (self.values[p] - s * w[i]) / c;
                    w[i] = c * w[i] - s * lnew;
                    self.values[p] = lnew;
                }
            } else {
                for p in lo + 1..hi {
                    let i = self.row_idx[p] as usize;
                    let lnew = (self.values[p] + s * w[i]) / c;
                    w[i] = c * w[i] - s * lnew;
                    self.values[p] = lnew;
                }
            }
        }
        Ok(())
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored entries of `L` (a fill measure; `≥ nnz(tril(A))` always).
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// The elimination order used (`perm[k]` = original index of pivot `k`).
    pub fn ordering(&self) -> &[u32] {
        &self.perm
    }

    /// Estimated floating-point work of a numeric refactorization with this
    /// pattern: `Σ_j c_j²` over the column counts `c_j` of `L`. Fill makes
    /// this grow faster than [`SparseCholesky::nnz`], so it is the right
    /// normalizer when judging whether factor-maintenance time merely
    /// tracks the instance or genuinely regresses.
    pub fn flops_estimate(&self) -> f64 {
        (0..self.n)
            .map(|j| {
                let c = (self.col_ptr[j + 1] - self.col_ptr[j]) as f64;
                c * c
            })
            .sum()
    }

    /// Solves `A x = b` into `x` via `P A Pᵀ = L Lᵀ`.
    ///
    /// # Panics
    /// Panics if `b.len()` or `x.len()` differ from [`SparseCholesky::dim`].
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        let n = self.n;
        assert_eq!(b.len(), n, "cholesky solve: b dimension");
        assert_eq!(x.len(), n, "cholesky solve: x dimension");
        let mut y = vec![0.0; n];
        for k in 0..n {
            y[k] = b[self.perm[k] as usize];
        }
        self.solve_permuted_in_place(&mut y);
        for k in 0..n {
            x[self.perm[k] as usize] = y[k];
        }
    }

    /// Solves `L Lᵀ y = ŷ` **in the permuted basis**, in place and with no
    /// allocation: on entry `y[k]` is the right-hand side of pivot `k`
    /// (i.e. `b[perm[k]]`), on exit it is the solution in the same basis.
    ///
    /// This is the zero-allocation core [`SparseCholesky::solve_into`]
    /// wraps; callers that already hold permuted data (hot preconditioner
    /// paths — see `SparsifierPrecond` in the core crate) use it directly.
    ///
    /// # Panics
    /// Panics if `y.len()` differs from [`SparseCholesky::dim`].
    pub fn solve_permuted_in_place(&self, y: &mut [f64]) {
        let n = self.n;
        assert_eq!(y.len(), n, "cholesky solve: y dimension");
        // Forward solve L y = P b (column-oriented).
        for j in 0..n {
            let (lo, hi) = (self.col_ptr[j], self.col_ptr[j + 1]);
            let yj = y[j] / self.values[lo];
            y[j] = yj;
            for p in lo + 1..hi {
                y[self.row_idx[p] as usize] -= self.values[p] * yj;
            }
        }
        // Backward solve Lᵀ z = y (columns of L are rows of Lᵀ).
        for j in (0..n).rev() {
            let (lo, hi) = (self.col_ptr[j], self.col_ptr[j + 1]);
            let mut acc = y[j];
            for p in lo + 1..hi {
                acc -= self.values[p] * y[self.row_idx[p] as usize];
            }
            y[j] = acc / self.values[lo];
        }
    }

    /// Allocating variant of [`SparseCholesky::solve_into`].
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        self.solve_into(b, &mut x);
        x
    }

    /// Exports the exact factor state for persistence.
    ///
    /// The returned arrays are bit-identical copies of the internal
    /// representation (the inverse permutation is derived, not stored), so
    /// [`SparseCholesky::from_state`] round-trips to a factor whose solves
    /// and incremental updates are bit-for-bit identical to this one — the
    /// property the recovery parity proptests pin.
    pub fn to_state(&self) -> CholeskyState {
        CholeskyState {
            n: self.n,
            perm: self.perm.clone(),
            col_ptr: self.col_ptr.clone(),
            row_idx: self.row_idx.clone(),
            values: self.values.clone(),
        }
    }

    /// Rebuilds a factor from persisted state, validating the structural
    /// invariants the solve and update kernels rely on.
    ///
    /// # Errors
    /// [`LinalgError::InvalidArgument`] if the permutation is malformed,
    /// the column pointers are inconsistent, a row index is out of range or
    /// out of order, or a diagonal value is non-positive.
    pub fn from_state(state: CholeskyState) -> Result<Self, LinalgError> {
        let CholeskyState {
            n,
            perm,
            col_ptr,
            row_idx,
            values,
        } = state;
        if perm.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                found: perm.len(),
            });
        }
        let mut iperm = vec![u32::MAX; n];
        for (k, &old) in perm.iter().enumerate() {
            let old = old as usize;
            if old >= n || iperm[old] != u32::MAX {
                return Err(LinalgError::InvalidArgument(
                    "ordering is not a permutation".into(),
                ));
            }
            iperm[old] = k as u32;
        }
        if col_ptr.len() != n + 1 || col_ptr[0] != 0 {
            return Err(LinalgError::InvalidArgument(
                "cholesky state: column pointers must have n + 1 entries starting at 0".into(),
            ));
        }
        if col_ptr[n] != row_idx.len() || row_idx.len() != values.len() {
            return Err(LinalgError::InvalidArgument(
                "cholesky state: value/index arrays disagree with pointers".into(),
            ));
        }
        for j in 0..n {
            let (lo, hi) = (col_ptr[j], col_ptr[j + 1]);
            if lo >= hi || hi > row_idx.len() {
                return Err(LinalgError::InvalidArgument(format!(
                    "cholesky state: column {j} is empty or pointers out of bounds"
                )));
            }
            if row_idx[lo] as usize != j {
                return Err(LinalgError::InvalidArgument(format!(
                    "cholesky state: column {j} does not start with its diagonal"
                )));
            }
            if !(values[lo].is_finite() && values[lo] > 0.0) {
                return Err(LinalgError::InvalidArgument(format!(
                    "cholesky state: non-positive diagonal in column {j}"
                )));
            }
            let mut prev = j as u32;
            for p in lo + 1..hi {
                let r = row_idx[p];
                if r as usize >= n || r <= prev {
                    return Err(LinalgError::InvalidArgument(format!(
                        "cholesky state: rows of column {j} not strictly ascending"
                    )));
                }
                prev = r;
            }
        }
        Ok(SparseCholesky {
            n,
            perm,
            iperm,
            col_ptr,
            row_idx,
            values,
        })
    }
}

/// Exact, serializable state of a [`SparseCholesky`] factor.
///
/// All fields are public plain data so a persistence layer can encode them
/// without this crate knowing the wire format. Produced by
/// [`SparseCholesky::to_state`]; consumed (with validation) by
/// [`SparseCholesky::from_state`].
#[derive(Debug, Clone, PartialEq)]
pub struct CholeskyState {
    /// Dimension of the factored matrix.
    pub n: usize,
    /// Elimination order: `perm[k]` = original index of pivot `k`.
    pub perm: Vec<u32>,
    /// Column pointers of `L` (length `n + 1`).
    pub col_ptr: Vec<usize>,
    /// Row indices of `L` (diagonal first per column, then strictly
    /// ascending).
    pub row_idx: Vec<u32>,
    /// Numeric values of `L`, aligned with `row_idx`.
    pub values: Vec<f64>,
}

impl Preconditioner for SparseCholesky {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        self.solve_into(r, z);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;
    use proptest::prelude::*;

    fn grounded_laplacian_grid(side: usize) -> CsrMatrix {
        // 2D grid Laplacian with the last node grounded (removed): SPD.
        let n = side * side;
        let idx = |r: usize, c: usize| r * side + c;
        let mut t = Vec::new();
        let mut push = |u: usize, v: usize, w: f64| {
            if u < n - 1 && v < n - 1 {
                t.push((u, v, -w));
                t.push((v, u, -w));
            }
            if u < n - 1 {
                t.push((u, u, w));
            }
            if v < n - 1 {
                t.push((v, v, w));
            }
        };
        for r in 0..side {
            for c in 0..side {
                if c + 1 < side {
                    push(idx(r, c), idx(r, c + 1), 1.0 + ((r + c) % 3) as f64);
                }
                if r + 1 < side {
                    push(idx(r, c), idx(r + 1, c), 1.0 + ((r * c) % 2) as f64);
                }
            }
        }
        CsrMatrix::from_triplets(n - 1, n - 1, &t)
    }

    #[test]
    fn min_degree_is_a_permutation() {
        let a = grounded_laplacian_grid(5);
        let p = min_degree_order(&a);
        let mut seen = vec![false; a.n_rows()];
        for &v in &p {
            assert!(!seen[v]);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn min_degree_reduces_fill_on_grids() {
        let a = grounded_laplacian_grid(8);
        let natural: Vec<usize> = (0..a.n_rows()).collect();
        let f_nat = SparseCholesky::factor_with_order(&a, &natural).unwrap();
        let f_amd = SparseCholesky::factor(&a).unwrap();
        assert!(
            f_amd.nnz() <= f_nat.nnz(),
            "amd {} vs natural {}",
            f_amd.nnz(),
            f_nat.nnz()
        );
    }

    #[test]
    fn factor_solve_matches_dense() {
        let a = grounded_laplacian_grid(6);
        let f = SparseCholesky::factor(&a).unwrap();
        let n = a.n_rows();
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 11) as f64) - 5.0).collect();
        let x = f.solve(&b);
        let exact = DenseMatrix::from_csr(&a).solve_spd(&b).unwrap();
        for i in 0..n {
            assert!(
                (x[i] - exact[i]).abs() < 1e-9,
                "i={i}: {} vs {}",
                x[i],
                exact[i]
            );
        }
    }

    #[test]
    fn factorization_detects_indefinite_matrix() {
        let a =
            CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 1.0)]);
        assert!(matches!(
            SparseCholesky::factor(&a),
            Err(LinalgError::NotSpd { .. })
        ));
    }

    #[test]
    fn rejects_non_square_and_bad_permutation() {
        let rect = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]);
        assert!(SparseCholesky::factor(&rect).is_err());
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 2.0)]);
        assert!(SparseCholesky::factor_with_order(&a, &[0, 0]).is_err());
        assert!(SparseCholesky::factor_with_order(&a, &[0]).is_err());
    }

    #[test]
    fn preconditioner_impl_is_exact_inverse() {
        let a = grounded_laplacian_grid(4);
        let f = SparseCholesky::factor(&a).unwrap();
        let n = a.n_rows();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let mut z = vec![0.0; n];
        Preconditioner::apply(&f, &b, &mut z);
        let back = a.matvec_alloc(&z);
        for i in 0..n {
            assert!((back[i] - b[i]).abs() < 1e-9);
        }
    }

    /// Dense-roundtrip reference: `A + sigma · x xᵀ` as a fresh CSR matrix.
    fn with_outer(a: &CsrMatrix, x: &[(usize, f64)], sigma: f64) -> CsrMatrix {
        let n = a.n_rows();
        let mut xv = vec![0.0; n];
        for &(i, v) in x {
            xv[i] += v;
        }
        let mut t = Vec::new();
        for r in 0..n {
            let (cols, vals) = a.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                t.push((r, c as usize, v));
            }
        }
        for i in 0..n {
            if xv[i] == 0.0 {
                continue;
            }
            for j in 0..n {
                if xv[j] != 0.0 {
                    t.push((i, j, sigma * xv[i] * xv[j]));
                }
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    fn order_of(f: &SparseCholesky) -> Vec<usize> {
        f.ordering().iter().map(|&p| p as usize).collect()
    }

    #[test]
    fn cholupdate_matches_refactorization() {
        let a = grounded_laplacian_grid(6);
        let n = a.n_rows();
        let mut f = SparseCholesky::factor(&a).unwrap();
        let x = vec![(2, 0.8), (17, -0.5), (20, 0.3)];
        f.cholupdate(&x, None).unwrap();
        let fresh =
            SparseCholesky::factor_with_order(&with_outer(&a, &x, 1.0), &order_of(&f)).unwrap();
        let b: Vec<f64> = (0..n).map(|i| ((i * 5 % 13) as f64) - 6.0).collect();
        let (got, want) = (f.solve(&b), fresh.solve(&b));
        for i in 0..n {
            assert!(
                (got[i] - want[i]).abs() < 1e-9,
                "i={i}: {} vs {}",
                got[i],
                want[i]
            );
        }
        assert_eq!(
            f.nnz(),
            fresh.nnz(),
            "patched pattern must cover the fresh one"
        );
    }

    #[test]
    fn choldowndate_recovers_the_original_factor() {
        let a = grounded_laplacian_grid(5);
        let n = a.n_rows();
        let base = SparseCholesky::factor(&a).unwrap();
        let mut f = base.clone();
        let x = vec![(1, 0.9), (10, 0.4)];
        f.cholupdate(&x, None).unwrap();
        f.choldowndate(&x, None).unwrap();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 4) as f64).collect();
        let (got, want) = (f.solve(&b), base.solve(&b));
        for i in 0..n {
            assert!((got[i] - want[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn choldowndate_detects_loss_of_positive_definiteness() {
        let a = grounded_laplacian_grid(4);
        let mut f = SparseCholesky::factor(&a).unwrap();
        // Subtracting a huge outer product makes the matrix indefinite.
        let x = vec![(0, 100.0)];
        assert!(matches!(
            f.choldowndate(&x, None),
            Err(LinalgError::NotSpd { .. })
        ));
    }

    #[test]
    fn fill_budget_rejection_leaves_the_factor_untouched() {
        let a = grounded_laplacian_grid(6);
        let n = a.n_rows();
        let natural: Vec<usize> = (0..n).collect();
        let mut f = SparseCholesky::factor_with_order(&a, &natural).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let before = f.solve(&b);
        // Nodes 0 and 7 share no stored column entry under the natural
        // ordering, so this update needs fill; a budget of the current nnz
        // must reject it.
        let x = vec![(0, 0.5), (7, 0.5)];
        let budget = f.nnz();
        match f.cholupdate(&x, Some(budget)) {
            Err(LinalgError::FillBudget {
                needed,
                budget: got,
            }) => {
                assert!(needed > budget);
                assert_eq!(got, budget);
            }
            other => panic!("expected FillBudget, got {other:?}"),
        }
        let after = f.solve(&b);
        assert_eq!(before, after, "rejected update must not touch the factor");
        // With the budget lifted the same update succeeds and matches a
        // refactorization.
        f.cholupdate(&x, None).unwrap();
        let fresh = SparseCholesky::factor_with_order(&with_outer(&a, &x, 1.0), &natural).unwrap();
        let (got, want) = (f.solve(&b), fresh.solve(&b));
        for i in 0..n {
            assert!((got[i] - want[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_and_cancelling_updates_are_no_ops() {
        let a = grounded_laplacian_grid(4);
        let mut f = SparseCholesky::factor(&a).unwrap();
        let b: Vec<f64> = (0..a.n_rows()).map(|i| i as f64).collect();
        let before = f.solve(&b);
        f.cholupdate(&[], None).unwrap();
        f.cholupdate(&[(3, 0.5), (3, -0.5)], None).unwrap();
        assert_eq!(before, f.solve(&b));
    }

    #[test]
    fn update_rejects_bad_entries() {
        let a = grounded_laplacian_grid(4);
        let mut f = SparseCholesky::factor(&a).unwrap();
        assert!(f.cholupdate(&[(999, 1.0)], None).is_err());
        assert!(f.cholupdate(&[(0, f64::NAN)], None).is_err());
    }

    proptest! {
        #[test]
        fn prop_update_downdate_prefixes_match_refactorization(
            picks in proptest::collection::vec((0usize..24, 0usize..24, 0.1f64..0.9, 0usize..2), 1..6),
            b in proptest::collection::vec(-2.0f64..2.0, 24),
        ) {
            // Random mixed batch of edge-style rank-1 updates on a grounded
            // 5x5 grid (n = 24); after every prefix the patched factor must
            // agree with a fresh factorization of the accumulated matrix.
            let a0 = grounded_laplacian_grid(5);
            let n = a0.n_rows();
            let mut f = SparseCholesky::factor(&a0).unwrap();
            let mut acc = a0.clone();
            // Downdates remove a half-scaled copy of an earlier update, so
            // the accumulated matrix stays SPD by construction.
            let mut applied: Vec<Vec<(usize, f64)>> = Vec::new();
            for &(u, v, w, down) in &picks {
                let down = down == 1;
                let (x, sigma) = if down && !applied.is_empty() {
                    let prev = applied.pop().unwrap();
                    let scale = 0.5f64.sqrt();
                    let xs: Vec<(usize, f64)> =
                        prev.iter().map(|&(i, val)| (i, val * scale)).collect();
                    (xs, -1.0)
                } else {
                    let root = w.sqrt();
                    let x: Vec<(usize, f64)> = if u == v {
                        vec![(u, root)]
                    } else {
                        vec![(u, root), (v, -root)]
                    };
                    applied.push(x.clone());
                    (x, 1.0)
                };
                if sigma > 0.0 {
                    f.cholupdate(&x, None).unwrap();
                } else {
                    f.choldowndate(&x, None).unwrap();
                }
                acc = with_outer(&acc, &x, sigma);
                let fresh = SparseCholesky::factor_with_order(&acc, &order_of(&f)).unwrap();
                let (got, want) = (f.solve(&b), fresh.solve(&b));
                for i in 0..n {
                    prop_assert!((got[i] - want[i]).abs() < 1e-7,
                        "i={i}: {} vs {}", got[i], want[i]);
                }
            }
        }

        #[test]
        fn prop_factor_solve_inverts_spd(
            raw in proptest::collection::vec(-1.0f64..1.0, 36),
            b in proptest::collection::vec(-2.0f64..2.0, 6),
        ) {
            // SPD A = MᵀM + I.
            let m = DenseMatrix::from_rows(6, 6, &raw);
            let mut trip = Vec::new();
            for i in 0..6 {
                for j in 0..6 {
                    let mut acc = if i == j { 1.0 } else { 0.0 };
                    for k in 0..6 {
                        acc += m.get(k, i) * m.get(k, j);
                    }
                    trip.push((i, j, acc));
                }
            }
            let a = CsrMatrix::from_triplets(6, 6, &trip);
            let f = SparseCholesky::factor(&a).unwrap();
            let x = f.solve(&b);
            let r = a.matvec_alloc(&x);
            for i in 0..6 {
                prop_assert!((r[i] - b[i]).abs() < 1e-8);
            }
        }
    }
}
