//! Sparse Cholesky factorisation with a fill-reducing ordering.
//!
//! The solve subsystem (`ingrass-solve`) preconditions conjugate gradients
//! on the *original* graph Laplacian with an exact factorisation of the
//! *sparsifier* Laplacian: the sparsifier is sparse enough that `L Lᵀ`
//! carries little fill, and κ(L_H⁻¹ L_G) is exactly the condition number
//! the inGRASS engine maintains, so PCG converges in `O(√κ)` iterations.
//!
//! Two pieces:
//!
//! * [`min_degree_order`] — an AMD-lite minimum-degree ordering: eliminate
//!   the vertex of least degree, connect its neighbours into a clique,
//!   repeat. Deterministic (ties break on the smaller node index).
//! * [`SparseCholesky`] — up-looking sparse `L Lᵀ` factorisation over the
//!   elimination tree, `O(|L|)` forward/backward solves, and a
//!   [`Preconditioner`] impl so a factor can drop straight into [`crate::pcg`].

use crate::cg::Preconditioner;
use crate::error::LinalgError;
use crate::CsrMatrix;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

/// AMD-lite fill-reducing ordering of a symmetric sparsity pattern.
///
/// Classic minimum degree: repeatedly eliminate the vertex of smallest
/// current degree in the quotient graph (ties break on the smaller index,
/// so the ordering is deterministic), turning its neighbourhood into a
/// clique. No supernode detection or degree approximation — "lite" — but
/// on the mesh/grid Laplacians this workspace factors it keeps fill within
/// a small constant of full AMD.
///
/// Returns `perm` with `perm[k]` = the original index eliminated at step
/// `k` (i.e. new-to-old).
///
/// # Panics
/// Panics if `a` is not square.
pub fn min_degree_order(a: &CsrMatrix) -> Vec<usize> {
    assert_eq!(a.n_rows(), a.n_cols(), "min_degree_order: square input");
    let n = a.n_rows();
    let mut adj: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n];
    for r in 0..n {
        let (cols, _) = a.row(r);
        for &c in cols {
            if c as usize != r {
                adj[r].insert(c);
                adj[c as usize].insert(r as u32);
            }
        }
    }
    let mut heap: BinaryHeap<Reverse<(usize, u32)>> =
        (0..n).map(|v| Reverse((adj[v].len(), v as u32))).collect();
    let mut eliminated = vec![false; n];
    let mut perm = Vec::with_capacity(n);
    while let Some(Reverse((deg, v))) = heap.pop() {
        let v = v as usize;
        // Lazy heap: skip stale entries (already eliminated or re-pushed
        // with a different degree after a neighbour's elimination).
        if eliminated[v] || adj[v].len() != deg {
            continue;
        }
        eliminated[v] = true;
        perm.push(v);
        let neighbours: Vec<u32> = adj[v].iter().copied().collect();
        // Detach v, then join its neighbourhood into a clique.
        for &u in &neighbours {
            adj[u as usize].remove(&(v as u32));
        }
        for (i, &u) in neighbours.iter().enumerate() {
            for &w in &neighbours[i + 1..] {
                adj[u as usize].insert(w);
                adj[w as usize].insert(u);
            }
        }
        for &u in &neighbours {
            heap.push(Reverse((adj[u as usize].len(), u)));
        }
    }
    perm
}

/// Sparse Cholesky factorisation `P A Pᵀ = L Lᵀ` of a symmetric positive
/// definite matrix.
///
/// Up-looking factorisation over the elimination tree (the CSparse
/// `cs_chol` scheme): for each row the nonzero pattern is the tree reach of
/// the row's entries, and the numeric step is one sparse triangular solve.
/// The permutation defaults to [`min_degree_order`]; pass a custom one via
/// [`SparseCholesky::factor_with_order`].
///
/// The factor implements [`Preconditioner`], so it can precondition
/// [`crate::pcg`] directly — this is how the solve service applies the
/// sparsifier factor to the original Laplacian.
///
/// # Example
/// ```
/// use ingrass_linalg::{CsrMatrix, SparseCholesky};
/// // SPD: [[4, 1], [1, 3]].
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 4.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)]);
/// let f = SparseCholesky::factor(&a).unwrap();
/// let x = f.solve(&[1.0, 2.0]);
/// let r = a.matvec_alloc(&x);
/// assert!((r[0] - 1.0).abs() < 1e-12 && (r[1] - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct SparseCholesky {
    n: usize,
    /// `perm[k]` = original index of the k-th pivot (new-to-old).
    perm: Vec<u32>,
    /// Column pointers of `L` (column-major, diagonal entry first per
    /// column, off-diagonal rows strictly ascending after it).
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f64>,
}

impl SparseCholesky {
    /// Factors `a` with the default [`min_degree_order`] ordering.
    ///
    /// # Errors
    /// [`LinalgError::NotSpd`] if a pivot is non-positive;
    /// [`LinalgError::InvalidArgument`] if `a` is not square.
    pub fn factor(a: &CsrMatrix) -> Result<Self, LinalgError> {
        if a.n_rows() != a.n_cols() {
            return Err(LinalgError::InvalidArgument(format!(
                "cholesky needs a square matrix, got {}x{}",
                a.n_rows(),
                a.n_cols()
            )));
        }
        let perm = min_degree_order(a);
        Self::factor_with_order(a, &perm)
    }

    /// Factors `a` with an explicit elimination order (`perm[k]` = original
    /// index of the k-th pivot; must be a permutation of `0..n`).
    ///
    /// # Errors
    /// [`LinalgError::NotSpd`] on a non-positive pivot;
    /// [`LinalgError::InvalidArgument`] on a malformed permutation or a
    /// non-square input.
    pub fn factor_with_order(a: &CsrMatrix, perm: &[usize]) -> Result<Self, LinalgError> {
        let n = a.n_rows();
        if a.n_cols() != n {
            return Err(LinalgError::InvalidArgument(format!(
                "cholesky needs a square matrix, got {}x{}",
                n,
                a.n_cols()
            )));
        }
        if perm.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                found: perm.len(),
            });
        }
        let mut iperm = vec![u32::MAX; n];
        for (k, &old) in perm.iter().enumerate() {
            if old >= n || iperm[old] != u32::MAX {
                return Err(LinalgError::InvalidArgument(
                    "ordering is not a permutation".into(),
                ));
            }
            iperm[old] = k as u32;
        }

        // Upper triangle of the permuted matrix in CSC form: column k holds
        // the rows i ≤ k of P A Pᵀ (i.e. row k of the lower part — what the
        // up-looking step consumes). Symmetric input stores each off-diagonal
        // twice; exactly one orientation lands in the upper triangle.
        let mut cols: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for r in 0..n {
            let (cidx, vals) = a.row(r);
            let pr = iperm[r];
            for (&c, &v) in cidx.iter().zip(vals) {
                let pc = iperm[c as usize];
                if pr <= pc {
                    cols[pc as usize].push((pr, v));
                }
            }
        }
        for col in &mut cols {
            col.sort_unstable_by_key(|&(r, _)| r);
        }

        // Elimination tree of the permuted pattern (Liu's algorithm with
        // path compression through `ancestor`).
        const NONE: u32 = u32::MAX;
        let mut parent = vec![NONE; n];
        let mut ancestor = vec![NONE; n];
        for k in 0..n {
            for &(i, _) in &cols[k] {
                let mut j = i;
                while j != NONE && (j as usize) < k {
                    let next = ancestor[j as usize];
                    ancestor[j as usize] = k as u32;
                    if next == NONE {
                        parent[j as usize] = k as u32;
                        break;
                    }
                    j = next;
                }
            }
        }

        // Up-looking numeric factorisation. Columns of L grow as later rows
        // append their entries; each column starts with its diagonal.
        let mut l_cols: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        let mut x = vec![0.0; n];
        let mut mark = vec![usize::MAX; n];
        let mut reach: Vec<u32> = Vec::with_capacity(n);
        let mut path: Vec<u32> = Vec::with_capacity(64);
        for k in 0..n {
            // Pattern of row k of L = the etree reach of column k's rows,
            // collected per leaf in root→leaf order and reversed below.
            reach.clear();
            mark[k] = k;
            let mut d = 0.0;
            for &(i, v) in &cols[k] {
                if i as usize == k {
                    d = v;
                    continue;
                }
                x[i as usize] = v;
                path.clear();
                let mut j = i;
                while mark[j as usize] != k {
                    path.push(j);
                    mark[j as usize] = k;
                    j = parent[j as usize];
                }
                // Reverse the leaf-to-ancestor path so `reach` stays in
                // ascending (topological) elimination order per segment.
                reach.extend(path.drain(..).rev());
            }
            reach.sort_unstable();

            for &j in reach.iter() {
                let j = j as usize;
                let col = &l_cols[j];
                let ljj = col[0].1;
                let lkj = x[j] / ljj;
                x[j] = 0.0;
                for &(i, lij) in &col[1..] {
                    x[i as usize] -= lij * lkj;
                }
                d -= lkj * lkj;
                l_cols[j].push((k as u32, lkj));
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotSpd { pivot: k });
            }
            l_cols[k].push((k as u32, d.sqrt()));
        }

        // Flatten the per-column vectors into CSC arrays.
        let nnz: usize = l_cols.iter().map(Vec::len).sum();
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut row_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        col_ptr.push(0);
        for col in &l_cols {
            for &(i, v) in col {
                row_idx.push(i);
                values.push(v);
            }
            col_ptr.push(row_idx.len());
        }
        Ok(SparseCholesky {
            n,
            perm: perm.iter().map(|&p| p as u32).collect(),
            col_ptr,
            row_idx,
            values,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored entries of `L` (a fill measure; `≥ nnz(tril(A))` always).
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// The elimination order used (`perm[k]` = original index of pivot `k`).
    pub fn ordering(&self) -> &[u32] {
        &self.perm
    }

    /// Solves `A x = b` into `x` via `P A Pᵀ = L Lᵀ`.
    ///
    /// # Panics
    /// Panics if `b.len()` or `x.len()` differ from [`SparseCholesky::dim`].
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        let n = self.n;
        assert_eq!(b.len(), n, "cholesky solve: b dimension");
        assert_eq!(x.len(), n, "cholesky solve: x dimension");
        let mut y = vec![0.0; n];
        for k in 0..n {
            y[k] = b[self.perm[k] as usize];
        }
        self.solve_permuted_in_place(&mut y);
        for k in 0..n {
            x[self.perm[k] as usize] = y[k];
        }
    }

    /// Solves `L Lᵀ y = ŷ` **in the permuted basis**, in place and with no
    /// allocation: on entry `y[k]` is the right-hand side of pivot `k`
    /// (i.e. `b[perm[k]]`), on exit it is the solution in the same basis.
    ///
    /// This is the zero-allocation core [`SparseCholesky::solve_into`]
    /// wraps; callers that already hold permuted data (hot preconditioner
    /// paths — see `SparsifierPrecond` in the core crate) use it directly.
    ///
    /// # Panics
    /// Panics if `y.len()` differs from [`SparseCholesky::dim`].
    pub fn solve_permuted_in_place(&self, y: &mut [f64]) {
        let n = self.n;
        assert_eq!(y.len(), n, "cholesky solve: y dimension");
        // Forward solve L y = P b (column-oriented).
        for j in 0..n {
            let (lo, hi) = (self.col_ptr[j], self.col_ptr[j + 1]);
            let yj = y[j] / self.values[lo];
            y[j] = yj;
            for p in lo + 1..hi {
                y[self.row_idx[p] as usize] -= self.values[p] * yj;
            }
        }
        // Backward solve Lᵀ z = y (columns of L are rows of Lᵀ).
        for j in (0..n).rev() {
            let (lo, hi) = (self.col_ptr[j], self.col_ptr[j + 1]);
            let mut acc = y[j];
            for p in lo + 1..hi {
                acc -= self.values[p] * y[self.row_idx[p] as usize];
            }
            y[j] = acc / self.values[lo];
        }
    }

    /// Allocating variant of [`SparseCholesky::solve_into`].
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        self.solve_into(b, &mut x);
        x
    }
}

impl Preconditioner for SparseCholesky {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        self.solve_into(r, z);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;
    use proptest::prelude::*;

    fn grounded_laplacian_grid(side: usize) -> CsrMatrix {
        // 2D grid Laplacian with the last node grounded (removed): SPD.
        let n = side * side;
        let idx = |r: usize, c: usize| r * side + c;
        let mut t = Vec::new();
        let mut push = |u: usize, v: usize, w: f64| {
            if u < n - 1 && v < n - 1 {
                t.push((u, v, -w));
                t.push((v, u, -w));
            }
            if u < n - 1 {
                t.push((u, u, w));
            }
            if v < n - 1 {
                t.push((v, v, w));
            }
        };
        for r in 0..side {
            for c in 0..side {
                if c + 1 < side {
                    push(idx(r, c), idx(r, c + 1), 1.0 + ((r + c) % 3) as f64);
                }
                if r + 1 < side {
                    push(idx(r, c), idx(r + 1, c), 1.0 + ((r * c) % 2) as f64);
                }
            }
        }
        CsrMatrix::from_triplets(n - 1, n - 1, &t)
    }

    #[test]
    fn min_degree_is_a_permutation() {
        let a = grounded_laplacian_grid(5);
        let p = min_degree_order(&a);
        let mut seen = vec![false; a.n_rows()];
        for &v in &p {
            assert!(!seen[v]);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn min_degree_reduces_fill_on_grids() {
        let a = grounded_laplacian_grid(8);
        let natural: Vec<usize> = (0..a.n_rows()).collect();
        let f_nat = SparseCholesky::factor_with_order(&a, &natural).unwrap();
        let f_amd = SparseCholesky::factor(&a).unwrap();
        assert!(
            f_amd.nnz() <= f_nat.nnz(),
            "amd {} vs natural {}",
            f_amd.nnz(),
            f_nat.nnz()
        );
    }

    #[test]
    fn factor_solve_matches_dense() {
        let a = grounded_laplacian_grid(6);
        let f = SparseCholesky::factor(&a).unwrap();
        let n = a.n_rows();
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 11) as f64) - 5.0).collect();
        let x = f.solve(&b);
        let exact = DenseMatrix::from_csr(&a).solve_spd(&b).unwrap();
        for i in 0..n {
            assert!(
                (x[i] - exact[i]).abs() < 1e-9,
                "i={i}: {} vs {}",
                x[i],
                exact[i]
            );
        }
    }

    #[test]
    fn factorization_detects_indefinite_matrix() {
        let a =
            CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 1.0)]);
        assert!(matches!(
            SparseCholesky::factor(&a),
            Err(LinalgError::NotSpd { .. })
        ));
    }

    #[test]
    fn rejects_non_square_and_bad_permutation() {
        let rect = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]);
        assert!(SparseCholesky::factor(&rect).is_err());
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 2.0)]);
        assert!(SparseCholesky::factor_with_order(&a, &[0, 0]).is_err());
        assert!(SparseCholesky::factor_with_order(&a, &[0]).is_err());
    }

    #[test]
    fn preconditioner_impl_is_exact_inverse() {
        let a = grounded_laplacian_grid(4);
        let f = SparseCholesky::factor(&a).unwrap();
        let n = a.n_rows();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let mut z = vec![0.0; n];
        Preconditioner::apply(&f, &b, &mut z);
        let back = a.matvec_alloc(&z);
        for i in 0..n {
            assert!((back[i] - b[i]).abs() < 1e-9);
        }
    }

    proptest! {
        #[test]
        fn prop_factor_solve_inverts_spd(
            raw in proptest::collection::vec(-1.0f64..1.0, 36),
            b in proptest::collection::vec(-2.0f64..2.0, 6),
        ) {
            // SPD A = MᵀM + I.
            let m = DenseMatrix::from_rows(6, 6, &raw);
            let mut trip = Vec::new();
            for i in 0..6 {
                for j in 0..6 {
                    let mut acc = if i == j { 1.0 } else { 0.0 };
                    for k in 0..6 {
                        acc += m.get(k, i) * m.get(k, j);
                    }
                    trip.push((i, j, acc));
                }
            }
            let a = CsrMatrix::from_triplets(6, 6, &trip);
            let f = SparseCholesky::factor(&a).unwrap();
            let x = f.solve(&b);
            let r = a.matvec_alloc(&x);
            for i in 0..6 {
                prop_assert!((r[i] - b[i]).abs() < 1e-8);
            }
        }
    }
}
