//! Symmetric Lanczos iteration for extreme eigenvalues, in both the standard
//! and the generalised (matrix pencil) form.
//!
//! The pencil form is the workhorse behind the relative condition number
//! `κ(L_G, L_H)` reported throughout the inGRASS paper: the extreme
//! generalised eigenvalues of the pencil `(L_G, L_H)` are exactly the extreme
//! eigenvalues of `L_H⁺ L_G` on the complement of the shared null space.

use crate::dense::DenseMatrix;
use crate::error::LinalgError;
use crate::op::LinearOperator;
use crate::vector::{axpy, dot, project_out, random_unit_perp_ones};

/// Options controlling a Lanczos run.
#[derive(Debug, Clone)]
pub struct LanczosOptions {
    /// Maximum Krylov dimension (default 60).
    pub max_iters: usize,
    /// Relative change threshold on the extreme Ritz values used for early
    /// stopping (default `1e-8`).
    pub tol: f64,
    /// Seed for the random start vector (default 7).
    pub seed: u64,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        LanczosOptions {
            max_iters: 60,
            tol: 1e-8,
            seed: 7,
        }
    }
}

impl LanczosOptions {
    /// Returns options with the given Krylov dimension cap.
    pub fn with_max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }

    /// Returns options with the given early-stopping tolerance.
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Returns options with the given RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Result of a standard Lanczos run.
#[derive(Debug, Clone)]
pub struct LanczosResult {
    /// Largest Ritz value (estimate of `λ_max`).
    pub lambda_max: f64,
    /// Smallest Ritz value (estimate of `λ_min` on the deflated subspace).
    pub lambda_min: f64,
    /// All Ritz values, ascending.
    pub ritz_values: Vec<f64>,
    /// Lanczos steps performed.
    pub iterations: usize,
}

/// Result of a generalised (pencil) Lanczos run.
#[derive(Debug, Clone)]
pub struct PencilEigenResult {
    /// Largest generalised Ritz value of `(A, B)`.
    pub lambda_max: f64,
    /// Smallest generalised Ritz value of `(A, B)` restricted to the Krylov
    /// space (not a sharp lower bound on the true `λ_min`).
    pub lambda_min: f64,
    /// All Ritz values, ascending.
    pub ritz_values: Vec<f64>,
    /// Lanczos steps performed.
    pub iterations: usize,
}

fn tridiagonal_extremes(alpha: &[f64], beta: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let m = alpha.len();
    let mut t = DenseMatrix::zeros(m, m);
    for i in 0..m {
        t.set(i, i, alpha[i]);
        if i + 1 < m {
            t.set(i, i + 1, beta[i]);
            t.set(i + 1, i, beta[i]);
        }
    }
    let (vals, _) = t.symmetric_eigen()?;
    Ok(vals)
}

/// Estimates the extreme eigenvalues of a symmetric operator with Lanczos
/// (full reorthogonalisation — Krylov dimensions here are small).
///
/// If `deflate` is given, every iterate is kept orthogonal to that vector;
/// pass the all-ones vector when `a` is a connected graph Laplacian so the
/// returned `lambda_min` estimates the Fiedler value rather than 0.
///
/// # Errors
/// [`LinalgError::InvalidArgument`] for a zero-dimensional operator;
/// propagates tridiagonal eigensolver failures.
pub fn lanczos_extreme<A>(
    a: &A,
    deflate: Option<&[f64]>,
    opts: &LanczosOptions,
) -> Result<LanczosResult, LinalgError>
where
    A: LinearOperator + ?Sized,
{
    let n = a.dim();
    if n == 0 {
        return Err(LinalgError::InvalidArgument(
            "operator has dimension 0".into(),
        ));
    }
    let m_cap = opts.max_iters.min(n).max(1);

    let mut v = random_unit_perp_ones(n, opts.seed);
    if let Some(u) = deflate {
        project_out(&mut v, u);
        crate::vector::normalize(&mut v);
    }

    let mut basis: Vec<Vec<f64>> = vec![v.clone()];
    let mut alpha: Vec<f64> = Vec::new();
    let mut beta: Vec<f64> = Vec::new();
    let mut w = vec![0.0; n];
    let mut prev_extremes = (f64::NAN, f64::NAN);

    for j in 0..m_cap {
        a.apply(&basis[j], &mut w);
        if let Some(u) = deflate {
            project_out(&mut w, u);
        }
        let aj = dot(&w, &basis[j]);
        alpha.push(aj);
        // Full reorthogonalisation against the basis.
        crate::vector::mgs_orthogonalize(&mut w, &basis);
        let bj = crate::vector::norm2(&w);
        // Early-stopping check on the extreme Ritz values.
        if (j + 1) % 5 == 0 || j + 1 == m_cap || bj <= 1e-13 {
            let ritz = tridiagonal_extremes(&alpha, &beta)?;
            let (lo, hi) = (ritz[0], *ritz.last().unwrap());
            let (plo, phi) = prev_extremes;
            let scale = hi.abs().max(1.0);
            if bj <= 1e-13
                || ((hi - phi).abs() <= opts.tol * scale && (lo - plo).abs() <= opts.tol * scale)
            {
                return Ok(LanczosResult {
                    lambda_max: hi,
                    lambda_min: lo,
                    iterations: j + 1,
                    ritz_values: ritz,
                });
            }
            prev_extremes = (lo, hi);
        }
        if j + 1 < m_cap {
            beta.push(bj);
            let mut next = w.clone();
            crate::vector::scale(&mut next, 1.0 / bj);
            basis.push(next);
        }
    }

    let ritz = tridiagonal_extremes(&alpha, &beta)?;
    Ok(LanczosResult {
        lambda_max: *ritz.last().unwrap(),
        lambda_min: ritz[0],
        iterations: m_cap,
        ritz_values: ritz,
    })
}

/// Generalised Lanczos for the symmetric pencil `A x = λ B x` with `B`
/// symmetric positive definite on the subspace orthogonal to `deflate`.
///
/// The iteration runs in the `B`-inner product; `solve_b(rhs, out)` must
/// (approximately) solve `B·out = rhs`. Both `A` and `B` may be singular
/// along `deflate` (the all-ones vector for connected Laplacians) — iterates
/// are projected against it at every step.
///
/// Used by `ingrass-metrics` with `A = L_G`, `B = L_H` and a
/// tree-preconditioned CG as `solve_b` to estimate
/// `λ_max(L_H⁺ L_G)`.
///
/// # Errors
/// [`LinalgError::InvalidArgument`] on dimension mismatch or zero dimension;
/// propagates tridiagonal eigensolver failures.
pub fn generalized_lanczos<A, B, S>(
    a: &A,
    b: &B,
    solve_b: S,
    deflate: Option<&[f64]>,
    opts: &LanczosOptions,
) -> Result<PencilEigenResult, LinalgError>
where
    A: LinearOperator + ?Sized,
    B: LinearOperator + ?Sized,
    S: Fn(&[f64], &mut [f64]),
{
    let n = a.dim();
    if n == 0 {
        return Err(LinalgError::InvalidArgument(
            "operator has dimension 0".into(),
        ));
    }
    if b.dim() != n {
        return Err(LinalgError::DimensionMismatch {
            expected: n,
            found: b.dim(),
        });
    }
    let m_cap = opts.max_iters.min(n).max(1);

    // v₁ random, deflated, B-normalised. Cache B·vⱼ alongside vⱼ.
    let mut v = random_unit_perp_ones(n, opts.seed);
    if let Some(u) = deflate {
        project_out(&mut v, u);
    }
    let mut bv = vec![0.0; n];
    b.apply(&v, &mut bv);
    let bnorm = dot(&v, &bv).max(f64::MIN_POSITIVE).sqrt();
    crate::vector::scale(&mut v, 1.0 / bnorm);
    crate::vector::scale(&mut bv, 1.0 / bnorm);

    let mut basis: Vec<Vec<f64>> = vec![v];
    let mut b_basis: Vec<Vec<f64>> = vec![bv];
    let mut alpha: Vec<f64> = Vec::new();
    let mut beta: Vec<f64> = Vec::new();
    let mut av = vec![0.0; n];
    let mut w = vec![0.0; n];
    let mut prev_extremes = (f64::NAN, f64::NAN);

    for j in 0..m_cap {
        // w = B⁻¹ A vⱼ.
        a.apply(&basis[j], &mut av);
        if let Some(u) = deflate {
            project_out(&mut av, u);
        }
        solve_b(&av, &mut w);
        if let Some(u) = deflate {
            project_out(&mut w, u);
        }
        // αⱼ = wᵀ B vⱼ = (A vⱼ)ᵀ vⱼ.
        let aj = dot(&av, &basis[j]);
        alpha.push(aj);
        // B-orthogonalise w against the basis (two MGS passes).
        for _ in 0..2 {
            for (vi, bvi) in basis.iter().zip(&b_basis) {
                let c = dot(&w, bvi);
                axpy(-c, vi, &mut w);
            }
        }
        // βⱼ = ‖w‖_B.
        let mut bw = vec![0.0; n];
        b.apply(&w, &mut bw);
        if let Some(u) = deflate {
            project_out(&mut bw, u);
        }
        let bj2 = dot(&w, &bw);
        let bj = bj2.max(0.0).sqrt();

        // β below this floor means the residual is inner-solver noise (the
        // Krylov space hit an invariant subspace). Dividing by it would
        // amplify noise into a garbage basis vector and the "Lanczos"
        // directions that follow belong to the *inexactly solved* operator,
        // whose spurious eigenvalues are unbounded. The noise left by a
        // relative-tolerance inner solve scales with the spectral scale of
        // the pencil, so the floor must too: |α| tracks that scale in the
        // B-normalised basis.
        let alpha_scale = alpha.iter().fold(1.0f64, |m, a| m.max(a.abs()));
        let beta_floor = 1e-6 * alpha_scale;
        if (j + 1) % 4 == 0 || j + 1 == m_cap || bj <= beta_floor {
            let ritz = tridiagonal_extremes(&alpha, &beta)?;
            let (lo, hi) = (ritz[0], *ritz.last().unwrap());
            let (plo, phi) = prev_extremes;
            let scale = hi.abs().max(1.0);
            if bj <= beta_floor
                || ((hi - phi).abs() <= opts.tol * scale && (lo - plo).abs() <= opts.tol * scale)
            {
                return Ok(PencilEigenResult {
                    lambda_max: hi,
                    lambda_min: lo,
                    iterations: j + 1,
                    ritz_values: ritz,
                });
            }
            prev_extremes = (lo, hi);
        }

        if j + 1 < m_cap {
            beta.push(bj);
            let inv = 1.0 / bj;
            let mut next = w.clone();
            crate::vector::scale(&mut next, inv);
            crate::vector::scale(&mut bw, inv);
            basis.push(next);
            b_basis.push(bw);
        }
    }

    let ritz = tridiagonal_extremes(&alpha, &beta)?;
    Ok(PencilEigenResult {
        lambda_max: *ritz.last().unwrap(),
        lambda_min: ritz[0],
        iterations: m_cap,
        ritz_values: ritz,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::{pcg, CgOptions, JacobiPrecond};
    use crate::csr::CsrMatrix;

    fn laplacian_cycle(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            let j = (i + 1) % n;
            t.push((i, i, 1.0));
            t.push((j, j, 1.0));
            t.push((i, j, -1.0));
            t.push((j, i, -1.0));
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn finds_extremes_of_diagonal_operator() {
        let t: Vec<(usize, usize, f64)> = (0..10).map(|i| (i, i, (i + 1) as f64)).collect();
        let a = CsrMatrix::from_triplets(10, 10, &t);
        let res = lanczos_extreme(&a, None, &LanczosOptions::default()).unwrap();
        assert!((res.lambda_max - 10.0).abs() < 1e-6, "{}", res.lambda_max);
        assert!((res.lambda_min - 1.0).abs() < 1e-6, "{}", res.lambda_min);
    }

    #[test]
    fn cycle_laplacian_extremes_match_theory() {
        // C_n eigenvalues: 2 - 2cos(2πk/n). For even n, λ_max = 4.
        let n = 16;
        let l = laplacian_cycle(n);
        let ones = vec![1.0; n];
        let res = lanczos_extreme(&l, Some(&ones), &LanczosOptions::default()).unwrap();
        assert!((res.lambda_max - 4.0).abs() < 1e-6, "{}", res.lambda_max);
        let fiedler = 2.0 - 2.0 * (2.0 * std::f64::consts::PI / n as f64).cos();
        assert!(
            (res.lambda_min - fiedler).abs() < 1e-6,
            "min {} vs {}",
            res.lambda_min,
            fiedler
        );
    }

    #[test]
    fn pencil_of_identical_matrices_is_one() {
        let l = laplacian_cycle(12);
        let ones = vec![1.0; 12];
        let pre = JacobiPrecond::from_matrix(&l);
        let solve = |rhs: &[f64], out: &mut [f64]| {
            out.iter_mut().for_each(|v| *v = 0.0);
            pcg(&l, rhs, out, &pre, Some(&ones), &CgOptions::default());
        };
        let res =
            generalized_lanczos(&l, &l, solve, Some(&ones), &LanczosOptions::default()).unwrap();
        assert!((res.lambda_max - 1.0).abs() < 1e-6, "{}", res.lambda_max);
        assert!((res.lambda_min - 1.0).abs() < 1e-6, "{}", res.lambda_min);
    }

    #[test]
    fn pencil_with_scaled_matrix_recovers_scale() {
        let l = laplacian_cycle(10);
        // A = 3·L.
        let t: Vec<(usize, usize, f64)> = (0..10)
            .flat_map(|r| {
                let (cols, vals) = l.row(r);
                cols.iter()
                    .zip(vals)
                    .map(move |(c, v)| (r, *c as usize, 3.0 * v))
                    .collect::<Vec<_>>()
            })
            .collect();
        let a = CsrMatrix::from_triplets(10, 10, &t);
        let ones = vec![1.0; 10];
        let pre = JacobiPrecond::from_matrix(&l);
        let solve = |rhs: &[f64], out: &mut [f64]| {
            out.iter_mut().for_each(|v| *v = 0.0);
            pcg(&l, rhs, out, &pre, Some(&ones), &CgOptions::default());
        };
        let res =
            generalized_lanczos(&a, &l, solve, Some(&ones), &LanczosOptions::default()).unwrap();
        assert!((res.lambda_max - 3.0).abs() < 1e-5, "{}", res.lambda_max);
        assert!((res.lambda_min - 3.0).abs() < 1e-5, "{}", res.lambda_min);
    }

    #[test]
    fn zero_dim_operator_errors() {
        let a = CsrMatrix::from_triplets(0, 0, &[]);
        assert!(lanczos_extreme(&a, None, &LanczosOptions::default()).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let l = laplacian_cycle(20);
        let ones = vec![1.0; 20];
        let o = LanczosOptions::default().with_seed(99);
        let a = lanczos_extreme(&l, Some(&ones), &o).unwrap();
        let b = lanczos_extreme(&l, Some(&ones), &o).unwrap();
        assert_eq!(a.lambda_max, b.lambda_max);
        assert_eq!(a.ritz_values, b.ritz_values);
    }
}
