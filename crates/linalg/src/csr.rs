//! Compressed sparse row matrices.

use crate::op::LinearOperator;

/// A sparse matrix in compressed sparse row (CSR) format.
///
/// Graph Laplacians and adjacency matrices in this workspace are stored as
/// `CsrMatrix`. Indices are `u32` (graphs up to ~4 billion nodes are out of
/// scope); values are `f64`.
///
/// # Example
///
/// ```
/// use ingrass_linalg::CsrMatrix;
/// // [[2, -1], [-1, 2]]
/// let m = CsrMatrix::from_triplets(2, 2, &[(0,0,2.0), (0,1,-1.0), (1,0,-1.0), (1,1,2.0)]);
/// assert_eq!(m.nnz(), 4);
/// let y = m.matvec_alloc(&[1.0, 0.0]);
/// assert_eq!(y, vec![2.0, -1.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n_rows: usize,
    n_cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    data: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate entries are summed; explicit zeros produced by cancellation
    /// are kept (they are harmless and rare in our use).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn from_triplets(n_rows: usize, n_cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut counts = vec![0usize; n_rows + 1];
        for &(r, c, _) in triplets {
            assert!(r < n_rows && c < n_cols, "triplet index out of bounds");
            counts[r + 1] += 1;
        }
        for i in 0..n_rows {
            counts[i + 1] += counts[i];
        }
        let mut indices = vec![0u32; triplets.len()];
        let mut data = vec![0f64; triplets.len()];
        let mut cursor = counts.clone();
        for &(r, c, v) in triplets {
            let k = cursor[r];
            indices[k] = c as u32;
            data[k] = v;
            cursor[r] += 1;
        }
        let mut m = CsrMatrix {
            n_rows,
            n_cols,
            indptr: counts,
            indices,
            data,
        };
        m.sort_and_coalesce();
        m
    }

    /// Builds a CSR matrix directly from its raw parts.
    ///
    /// Rows must be sorted by column index with no duplicates; this is
    /// checked with `debug_assert!` only.
    pub fn from_raw_parts(
        n_rows: usize,
        n_cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        data: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(indptr.len(), n_rows + 1);
        debug_assert_eq!(*indptr.last().unwrap_or(&0), indices.len());
        debug_assert_eq!(indices.len(), data.len());
        #[cfg(debug_assertions)]
        for r in 0..n_rows {
            let cols = &indices[indptr[r]..indptr[r + 1]];
            debug_assert!(cols.windows(2).all(|w| w[0] < w[1]), "row not sorted");
        }
        CsrMatrix {
            n_rows,
            n_cols,
            indptr,
            indices,
            data,
        }
    }

    fn sort_and_coalesce(&mut self) {
        let mut new_indptr = Vec::with_capacity(self.n_rows + 1);
        let mut new_indices = Vec::with_capacity(self.indices.len());
        let mut new_data = Vec::with_capacity(self.data.len());
        new_indptr.push(0);
        let mut row_buf: Vec<(u32, f64)> = Vec::new();
        for r in 0..self.n_rows {
            row_buf.clear();
            for k in self.indptr[r]..self.indptr[r + 1] {
                row_buf.push((self.indices[k], self.data[k]));
            }
            row_buf.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < row_buf.len() {
                let (c, mut v) = row_buf[i];
                let mut j = i + 1;
                while j < row_buf.len() && row_buf[j].0 == c {
                    v += row_buf[j].1;
                    j += 1;
                }
                new_indices.push(c);
                new_data.push(v);
                i = j;
            }
            new_indptr.push(new_indices.len());
        }
        self.indptr = new_indptr;
        self.indices = new_indices;
        self.data = new_data;
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Column indices and values of row `r`.
    ///
    /// # Panics
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let (lo, hi) = (self.indptr[r], self.indptr[r + 1]);
        (&self.indices[lo..hi], &self.data[lo..hi])
    }

    /// The main diagonal as a dense vector (zeros where absent).
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.n_rows.min(self.n_cols);
        let mut d = vec![0.0; n];
        for (r, di) in d.iter_mut().enumerate() {
            let (cols, vals) = self.row(r);
            if let Ok(k) = cols.binary_search(&(r as u32)) {
                *di = vals[k];
            }
        }
        d
    }

    /// Entry `(r, c)`, or `0.0` if not stored.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (cols, vals) = self.row(r);
        match cols.binary_search(&(c as u32)) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// `y ← A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != n_cols` or `y.len() != n_rows`.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols, "matvec: x dimension");
        assert_eq!(y.len(), self.n_rows, "matvec: y dimension");
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.indptr[r]..self.indptr[r + 1] {
                acc += self.data[k] * x[self.indices[k] as usize];
            }
            *yr = acc;
        }
    }

    /// Allocating variant of [`CsrMatrix::matvec`].
    pub fn matvec_alloc(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n_rows];
        self.matvec(x, &mut y);
        y
    }

    /// Quadratic form `xᵀAx`.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n_cols, "quadratic_form: x dimension");
        let mut acc = 0.0;
        for r in 0..self.n_rows {
            let mut row_acc = 0.0;
            for k in self.indptr[r]..self.indptr[r + 1] {
                row_acc += self.data[k] * x[self.indices[k] as usize];
            }
            acc += x[r] * row_acc;
        }
        acc
    }

    /// The transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.n_cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.n_cols {
            counts[i + 1] += counts[i];
        }
        let mut indices = vec![0u32; self.nnz()];
        let mut data = vec![0f64; self.nnz()];
        let mut cursor = counts.clone();
        for r in 0..self.n_rows {
            for k in self.indptr[r]..self.indptr[r + 1] {
                let c = self.indices[k] as usize;
                let p = cursor[c];
                indices[p] = r as u32;
                data[p] = self.data[k];
                cursor[c] += 1;
            }
        }
        CsrMatrix {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            indptr: counts,
            indices,
            data,
        }
    }

    /// Whether the matrix equals its transpose up to `tol` (test helper).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.n_rows != self.n_cols {
            return false;
        }
        let t = self.transpose();
        if t.indptr != self.indptr || t.indices != self.indices {
            return false;
        }
        self.data
            .iter()
            .zip(&t.data)
            .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl LinearOperator for CsrMatrix {
    fn dim(&self) -> usize {
        debug_assert_eq!(self.n_rows, self.n_cols, "operator must be square");
        self.n_rows
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.matvec(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn example() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 2.0),
                (0, 1, -1.0),
                (1, 0, -1.0),
                (1, 1, 2.0),
                (1, 2, -1.0),
                (2, 1, -1.0),
                (2, 2, 2.0),
            ],
        )
    }

    #[test]
    fn triplets_are_sorted_and_coalesced() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (0, 0, 2.0), (0, 1, 3.0)]);
        let (cols, vals) = m.row(0);
        assert_eq!(cols, &[0, 1]);
        assert_eq!(vals, &[2.0, 4.0]);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = example();
        let y = m.matvec_alloc(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![0.0, 0.0, 4.0]);
    }

    #[test]
    fn diagonal_and_get() {
        let m = example();
        assert_eq!(m.diagonal(), vec![2.0, 2.0, 2.0]);
        assert_eq!(m.get(0, 1), -1.0);
        assert_eq!(m.get(0, 2), 0.0);
    }

    #[test]
    fn transpose_of_symmetric_is_identical() {
        let m = example();
        assert!(m.is_symmetric(0.0));
        let t = m.transpose();
        assert_eq!(m, t);
    }

    #[test]
    fn transpose_of_rectangular() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 2, 5.0), (1, 0, 1.0)]);
        let t = m.transpose();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.get(2, 0), 5.0);
        assert_eq!(t.get(0, 1), 1.0);
    }

    #[test]
    fn quadratic_form_matches_matvec() {
        let m = example();
        let x = [1.0, -2.0, 0.5];
        let y = m.matvec_alloc(&x);
        let manual: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((m.quadratic_form(&x) - manual).abs() < 1e-14);
    }

    #[test]
    fn empty_rows_are_fine() {
        let m = CsrMatrix::from_triplets(3, 3, &[(2, 0, 1.0)]);
        assert_eq!(m.row(0).0.len(), 0);
        assert_eq!(m.row(1).0.len(), 0);
        assert_eq!(m.matvec_alloc(&[1.0, 0.0, 0.0]), vec![0.0, 0.0, 1.0]);
    }

    proptest! {
        #[test]
        fn prop_transpose_is_involution(
            entries in proptest::collection::vec((0usize..8, 0usize..8, -10.0f64..10.0), 0..40)
        ) {
            let m = CsrMatrix::from_triplets(8, 8, &entries);
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn prop_matvec_linear(
            entries in proptest::collection::vec((0usize..6, 0usize..6, -5.0f64..5.0), 0..20),
            x in proptest::collection::vec(-3.0f64..3.0, 6),
            y in proptest::collection::vec(-3.0f64..3.0, 6),
        ) {
            let m = CsrMatrix::from_triplets(6, 6, &entries);
            let sum: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
            let m_sum = m.matvec_alloc(&sum);
            let mx = m.matvec_alloc(&x);
            let my = m.matvec_alloc(&y);
            for i in 0..6 {
                prop_assert!((m_sum[i] - mx[i] - my[i]).abs() < 1e-9);
            }
        }
    }
}
