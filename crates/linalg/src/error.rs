use std::error::Error;
use std::fmt;

/// Errors produced by the linear-algebra kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// An iterative method exhausted its iteration budget before reaching the
    /// requested tolerance.
    NotConverged {
        /// Name of the method that failed (e.g. `"pcg"`, `"lanczos"`).
        method: &'static str,
        /// Number of iterations performed.
        iterations: usize,
        /// Residual (or error estimate) at the final iteration.
        residual: f64,
    },
    /// A matrix expected to be symmetric positive definite was not.
    NotSpd {
        /// Index of the pivot at which the Cholesky factorisation broke down.
        pivot: usize,
    },
    /// Operand dimensions are incompatible.
    DimensionMismatch {
        /// Dimension the operation expected.
        expected: usize,
        /// Dimension it received.
        found: usize,
    },
    /// An argument was outside the domain of the routine.
    InvalidArgument(String),
    /// An incremental factor update would grow the stored pattern past the
    /// caller's fill budget; the factor was left untouched.
    FillBudget {
        /// Stored entries the patched factor would need.
        needed: usize,
        /// Maximum the caller allowed.
        budget: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotConverged {
                method,
                iterations,
                residual,
            } => write!(
                f,
                "{method} did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            LinalgError::NotSpd { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            LinalgError::FillBudget { needed, budget } => {
                write!(
                    f,
                    "factor update needs {needed} stored entries, over the fill budget of {budget}"
                )
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = LinalgError::NotConverged {
            method: "pcg",
            iterations: 10,
            residual: 0.5,
        };
        let msg = e.to_string();
        assert!(msg.contains("pcg"));
        assert!(msg.contains("10"));

        let e = LinalgError::DimensionMismatch {
            expected: 4,
            found: 3,
        };
        assert!(e.to_string().contains("expected 4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
