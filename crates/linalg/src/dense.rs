//! Small dense matrices: Cholesky, symmetric eigendecomposition.
//!
//! These are *reference* kernels: `O(n³)` and intended for test oracles,
//! exact effective-resistance computation on small graphs, and the tiny
//! tridiagonal eigenproblems produced by Lanczos. They are not meant for the
//! large graphs the sparse path handles.

use crate::csr::CsrMatrix;
use crate::error::LinalgError;

/// A dense row-major matrix of `f64`.
///
/// # Example
///
/// ```
/// use ingrass_linalg::DenseMatrix;
/// let mut a = DenseMatrix::zeros(2, 2);
/// a.set(0, 0, 4.0); a.set(0, 1, 1.0);
/// a.set(1, 0, 1.0); a.set(1, 1, 3.0);
/// let x = a.solve_spd(&[1.0, 2.0]).unwrap();
/// assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n_rows: usize,
    n_cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// An `n_rows × n_cols` matrix of zeros.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        DenseMatrix {
            n_rows,
            n_cols,
            data: vec![0.0; n_rows * n_cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Densifies a sparse matrix.
    pub fn from_csr(m: &CsrMatrix) -> Self {
        let mut d = DenseMatrix::zeros(m.n_rows(), m.n_cols());
        for r in 0..m.n_rows() {
            let (cols, vals) = m.row(r);
            for (c, v) in cols.iter().zip(vals) {
                d.set(r, *c as usize, *v);
            }
        }
        d
    }

    /// Builds from a row-major slice.
    ///
    /// # Panics
    /// Panics if `data.len() != n_rows * n_cols`.
    pub fn from_rows(n_rows: usize, n_cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), n_rows * n_cols, "from_rows: length mismatch");
        DenseMatrix {
            n_rows,
            n_cols,
            data: data.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Entry `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.n_cols + c]
    }

    /// Sets entry `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.n_cols + c] = v;
    }

    /// Adds `v` to entry `(r, c)`.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.n_cols + c] += v;
    }

    /// `y ← A·x` (allocating).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n_cols, "matvec: dimension");
        let mut y = vec![0.0; self.n_rows];
        for r in 0..self.n_rows {
            let row = &self.data[r * self.n_cols..(r + 1) * self.n_cols];
            y[r] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// Cholesky factorisation `A = LLᵀ` of a symmetric positive definite
    /// matrix; returns the lower factor.
    ///
    /// # Errors
    /// [`LinalgError::NotSpd`] if a pivot is non-positive;
    /// [`LinalgError::DimensionMismatch`] if the matrix is not square.
    pub fn cholesky(&self) -> Result<DenseMatrix, LinalgError> {
        if self.n_rows != self.n_cols {
            return Err(LinalgError::DimensionMismatch {
                expected: self.n_rows,
                found: self.n_cols,
            });
        }
        let n = self.n_rows;
        let mut l = DenseMatrix::zeros(n, n);
        for j in 0..n {
            let mut d = self.get(j, j);
            for k in 0..j {
                d -= l.get(j, k) * l.get(j, k);
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotSpd { pivot: j });
            }
            let dj = d.sqrt();
            l.set(j, j, dj);
            for i in (j + 1)..n {
                let mut s = self.get(i, j);
                for k in 0..j {
                    s -= l.get(i, k) * l.get(j, k);
                }
                l.set(i, j, s / dj);
            }
        }
        Ok(l)
    }

    /// Solves `A x = b` for SPD `A` via Cholesky.
    ///
    /// # Errors
    /// Propagates [`LinalgError::NotSpd`]; returns
    /// [`LinalgError::DimensionMismatch`] if `b.len() != n`.
    pub fn solve_spd(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if b.len() != self.n_rows {
            return Err(LinalgError::DimensionMismatch {
                expected: self.n_rows,
                found: b.len(),
            });
        }
        let l = self.cholesky()?;
        let n = self.n_rows;
        // Forward substitution L y = b.
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                let v = y[k];
                y[i] -= l.get(i, k) * v;
            }
            y[i] /= l.get(i, i);
        }
        // Back substitution Lᵀ x = y.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                let v = y[k];
                y[i] -= l.get(k, i) * v;
            }
            y[i] /= l.get(i, i);
        }
        Ok(y)
    }

    /// Symmetric eigendecomposition via cyclic Jacobi rotations.
    ///
    /// Returns `(eigenvalues, eigenvectors)` with eigenvalues sorted in
    /// ascending order and the i-th *column* of the returned matrix holding
    /// the corresponding unit eigenvector. Only the symmetric part of `self`
    /// is used.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] if the matrix is not square;
    /// [`LinalgError::NotConverged`] if the off-diagonal mass fails to drop
    /// below tolerance within 100 sweeps (does not happen for symmetric
    /// input).
    pub fn symmetric_eigen(&self) -> Result<(Vec<f64>, DenseMatrix), LinalgError> {
        if self.n_rows != self.n_cols {
            return Err(LinalgError::DimensionMismatch {
                expected: self.n_rows,
                found: self.n_cols,
            });
        }
        let n = self.n_rows;
        if n == 0 {
            return Ok((Vec::new(), DenseMatrix::zeros(0, 0)));
        }
        // Work on the symmetrised copy.
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a.set(i, j, 0.5 * (self.get(i, j) + self.get(j, i)));
            }
        }
        let mut v = DenseMatrix::identity(n);
        let frob: f64 = a.data.iter().map(|x| x * x).sum::<f64>().sqrt();
        let tol = 1e-14 * frob.max(1.0);
        let max_sweeps = 100;
        for _sweep in 0..max_sweeps {
            let mut off = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    off += a.get(i, j) * a.get(i, j);
                }
            }
            if off.sqrt() <= tol {
                let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (a.get(i, i), i)).collect();
                pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
                let values: Vec<f64> = pairs.iter().map(|p| p.0).collect();
                let mut vectors = DenseMatrix::zeros(n, n);
                for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
                    for r in 0..n {
                        vectors.set(r, new_col, v.get(r, old_col));
                    }
                }
                return Ok((values, vectors));
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = a.get(p, q);
                    if apq.abs() <= tol / (n as f64) {
                        continue;
                    }
                    let app = a.get(p, p);
                    let aqq = a.get(q, q);
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    for k in 0..n {
                        let akp = a.get(k, p);
                        let akq = a.get(k, q);
                        a.set(k, p, c * akp - s * akq);
                        a.set(k, q, s * akp + c * akq);
                    }
                    for k in 0..n {
                        let apk = a.get(p, k);
                        let aqk = a.get(q, k);
                        a.set(p, k, c * apk - s * aqk);
                        a.set(q, k, s * apk + c * aqk);
                    }
                    for k in 0..n {
                        let vkp = v.get(k, p);
                        let vkq = v.get(k, q);
                        v.set(k, p, c * vkp - s * vkq);
                        v.set(k, q, s * vkp + c * vkq);
                    }
                }
            }
        }
        Err(LinalgError::NotConverged {
            method: "jacobi_eigen",
            iterations: max_sweeps,
            residual: f64::NAN,
        })
    }

    /// Applies the Moore–Penrose pseudo-inverse of a singular symmetric PSD
    /// matrix (e.g. a graph Laplacian) to `b`, using the eigendecomposition.
    ///
    /// Eigenvalues with magnitude below `rank_tol · λ_max` are treated as
    /// zero.
    ///
    /// # Errors
    /// Propagates errors from [`DenseMatrix::symmetric_eigen`].
    pub fn pseudo_inverse_apply(&self, b: &[f64], rank_tol: f64) -> Result<Vec<f64>, LinalgError> {
        let (vals, vecs) = self.symmetric_eigen()?;
        let n = self.n_rows;
        let lmax = vals.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let cutoff = rank_tol * lmax.max(f64::MIN_POSITIVE);
        let mut x = vec![0.0; n];
        for (i, &lam) in vals.iter().enumerate() {
            if lam.abs() <= cutoff {
                continue;
            }
            let mut coeff = 0.0;
            for r in 0..n {
                coeff += vecs.get(r, i) * b[r];
            }
            coeff /= lam;
            for r in 0..n {
                x[r] += coeff * vecs.get(r, i);
            }
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cholesky_of_identity() {
        let i = DenseMatrix::identity(4);
        let l = i.cholesky().unwrap();
        assert_eq!(l, DenseMatrix::identity(4));
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let m = DenseMatrix::from_rows(2, 2, &[1.0, 2.0, 2.0, 1.0]);
        assert!(matches!(m.cholesky(), Err(LinalgError::NotSpd { .. })));
    }

    #[test]
    fn solve_spd_roundtrip() {
        let a = DenseMatrix::from_rows(3, 3, &[4.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 5.0]);
        let x_true = [1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let x = a.solve_spd(&b).unwrap();
        for i in 0..3 {
            assert!((x[i] - x_true[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn eigen_of_diagonal_matrix() {
        let m = DenseMatrix::from_rows(3, 3, &[3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]);
        let (vals, vecs) = m.symmetric_eigen().unwrap();
        assert!((vals[0] - 1.0).abs() < 1e-12);
        assert!((vals[1] - 2.0).abs() < 1e-12);
        assert!((vals[2] - 3.0).abs() < 1e-12);
        // Eigenvector for eigenvalue 1.0 is e_1.
        assert!(vecs.get(1, 0).abs() > 0.99);
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        let m = DenseMatrix::from_rows(3, 3, &[2.0, -1.0, 0.0, -1.0, 2.0, -1.0, 0.0, -1.0, 2.0]);
        let (vals, vecs) = m.symmetric_eigen().unwrap();
        // A = V diag(vals) Vᵀ
        for i in 0..3 {
            for j in 0..3 {
                let mut acc = 0.0;
                for k in 0..3 {
                    acc += vecs.get(i, k) * vals[k] * vecs.get(j, k);
                }
                assert!((acc - m.get(i, j)).abs() < 1e-10, "entry ({i},{j})");
            }
        }
    }

    #[test]
    fn pseudo_inverse_on_laplacian() {
        // Path graph P3 Laplacian; pinv satisfies L L⁺ b = b for b ⊥ 1.
        let l = DenseMatrix::from_rows(3, 3, &[1.0, -1.0, 0.0, -1.0, 2.0, -1.0, 0.0, -1.0, 1.0]);
        let b = [1.0, 0.0, -1.0];
        let x = l.pseudo_inverse_apply(&b, 1e-10).unwrap();
        let lb = l.matvec(&x);
        for i in 0..3 {
            assert!((lb[i] - b[i]).abs() < 1e-10);
        }
        // Effective resistance between ends of P3 (unit weights) is 2.
        let r = x[0] - x[2];
        assert!((r - 2.0).abs() < 1e-10);
    }

    #[test]
    fn eigen_empty_matrix() {
        let m = DenseMatrix::zeros(0, 0);
        let (vals, _) = m.symmetric_eigen().unwrap();
        assert!(vals.is_empty());
    }

    proptest! {
        #[test]
        fn prop_cholesky_solve_matches_eigen_solve(
            raw in proptest::collection::vec(-1.0f64..1.0, 16),
            b in proptest::collection::vec(-1.0f64..1.0, 4),
        ) {
            // Build SPD A = MᵀM + I.
            let m = DenseMatrix::from_rows(4, 4, &raw);
            let mut a = DenseMatrix::zeros(4, 4);
            for i in 0..4 {
                for j in 0..4 {
                    let mut acc = if i == j { 1.0 } else { 0.0 };
                    for k in 0..4 {
                        acc += m.get(k, i) * m.get(k, j);
                    }
                    a.set(i, j, acc);
                }
            }
            let x = a.solve_spd(&b).unwrap();
            let ax = a.matvec(&x);
            for i in 0..4 {
                prop_assert!((ax[i] - b[i]).abs() < 1e-8);
            }
        }

        #[test]
        fn prop_eigenvalues_sum_to_trace(
            raw in proptest::collection::vec(-2.0f64..2.0, 25),
        ) {
            let mut a = DenseMatrix::from_rows(5, 5, &raw);
            // Symmetrise.
            for i in 0..5 {
                for j in 0..5 {
                    let s = 0.5 * (a.get(i, j) + a.get(j, i));
                    a.set(i, j, s);
                    a.set(j, i, s);
                }
            }
            let trace: f64 = (0..5).map(|i| a.get(i, i)).sum();
            let (vals, _) = a.symmetric_eigen().unwrap();
            prop_assert!((vals.iter().sum::<f64>() - trace).abs() < 1e-9);
        }
    }
}
