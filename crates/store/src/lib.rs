//! **ingrass-store** — durable persistence for the inGRASS serving
//! engine: a versioned, checksummed write-ahead log of update batches
//! plus periodic schema-versioned snapshots of the complete serving
//! state, with crash recovery = newest readable snapshot + WAL-tail
//! replay.
//!
//! The crate splits into three layers:
//!
//! * [`codec`] — bit-exact little-endian encoding of the payload types
//!   (update batches, the exported [`ingrass::state::ServingState`]);
//! * [`wal`] / [`snapshot`] — the on-disk containers: length-prefixed,
//!   FNV-checksummed WAL frames in rotating segments (torn tails
//!   truncated, mid-log damage fatal), and atomically written snapshot
//!   files with a schema-migration hook;
//! * [`PersistentEngine`] — the public facade: write-ahead
//!   `apply_batch`, checkpoint cadence and compaction per
//!   [`StorePolicy`], and [`PersistentEngine::open`] recovery that
//!   reproduces the pre-crash engine bit-for-bit (the recovery parity
//!   suite pins `recover(crash_at_k) == run_straight(k)` at every batch
//!   prefix).

#![deny(missing_docs)]

pub mod codec;
mod engine;
pub mod snapshot;
pub mod wal;

pub use engine::{PersistentEngine, RecoveryReport, StorePolicy};

use std::path::PathBuf;

/// FNV-1a offset basis — the checksum seed used across WAL frames and
/// snapshot payloads (matching the in-memory snapshot checksum).
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a over `bytes`, continuing from `h`.
pub(crate) fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Errors from the persistence layer.
#[derive(Debug)]
pub enum StoreError {
    /// A filesystem operation failed.
    Io(std::io::Error),
    /// On-disk bytes that should never exist given the write protocol:
    /// damage outside the last WAL segment's tail, missing WAL coverage,
    /// an unreadable store, or a replay that diverged.
    Corrupt {
        /// The offending file (or store directory).
        file: PathBuf,
        /// What was wrong with it.
        detail: String,
    },
    /// A snapshot carries a payload schema this build cannot migrate.
    Schema {
        /// Schema version found in the file.
        found: u32,
        /// Newest schema this build reads.
        supported: u32,
    },
    /// A [`StorePolicy`] or store-directory precondition failed.
    Config(String),
    /// The wrapped engine failed (setup, batch application, restore).
    Engine(ingrass::InGrassError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o: {e}"),
            StoreError::Corrupt { file, detail } => {
                write!(f, "corrupt store ({}): {detail}", file.display())
            }
            StoreError::Schema { found, supported } => write!(
                f,
                "snapshot schema {found} is not readable by this build (supports ≤ {supported})"
            ),
            StoreError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            StoreError::Engine(e) => write!(f, "engine: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<ingrass::InGrassError> for StoreError {
    fn from(e: ingrass::InGrassError) -> Self {
        StoreError::Engine(e)
    }
}

/// Folds persistence errors into the workspace-level error (the impl
/// lives here, next to [`StoreError`], because of the orphan rule — see
/// [`ingrass::IngrassError`]).
impl From<StoreError> for ingrass::IngrassError {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Engine(inner) => ingrass::IngrassError::Engine(inner),
            other => ingrass::IngrassError::Store(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_error_folds_into_the_workspace_error() {
        let e: ingrass::IngrassError = StoreError::Config("bad".into()).into();
        assert!(matches!(e, ingrass::IngrassError::Store(_)));
        assert!(e.to_string().contains("store"));
        let e: ingrass::IngrassError =
            StoreError::Engine(ingrass::InGrassError::InvalidConfig("x".into())).into();
        assert!(
            matches!(e, ingrass::IngrassError::Engine(_)),
            "engine errors keep their structure through the store layer"
        );
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // FNV-1a 64-bit reference values.
        assert_eq!(fnv1a(FNV_OFFSET, b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(FNV_OFFSET, b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(FNV_OFFSET, b"foobar"), 0x85944171f73967e8);
    }
}
