//! The write-ahead log: checksummed, length-prefixed record frames in
//! rotating segment files.
//!
//! # On-disk format
//!
//! Each segment file is named `wal-<start-seq>.log` (zero-padded so
//! lexical and numeric order agree) and starts with the 8-byte magic
//! `INGWAL01` — the trailing `01` is the format version. After the header
//! come frames, each:
//!
//! ```text
//! [len: u32 LE] [crc: u64 LE] [body: len bytes]
//! body = [seq: u64 LE] [kind: u8] [payload]
//! ```
//!
//! `crc` is FNV-1a over the body. `seq` numbers records contiguously from
//! 1 across all segments; a segment's first record carries the sequence
//! number in its file name. `kind` is [`WalRecord::Batch`] (payload =
//! [`crate::codec::encode_batch`]) or [`WalRecord::Resetup`] (empty
//! payload — an explicitly requested re-setup; *drift-triggered* re-setups
//! are not logged because replaying the batches reproduces them
//! deterministically).
//!
//! # Corruption policy
//!
//! A crash can tear only the tail of the *last* segment (frames are
//! appended and synced in order), so on open:
//!
//! * a malformed frame in the last segment — short header, length past
//!   end-of-file, checksum mismatch, or a non-contiguous sequence number —
//!   marks the **torn tail**: everything before it is served, the tail is
//!   truncated away on the next append;
//! * the same damage in any *earlier* segment cannot be a crash artifact
//!   and fails loudly with [`StoreError::Corrupt`] instead — silently
//!   dropping records from the middle of the log would replay a different
//!   history than the one that ran.

use crate::{fnv1a, StoreError, FNV_OFFSET};
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Segment-file magic: `INGWAL` + 2-digit format version.
pub const WAL_MAGIC: [u8; 8] = *b"INGWAL01";

/// One recovered WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// An update batch: the config it ran under plus its operations.
    Batch {
        /// The batch's update configuration.
        cfg: ingrass::UpdateConfig,
        /// The batch's operations, in application order.
        ops: Vec<ingrass::UpdateOp>,
    },
    /// An explicitly requested re-setup
    /// ([`crate::PersistentEngine::resetup`]).
    Resetup,
}

const KIND_BATCH: u8 = 0;
const KIND_RESETUP: u8 = 1;

/// What [`WalDir::open`] recovered.
#[derive(Debug)]
pub struct WalLoad {
    /// Records with sequence numbers strictly greater than the requested
    /// floor, in order.
    pub records: Vec<(u64, WalRecord)>,
    /// The last sequence number present in the log (0 if empty).
    pub last_seq: u64,
    /// Bytes of torn tail dropped from the last segment (0 for a clean
    /// log).
    pub truncated_bytes: u64,
}

/// A WAL directory: the set of `wal-*.log` segments plus the append
/// position.
#[derive(Debug)]
pub struct WalDir {
    dir: PathBuf,
    /// Open handle to the active (last) segment.
    active: File,
    active_path: PathBuf,
    /// Byte length of the valid prefix of the active segment.
    active_len: u64,
    /// Last sequence number in the log.
    last_seq: u64,
}

fn segment_path(dir: &Path, start_seq: u64) -> PathBuf {
    dir.join(format!("wal-{start_seq:020}.log"))
}

/// Lists segment files as `(start_seq, path)`, ascending.
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut segs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(num) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".log"))
        {
            if let Ok(seq) = num.parse::<u64>() {
                segs.push((seq, entry.path()));
            }
        }
    }
    segs.sort_unstable();
    Ok(segs)
}

/// A parsed frame: `(seq, kind, payload, end_offset)`.
struct Frame {
    seq: u64,
    kind: u8,
    payload: Vec<u8>,
    end: usize,
}

/// Parses the frame starting at `pos`; `None` means the bytes from `pos`
/// on do not form a whole, checksummed frame (torn or corrupt).
fn parse_frame(bytes: &[u8], pos: usize) -> Option<Frame> {
    let header_end = pos.checked_add(12)?;
    if header_end > bytes.len() {
        return None;
    }
    let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
    let crc = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
    let end = header_end.checked_add(len)?;
    if len < 9 || end > bytes.len() {
        return None;
    }
    let body = &bytes[header_end..end];
    if fnv1a(FNV_OFFSET, body) != crc {
        return None;
    }
    Some(Frame {
        seq: u64::from_le_bytes(body[..8].try_into().unwrap()),
        kind: body[8],
        payload: body[9..].to_vec(),
        end,
    })
}

fn decode_record(kind: u8, payload: &[u8]) -> Result<WalRecord, String> {
    match kind {
        KIND_BATCH => {
            let (cfg, ops) = crate::codec::decode_batch(payload).map_err(|e| e.to_string())?;
            Ok(WalRecord::Batch { cfg, ops })
        }
        KIND_RESETUP => {
            if payload.is_empty() {
                Ok(WalRecord::Resetup)
            } else {
                Err("re-setup marker carries a payload".into())
            }
        }
        k => Err(format!("unknown record kind {k}")),
    }
}

impl WalDir {
    /// Opens (creating if needed) the WAL in `dir`, scanning every segment
    /// and recovering the records after `after_seq` — the sequence number
    /// the caller's snapshot already covers.
    ///
    /// # Errors
    /// [`StoreError::Corrupt`] for damage anywhere but the last segment's
    /// tail (see the module docs for the policy), a bad magic, or a
    /// sequence discontinuity between segments; [`StoreError::Io`] for
    /// filesystem failures.
    pub fn open(dir: &Path, after_seq: u64) -> Result<(Self, WalLoad), StoreError> {
        fs::create_dir_all(dir)?;
        let segs = list_segments(dir)?;
        let mut records = Vec::new();
        let mut last_seq = 0u64;
        let mut truncated_bytes = 0u64;
        let mut active = None;
        for (i, (start_seq, path)) in segs.iter().enumerate() {
            let is_last = i + 1 == segs.len();
            let bytes = fs::read(path)?;
            let corrupt = |detail: String| StoreError::Corrupt {
                file: path.clone(),
                detail,
            };
            if bytes.len() < WAL_MAGIC.len() || bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
                return Err(corrupt("bad or missing segment magic".into()));
            }
            let mut pos = WAL_MAGIC.len();
            let mut expected = *start_seq;
            if last_seq != 0 && *start_seq != last_seq + 1 {
                return Err(corrupt(format!(
                    "segment starts at seq {start_seq}, previous segment ended at {last_seq}"
                )));
            }
            // Compaction only ever deletes segments fully covered by the
            // snapshot, so the oldest surviving segment must start at or
            // before the first record to replay; starting later means
            // records are missing, not compacted.
            if i == 0 && *start_seq > after_seq + 1 {
                return Err(corrupt(format!(
                    "oldest segment starts at seq {start_seq} but replay needs seq {}",
                    after_seq + 1
                )));
            }
            while pos < bytes.len() {
                let frame = parse_frame(&bytes, pos).filter(|f| f.seq == expected);
                let Some(frame) = frame else {
                    if is_last {
                        // Torn tail: keep the valid prefix, drop the rest.
                        truncated_bytes = (bytes.len() - pos) as u64;
                        break;
                    }
                    return Err(corrupt(format!(
                        "corrupt frame at byte {pos} in a non-final segment"
                    )));
                };
                // A frame that checksums clean but does not decode was
                // written by a buggy or newer producer, not torn by a
                // crash — always loud.
                let record = decode_record(frame.kind, &frame.payload)
                    .map_err(|detail| corrupt(format!("record seq {expected}: {detail}")))?;
                if frame.seq > after_seq {
                    records.push((frame.seq, record));
                }
                last_seq = frame.seq;
                expected += 1;
                pos = frame.end;
            }
            if is_last {
                let valid_len = (bytes.len() as u64) - truncated_bytes;
                let mut file = OpenOptions::new().read(true).write(true).open(path)?;
                if truncated_bytes > 0 {
                    file.set_len(valid_len)?;
                    file.sync_all()?;
                }
                file.seek(SeekFrom::Start(valid_len))?;
                active = Some((file, path.clone(), valid_len));
            }
        }
        let (active, active_path, active_len) = match active {
            Some(a) => a,
            None => {
                // Empty log: start the first segment at seq 1.
                let path = segment_path(dir, after_seq + 1);
                let mut file = OpenOptions::new()
                    .create(true)
                    .truncate(true)
                    .read(true)
                    .write(true)
                    .open(&path)?;
                file.write_all(&WAL_MAGIC)?;
                file.sync_all()?;
                (file, path, WAL_MAGIC.len() as u64)
            }
        };
        let wal = WalDir {
            dir: dir.to_path_buf(),
            active,
            active_path,
            active_len,
            last_seq: last_seq.max(after_seq),
        };
        let load = WalLoad {
            records,
            last_seq: wal.last_seq,
            truncated_bytes,
        };
        Ok((wal, load))
    }

    /// The last sequence number in the log.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Appends one record, assigning it the next sequence number. With
    /// `sync`, the frame is fsynced before this returns (write-ahead
    /// durability); without, the OS flushes at its leisure.
    ///
    /// Rotates to a fresh segment first when the active one has reached
    /// `segment_bytes`.
    pub fn append(
        &mut self,
        record: &WalRecord,
        segment_bytes: u64,
        sync: bool,
    ) -> Result<u64, StoreError> {
        if self.active_len >= segment_bytes.max(WAL_MAGIC.len() as u64 + 1) {
            self.rotate()?;
        }
        let seq = self.last_seq + 1;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&seq.to_le_bytes());
        match record {
            WalRecord::Batch { cfg, ops } => {
                bytes.push(KIND_BATCH);
                bytes.extend_from_slice(&crate::codec::encode_batch(cfg, ops));
            }
            WalRecord::Resetup => bytes.push(KIND_RESETUP),
        }
        let crc = fnv1a(FNV_OFFSET, &bytes);
        let mut frame = Vec::with_capacity(12 + bytes.len());
        frame.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc.to_le_bytes());
        frame.extend_from_slice(&bytes);
        self.active.write_all(&frame)?;
        if sync {
            self.active.sync_data()?;
        }
        self.active_len += frame.len() as u64;
        self.last_seq = seq;
        Ok(seq)
    }

    /// Closes the active segment and opens a fresh one starting at the
    /// next sequence number.
    fn rotate(&mut self) -> Result<(), StoreError> {
        self.active.sync_all()?;
        let path = segment_path(&self.dir, self.last_seq + 1);
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&path)?;
        file.write_all(&WAL_MAGIC)?;
        file.sync_all()?;
        self.active = file;
        self.active_path = path;
        self.active_len = WAL_MAGIC.len() as u64;
        Ok(())
    }

    /// Deletes every segment whose records are all covered by a snapshot
    /// at `through_seq` — i.e. segments whose *successor's* start is still
    /// ≤ `through_seq + 1`. The active segment is never deleted. Returns
    /// the number of segments removed.
    pub fn compact(&mut self, through_seq: u64) -> Result<usize, StoreError> {
        let segs = list_segments(&self.dir)?;
        let mut removed = 0;
        for window in segs.windows(2) {
            let (_, path) = &window[0];
            let (next_start, _) = window[1];
            if next_start <= through_seq + 1 && *path != self.active_path {
                fs::remove_file(path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Number of segment files currently on disk.
    pub fn segment_count(&self) -> Result<usize, StoreError> {
        Ok(list_segments(&self.dir)?.len())
    }
}

/// Reads a whole WAL without opening it for append — the read-only half
/// of [`WalDir::open`], for tools and tests.
pub fn read_wal(dir: &Path, after_seq: u64) -> Result<WalLoad, StoreError> {
    // Delegate to open() but on a copy-free read path: open() truncates
    // torn tails in place, which a read-only scan must not. So parse here
    // with the same rules, minus the mutation.
    let segs = list_segments(dir)?;
    let mut records = Vec::new();
    let mut last_seq = 0u64;
    let mut truncated_bytes = 0u64;
    for (i, (start_seq, path)) in segs.iter().enumerate() {
        let is_last = i + 1 == segs.len();
        let bytes = fs::read(path)?;
        let corrupt = |detail: String| StoreError::Corrupt {
            file: path.clone(),
            detail,
        };
        if bytes.len() < WAL_MAGIC.len() || bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(corrupt("bad or missing segment magic".into()));
        }
        if last_seq != 0 && *start_seq != last_seq + 1 {
            return Err(corrupt(format!(
                "segment starts at seq {start_seq}, previous segment ended at {last_seq}"
            )));
        }
        if i == 0 && *start_seq > after_seq + 1 {
            return Err(corrupt(format!(
                "oldest segment starts at seq {start_seq} but replay needs seq {}",
                after_seq + 1
            )));
        }
        let mut pos = WAL_MAGIC.len();
        let mut expected = *start_seq;
        while pos < bytes.len() {
            let frame = parse_frame(&bytes, pos).filter(|f| f.seq == expected);
            let Some(frame) = frame else {
                if is_last {
                    truncated_bytes = (bytes.len() - pos) as u64;
                    break;
                }
                return Err(corrupt(format!(
                    "corrupt frame at byte {pos} in a non-final segment"
                )));
            };
            let record = decode_record(frame.kind, &frame.payload)
                .map_err(|detail| corrupt(format!("record seq {expected}: {detail}")))?;
            if frame.seq > after_seq {
                records.push((frame.seq, record));
            }
            last_seq = frame.seq;
            expected += 1;
            pos = frame.end;
        }
    }
    Ok(WalLoad {
        records,
        last_seq: last_seq.max(after_seq),
        truncated_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingrass::{UpdateConfig, UpdateOp};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ingrass-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn batch(u: usize, v: usize) -> WalRecord {
        WalRecord::Batch {
            cfg: UpdateConfig::default(),
            ops: vec![UpdateOp::Insert { u, v, weight: 1.0 }],
        }
    }

    #[test]
    fn append_reopen_replays_in_order() {
        let dir = tmpdir("replay");
        let (mut wal, load) = WalDir::open(&dir, 0).unwrap();
        assert_eq!(load.last_seq, 0);
        for k in 0..5 {
            let seq = wal.append(&batch(k, k + 1), u64::MAX, false).unwrap();
            assert_eq!(seq, k as u64 + 1);
        }
        drop(wal);
        let (_, load) = WalDir::open(&dir, 0).unwrap();
        assert_eq!(load.last_seq, 5);
        assert_eq!(load.truncated_bytes, 0);
        let seqs: Vec<u64> = load.records.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
        // Replay floor: only records after the snapshot's seq come back.
        let (_, load) = WalDir::open(&dir, 3).unwrap();
        let seqs: Vec<u64> = load.records.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![4, 5]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_splits_segments_and_replay_spans_them() {
        let dir = tmpdir("rotate");
        let (mut wal, _) = WalDir::open(&dir, 0).unwrap();
        // Tiny segment budget: every append lands in a fresh segment.
        for k in 0..6 {
            wal.append(&batch(k, k + 2), 16, false).unwrap();
        }
        assert!(wal.segment_count().unwrap() >= 3);
        drop(wal);
        let (_, load) = WalDir::open(&dir, 0).unwrap();
        assert_eq!(load.records.len(), 6);
        assert_eq!(load.last_seq, 6);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume() {
        let dir = tmpdir("torn");
        let (mut wal, _) = WalDir::open(&dir, 0).unwrap();
        for k in 0..3 {
            wal.append(&batch(k, k + 1), u64::MAX, false).unwrap();
        }
        let path = wal.active_path.clone();
        drop(wal);
        // Chop the last 5 bytes: record 3 is torn.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (mut wal, load) = WalDir::open(&dir, 0).unwrap();
        assert_eq!(load.records.len(), 2);
        assert_eq!(load.last_seq, 2);
        assert!(load.truncated_bytes > 0);
        // The log keeps going from the truncation point.
        let seq = wal.append(&batch(9, 10), u64::MAX, false).unwrap();
        assert_eq!(seq, 3);
        drop(wal);
        let (_, load) = WalDir::open(&dir, 0).unwrap();
        assert_eq!(load.records.len(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_in_a_non_final_segment_fails_loudly() {
        let dir = tmpdir("midcorrupt");
        let (mut wal, _) = WalDir::open(&dir, 0).unwrap();
        for k in 0..4 {
            wal.append(&batch(k, k + 1), 16, false).unwrap();
        }
        drop(wal);
        let segs = list_segments(&dir).unwrap();
        assert!(segs.len() >= 3);
        // Flip a payload byte in the middle segment.
        let (_, mid) = &segs[1];
        let mut bytes = fs::read(mid).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(mid, &bytes).unwrap();
        match WalDir::open(&dir, 0) {
            Err(StoreError::Corrupt { .. }) => {}
            other => panic!("mid-log corruption must fail loudly, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_drops_only_fully_covered_segments() {
        let dir = tmpdir("compact");
        let (mut wal, _) = WalDir::open(&dir, 0).unwrap();
        for k in 0..6 {
            wal.append(&batch(k, k + 1), 16, false).unwrap();
        }
        let before = wal.segment_count().unwrap();
        assert!(before >= 3);
        // Snapshot covers through seq 3: segments whose records are all
        // ≤ 3 go; later ones (and the active segment) stay.
        wal.compact(3).unwrap();
        let after = wal.segment_count().unwrap();
        assert!(after < before);
        drop(wal);
        let (_, load) = WalDir::open(&dir, 3).unwrap();
        let seqs: Vec<u64> = load.records.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![4, 5, 6], "post-snapshot records must survive");
        fs::remove_dir_all(&dir).unwrap();
    }
}
