//! Little-endian binary codec for the persisted payloads.
//!
//! Hand-rolled on purpose: the build environment vendors no serde, and the
//! payloads are closed sets of types owned by this workspace. Every value
//! is fixed-width little-endian (`f64` via its IEEE-754 bit pattern, so
//! round-trips are bit-exact — a requirement of the recovery parity
//! suite); collections are a `u64` length followed by the elements. There
//! is no schema inside the payload itself — framing, versioning, and
//! checksums belong to the [WAL](crate::wal) and
//! [snapshot](crate::snapshot) containers around it.

use ingrass::state::{
    ConnectivityState, EngineState, LedgerState, LrdLevelState, PrecondState, ServingState,
    ShardedState,
};
use ingrass::{
    DriftPolicy, FactorPolicy, ResistanceBackend, SetupConfig, SetupReport, UpdateConfig, UpdateOp,
};
use ingrass_linalg::CholeskyState;
use std::time::Duration;

/// A decoding failure: the bytes do not describe a value of the expected
/// shape (truncated input, bad tag, or trailing garbage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed payload: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

type Result<T> = std::result::Result<T, CodecError>;

/// Append-only byte-buffer writer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh, empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn opt_usize(&mut self, v: Option<usize>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.usize(x);
            }
        }
    }

    fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.f64(x);
            }
        }
    }

    fn duration(&mut self, d: Duration) {
        self.u64(d.as_secs());
        self.u32(d.subsec_nanos());
    }

    fn vec_u32(&mut self, v: &[u32]) {
        self.usize(v.len());
        for &x in v {
            self.u32(x);
        }
    }

    fn vec_f64(&mut self, v: &[f64]) {
        self.usize(v.len());
        for &x in v {
            self.f64(x);
        }
    }

    fn vec_usize(&mut self, v: &[usize]) {
        self.usize(v.len());
        for &x in v {
            self.usize(x);
        }
    }
}

/// Cursor-based reader over an encoded byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Fails unless every byte has been consumed — trailing garbage means
    /// the payload was not produced by the matching encoder.
    pub fn finish(self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(CodecError(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| CodecError(format!("truncated: wanted {n} more bytes")))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CodecError(format!("bad bool byte {b}"))),
        }
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn usize(&mut self) -> Result<usize> {
        usize::try_from(self.u64()?).map_err(|_| CodecError("usize overflow".into()))
    }

    /// A length prefix used to pre-allocate: additionally bounded by the
    /// bytes actually remaining, so corrupt lengths cannot trigger huge
    /// allocations before the (inevitable) truncation error.
    fn len(&mut self, elem_bytes: usize) -> Result<usize> {
        let n = self.usize()?;
        let remaining = self.buf.len() - self.pos;
        if n.checked_mul(elem_bytes.max(1))
            .map_or(true, |b| b > remaining)
        {
            return Err(CodecError(format!(
                "length {n} exceeds the {remaining} bytes remaining"
            )));
        }
        Ok(n)
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn opt_usize(&mut self) -> Result<Option<usize>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.usize()?)),
            b => Err(CodecError(format!("bad option tag {b}"))),
        }
    }

    fn opt_f64(&mut self) -> Result<Option<f64>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            b => Err(CodecError(format!("bad option tag {b}"))),
        }
    }

    fn duration(&mut self) -> Result<Duration> {
        let secs = self.u64()?;
        let nanos = self.u32()?;
        if nanos >= 1_000_000_000 {
            return Err(CodecError(format!("bad subsecond nanos {nanos}")));
        }
        Ok(Duration::new(secs, nanos))
    }

    fn vec_u32(&mut self) -> Result<Vec<u32>> {
        let n = self.len(4)?;
        (0..n).map(|_| self.u32()).collect()
    }

    fn vec_f64(&mut self) -> Result<Vec<f64>> {
        let n = self.len(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    fn vec_usize(&mut self) -> Result<Vec<usize>> {
        let n = self.len(8)?;
        (0..n).map(|_| self.usize()).collect()
    }
}

// ---------------------------------------------------------------------------
// Update operations and configs (the WAL record payloads).
// ---------------------------------------------------------------------------

fn put_op(e: &mut Encoder, op: &UpdateOp) {
    match *op {
        UpdateOp::Insert { u, v, weight } => {
            e.u8(0);
            e.usize(u);
            e.usize(v);
            e.f64(weight);
        }
        UpdateOp::Delete { u, v } => {
            e.u8(1);
            e.usize(u);
            e.usize(v);
        }
        UpdateOp::Reweight { u, v, weight } => {
            e.u8(2);
            e.usize(u);
            e.usize(v);
            e.f64(weight);
        }
    }
}

fn get_op(d: &mut Decoder) -> Result<UpdateOp> {
    Ok(match d.u8()? {
        0 => UpdateOp::Insert {
            u: d.usize()?,
            v: d.usize()?,
            weight: d.f64()?,
        },
        1 => UpdateOp::Delete {
            u: d.usize()?,
            v: d.usize()?,
        },
        2 => UpdateOp::Reweight {
            u: d.usize()?,
            v: d.usize()?,
            weight: d.f64()?,
        },
        t => return Err(CodecError(format!("bad update-op tag {t}"))),
    })
}

/// Encodes one logged batch: the [`UpdateConfig`] it ran under plus its
/// operations (the config travels per batch because it steers the
/// include/merge/redistribute decisions replay must reproduce).
pub fn encode_batch(cfg: &UpdateConfig, ops: &[UpdateOp]) -> Vec<u8> {
    let mut e = Encoder::new();
    put_update_config(&mut e, cfg);
    e.usize(ops.len());
    for op in ops {
        put_op(&mut e, op);
    }
    e.finish()
}

/// Decodes a batch written by [`encode_batch`].
pub fn decode_batch(buf: &[u8]) -> Result<(UpdateConfig, Vec<UpdateOp>)> {
    let mut d = Decoder::new(buf);
    let cfg = get_update_config(&mut d)?;
    let n = d.len(1)?;
    let ops = (0..n).map(|_| get_op(&mut d)).collect::<Result<_>>()?;
    d.finish()?;
    Ok((cfg, ops))
}

fn put_update_config(e: &mut Encoder, cfg: &UpdateConfig) {
    e.f64(cfg.target_condition);
    e.bool(cfg.sort_by_distortion);
    e.opt_usize(cfg.filtering_level_override);
}

fn get_update_config(d: &mut Decoder) -> Result<UpdateConfig> {
    Ok(UpdateConfig {
        target_condition: d.f64()?,
        sort_by_distortion: d.bool()?,
        filtering_level_override: d.opt_usize()?,
    })
}

// ---------------------------------------------------------------------------
// Setup configuration (retained inside the engine state).
// ---------------------------------------------------------------------------

fn put_setup_config(e: &mut Encoder, cfg: &SetupConfig) {
    match &cfg.resistance {
        ResistanceBackend::Krylov(k) => {
            e.u8(0);
            e.opt_usize(k.dim);
            match k.operator {
                ingrass::config::KrylovOperator::SmoothedAdjacency { omega, steps } => {
                    e.u8(0);
                    e.f64(omega);
                    e.usize(steps);
                }
                ingrass::config::KrylovOperator::Adjacency => e.u8(1),
                ingrass::config::KrylovOperator::Laplacian => e.u8(2),
            }
            e.u64(k.seed);
            e.opt_usize(k.threads);
        }
        ResistanceBackend::Jl(j) => {
            e.u8(1);
            e.opt_usize(j.dim);
            e.f64(j.cg_tol);
            e.usize(j.cg_max_iters);
            e.u64(j.seed);
            e.opt_usize(j.threads);
        }
        ResistanceBackend::LocalOnly => e.u8(2),
    }
    e.f64(cfg.diameter_growth);
    e.opt_f64(cfg.initial_diameter);
    e.usize(cfg.max_levels);
    e.u64(cfg.seed);
    e.f64(cfg.drift.max_deleted_weight_fraction);
    e.f64(cfg.drift.max_distortion_fraction);
    e.u32(cfg.drift.max_cluster_staleness);
    e.bool(cfg.drift.auto_resetup);
}

fn get_setup_config(d: &mut Decoder) -> Result<SetupConfig> {
    let resistance = match d.u8()? {
        0 => {
            let dim = d.opt_usize()?;
            let operator = match d.u8()? {
                0 => ingrass::config::KrylovOperator::SmoothedAdjacency {
                    omega: d.f64()?,
                    steps: d.usize()?,
                },
                1 => ingrass::config::KrylovOperator::Adjacency,
                2 => ingrass::config::KrylovOperator::Laplacian,
                t => return Err(CodecError(format!("bad Krylov operator tag {t}"))),
            };
            ResistanceBackend::Krylov(ingrass::config::KrylovConfig {
                dim,
                operator,
                seed: d.u64()?,
                threads: d.opt_usize()?,
            })
        }
        1 => ResistanceBackend::Jl(ingrass::config::JlConfig {
            dim: d.opt_usize()?,
            cg_tol: d.f64()?,
            cg_max_iters: d.usize()?,
            seed: d.u64()?,
            threads: d.opt_usize()?,
        }),
        2 => ResistanceBackend::LocalOnly,
        t => return Err(CodecError(format!("bad resistance backend tag {t}"))),
    };
    Ok(SetupConfig {
        resistance,
        diameter_growth: d.f64()?,
        initial_diameter: d.opt_f64()?,
        max_levels: d.usize()?,
        seed: d.u64()?,
        drift: DriftPolicy {
            max_deleted_weight_fraction: d.f64()?,
            max_distortion_fraction: d.f64()?,
            max_cluster_staleness: d.u32()?,
            auto_resetup: d.bool()?,
        },
    })
}

// ---------------------------------------------------------------------------
// Engine + serving state (the snapshot payload).
// ---------------------------------------------------------------------------

fn put_setup_report(e: &mut Encoder, r: &SetupReport) {
    e.usize(r.nodes);
    e.usize(r.edges);
    e.usize(r.levels);
    e.duration(r.resistance_time);
    e.duration(r.lrd_time);
    e.duration(r.connectivity_time);
    e.duration(r.total_time);
}

fn get_setup_report(d: &mut Decoder) -> Result<SetupReport> {
    Ok(SetupReport {
        nodes: d.usize()?,
        edges: d.usize()?,
        levels: d.usize()?,
        resistance_time: d.duration()?,
        lrd_time: d.duration()?,
        connectivity_time: d.duration()?,
        total_time: d.duration()?,
    })
}

fn put_connectivity(e: &mut Encoder, c: &ConnectivityState) {
    e.usize(c.pair_maps.len());
    for level in &c.pair_maps {
        e.usize(level.len());
        for &(a, b, id) in level {
            e.u32(a);
            e.u32(b);
            e.u32(id);
        }
    }
    e.usize(c.intra_maps.len());
    for level in &c.intra_maps {
        e.usize(level.len());
        for (cluster, ids) in level {
            e.u32(*cluster);
            e.vec_u32(ids);
        }
    }
    e.usize(c.intra_dead.len());
    for level in &c.intra_dead {
        e.usize(level.len());
        for &(cluster, dead) in level {
            e.u32(cluster);
            e.u32(dead);
        }
    }
}

fn get_connectivity(d: &mut Decoder) -> Result<ConnectivityState> {
    let levels = d.len(8)?;
    let mut pair_maps = Vec::with_capacity(levels);
    for _ in 0..levels {
        let n = d.len(12)?;
        let mut level = Vec::with_capacity(n);
        for _ in 0..n {
            level.push((d.u32()?, d.u32()?, d.u32()?));
        }
        pair_maps.push(level);
    }
    let levels = d.len(8)?;
    let mut intra_maps = Vec::with_capacity(levels);
    for _ in 0..levels {
        let n = d.len(12)?;
        let mut level = Vec::with_capacity(n);
        for _ in 0..n {
            let cluster = d.u32()?;
            level.push((cluster, d.vec_u32()?));
        }
        intra_maps.push(level);
    }
    let levels = d.len(8)?;
    let mut intra_dead = Vec::with_capacity(levels);
    for _ in 0..levels {
        let n = d.len(8)?;
        let mut level = Vec::with_capacity(n);
        for _ in 0..n {
            level.push((d.u32()?, d.u32()?));
        }
        intra_dead.push(level);
    }
    Ok(ConnectivityState {
        pair_maps,
        intra_maps,
        intra_dead,
    })
}

fn put_ledger(e: &mut Encoder, l: &LedgerState) {
    e.usize(l.inserts);
    e.usize(l.deletes);
    e.usize(l.reweights);
    e.usize(l.relinks);
    e.usize(l.vacuous);
    e.usize(l.resetups);
    e.f64(l.drift_initial_weight);
    e.usize(l.drift_nodes);
    e.f64(l.drift_deleted_weight);
    e.f64(l.drift_accumulated_distortion);
    e.usize(l.drift_stale_ops);
    e.usize(l.staleness_counts.len());
    for level in &l.staleness_counts {
        e.vec_u32(level);
    }
    e.u32(l.staleness_max);
}

fn get_ledger(d: &mut Decoder) -> Result<LedgerState> {
    Ok(LedgerState {
        inserts: d.usize()?,
        deletes: d.usize()?,
        reweights: d.usize()?,
        relinks: d.usize()?,
        vacuous: d.usize()?,
        resetups: d.usize()?,
        drift_initial_weight: d.f64()?,
        drift_nodes: d.usize()?,
        drift_deleted_weight: d.f64()?,
        drift_accumulated_distortion: d.f64()?,
        drift_stale_ops: d.usize()?,
        staleness_counts: {
            let n = d.len(8)?;
            (0..n).map(|_| d.vec_u32()).collect::<Result<_>>()?
        },
        staleness_max: d.u32()?,
    })
}

fn put_levels(e: &mut Encoder, levels: &[LrdLevelState]) {
    e.usize(levels.len());
    for lvl in levels {
        e.vec_u32(&lvl.cluster_of);
        e.vec_f64(&lvl.diameter);
        e.vec_u32(&lvl.size);
        e.usize(lvl.num_clusters);
        e.f64(lvl.threshold);
    }
}

fn get_levels(d: &mut Decoder) -> Result<Vec<LrdLevelState>> {
    let n = d.len(8)?;
    (0..n)
        .map(|_| {
            Ok(LrdLevelState {
                cluster_of: d.vec_u32()?,
                diameter: d.vec_f64()?,
                size: d.vec_u32()?,
                num_clusters: d.usize()?,
                threshold: d.f64()?,
            })
        })
        .collect()
}

fn put_engine(e: &mut Encoder, s: &EngineState) {
    e.usize(s.num_nodes);
    put_levels(e, &s.levels);
    put_connectivity(e, &s.connectivity);
    e.usize(s.edge_slots.len());
    for slot in &s.edge_slots {
        match slot {
            None => e.u8(0),
            Some((u, v, w)) => {
                e.u8(1);
                e.u32(*u);
                e.u32(*v);
                e.f64(*w);
            }
        }
    }
    e.vec_f64(&s.surplus);
    put_setup_report(e, &s.setup_report);
    put_setup_config(e, &s.setup_cfg);
    e.usize(s.deltas.len());
    for &(u, v, dw) in &s.deltas {
        e.u32(u);
        e.u32(v);
        e.f64(dw);
    }
    put_ledger(e, &s.ledger);
    e.usize(s.updates_applied);
    e.u64(s.version);
}

fn get_engine(d: &mut Decoder) -> Result<EngineState> {
    let num_nodes = d.usize()?;
    let levels = get_levels(d)?;
    let connectivity = get_connectivity(d)?;
    let slots = d.len(1)?;
    let mut edge_slots = Vec::with_capacity(slots);
    for _ in 0..slots {
        edge_slots.push(match d.u8()? {
            0 => None,
            1 => Some((d.u32()?, d.u32()?, d.f64()?)),
            t => return Err(CodecError(format!("bad edge-slot tag {t}"))),
        });
    }
    let surplus = d.vec_f64()?;
    let setup_report = get_setup_report(d)?;
    let setup_cfg = get_setup_config(d)?;
    let ndeltas = d.len(16)?;
    let mut deltas = Vec::with_capacity(ndeltas);
    for _ in 0..ndeltas {
        deltas.push((d.u32()?, d.u32()?, d.f64()?));
    }
    Ok(EngineState {
        num_nodes,
        levels,
        connectivity,
        edge_slots,
        surplus,
        setup_report,
        setup_cfg,
        deltas,
        ledger: get_ledger(d)?,
        updates_applied: d.usize()?,
        version: d.u64()?,
    })
}

fn put_precond(e: &mut Encoder, p: &PrecondState) {
    e.usize(p.n);
    e.usize(p.ground);
    e.u64(p.epoch);
    e.usize(p.built_nnz);
    e.usize(p.order_base_nnz);
    put_cholesky(e, &p.chol);
}

fn get_precond(d: &mut Decoder) -> Result<PrecondState> {
    Ok(PrecondState {
        n: d.usize()?,
        ground: d.usize()?,
        epoch: d.u64()?,
        built_nnz: d.usize()?,
        order_base_nnz: d.usize()?,
        chol: get_cholesky(d)?,
    })
}

fn put_cholesky(e: &mut Encoder, c: &CholeskyState) {
    e.usize(c.n);
    e.vec_u32(&c.perm);
    e.vec_usize(&c.col_ptr);
    e.vec_u32(&c.row_idx);
    e.vec_f64(&c.values);
}

fn get_cholesky(d: &mut Decoder) -> Result<CholeskyState> {
    Ok(CholeskyState {
        n: d.usize()?,
        perm: d.vec_u32()?,
        col_ptr: d.vec_usize()?,
        row_idx: d.vec_u32()?,
        values: d.vec_f64()?,
    })
}

fn put_factor_policy(e: &mut Encoder, p: &FactorPolicy) {
    e.bool(p.incremental);
    e.f64(p.fill_growth);
    e.u64(p.max_updates_between_refactors);
    e.f64(p.max_patch_fraction);
    e.f64(p.order_staleness);
}

fn get_factor_policy(d: &mut Decoder) -> Result<FactorPolicy> {
    Ok(FactorPolicy {
        incremental: d.bool()?,
        fill_growth: d.f64()?,
        max_updates_between_refactors: d.u64()?,
        max_patch_fraction: d.f64()?,
        order_staleness: d.f64()?,
    })
}

/// Encodes a complete serving-layer state
/// ([`ingrass::SnapshotEngine::export_state`]) — the snapshot payload.
pub fn encode_serving(s: &ServingState) -> Vec<u8> {
    let mut e = Encoder::new();
    put_engine(&mut e, &s.engine);
    put_precond(&mut e, &s.factor);
    e.bool(s.factor_valid);
    e.u64(s.sequence);
    put_factor_policy(&mut e, &s.factor_policy);
    e.u64(s.updates_since_refactor);
    e.u64(s.factor_updates);
    e.u64(s.factor_refactors);
    e.finish()
}

/// Decodes a serving-layer state written by [`encode_serving`].
pub fn decode_serving(buf: &[u8]) -> Result<ServingState> {
    let mut d = Decoder::new(buf);
    let s = ServingState {
        engine: get_engine(&mut d)?,
        factor: get_precond(&mut d)?,
        factor_valid: d.bool()?,
        sequence: d.u64()?,
        factor_policy: get_factor_policy(&mut d)?,
        updates_since_refactor: d.u64()?,
        factor_updates: d.u64()?,
        factor_refactors: d.u64()?,
    };
    d.finish()?;
    Ok(s)
}

/// Encodes a complete sharded-coordinator state
/// ([`ingrass::ShardedEngine::export_state`]).
pub fn encode_sharded(s: &ShardedState) -> Vec<u8> {
    let mut e = Encoder::new();
    e.usize(s.shards.len());
    for shard in &s.shards {
        put_engine(&mut e, shard);
    }
    e.vec_u32(&s.shard_of);
    e.usize(s.routing_level);
    e.usize(s.boundary_edges.len());
    for &(u, v, w) in &s.boundary_edges {
        e.u32(u);
        e.u32(v);
        e.f64(w);
    }
    put_levels(&mut e, &s.levels);
    put_setup_config(&mut e, &s.setup_cfg);
    e.usize(s.shard_count);
    e.opt_usize(s.threads);
    e.u64(s.sequence);
    e.u64(s.epoch);
    e.u64(s.version);
    e.usize(s.updates_applied);
    e.u64(s.boundary_relinks);
    e.f64(s.boundary_epoch_weight);
    e.f64(s.boundary_deleted_weight);
    e.usize(s.per_shard_ops.len());
    for &ops in &s.per_shard_ops {
        e.u64(ops);
    }
    e.finish()
}

/// Decodes a sharded-coordinator state written by [`encode_sharded`].
pub fn decode_sharded(buf: &[u8]) -> Result<ShardedState> {
    let mut d = Decoder::new(buf);
    let num_shards = d.len(8)?;
    let mut shards = Vec::with_capacity(num_shards);
    for _ in 0..num_shards {
        shards.push(get_engine(&mut d)?);
    }
    let shard_of = d.vec_u32()?;
    let routing_level = d.usize()?;
    let num_boundary = d.len(16)?;
    let mut boundary_edges = Vec::with_capacity(num_boundary);
    for _ in 0..num_boundary {
        boundary_edges.push((d.u32()?, d.u32()?, d.f64()?));
    }
    let levels = get_levels(&mut d)?;
    let setup_cfg = get_setup_config(&mut d)?;
    let shard_count = d.usize()?;
    let threads = d.opt_usize()?;
    let sequence = d.u64()?;
    let epoch = d.u64()?;
    let version = d.u64()?;
    let updates_applied = d.usize()?;
    let boundary_relinks = d.u64()?;
    let boundary_epoch_weight = d.f64()?;
    let boundary_deleted_weight = d.f64()?;
    let num_ops = d.len(8)?;
    let mut per_shard_ops = Vec::with_capacity(num_ops);
    for _ in 0..num_ops {
        per_shard_ops.push(d.u64()?);
    }
    let s = ShardedState {
        shards,
        shard_of,
        routing_level,
        boundary_edges,
        levels,
        setup_cfg,
        shard_count,
        threads,
        sequence,
        epoch,
        version,
        updates_applied,
        boundary_relinks,
        boundary_epoch_weight,
        boundary_deleted_weight,
        per_shard_ops,
    };
    d.finish()?;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_round_trips_bit_exactly() {
        let cfg = UpdateConfig {
            target_condition: 37.5,
            sort_by_distortion: false,
            filtering_level_override: Some(3),
        };
        let ops = vec![
            UpdateOp::Insert {
                u: 1,
                v: 9,
                weight: 0.125,
            },
            UpdateOp::Delete { u: 4, v: 2 },
            UpdateOp::Reweight {
                u: 0,
                v: 7,
                weight: f64::MIN_POSITIVE,
            },
        ];
        let bytes = encode_batch(&cfg, &ops);
        let (cfg2, ops2) = decode_batch(&bytes).unwrap();
        assert_eq!(cfg, cfg2);
        assert_eq!(ops, ops2);
    }

    #[test]
    fn truncated_and_garbage_batches_are_rejected() {
        let bytes = encode_batch(&UpdateConfig::default(), &[UpdateOp::Delete { u: 1, v: 2 }]);
        for cut in 0..bytes.len() {
            assert!(
                decode_batch(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_batch(&padded).is_err(), "trailing byte accepted");
    }

    #[test]
    fn corrupt_length_prefix_errors_without_huge_allocation() {
        let mut e = Encoder::new();
        e.u64(u64::MAX);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert!(d.vec_f64().is_err());
    }

    fn small_sharded_state_at_width(threads: Option<usize>) -> ShardedState {
        use ingrass::{ShardedConfig, ShardedEngine, UpdateConfig};
        use ingrass_gen::{grid_2d, WeightModel};

        let h0 = grid_2d(8, 8, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 11);
        let mut cfg = ShardedConfig::default().with_shards(2);
        cfg.threads = threads;
        let mut eng = ShardedEngine::setup(&h0, &SetupConfig::default(), &cfg).unwrap();
        eng.apply_batch(
            &[
                UpdateOp::Insert {
                    u: 0,
                    v: 63,
                    weight: 1.5,
                },
                UpdateOp::Reweight {
                    u: 0,
                    v: 1,
                    weight: 0.75,
                },
            ],
            &UpdateConfig::default(),
        )
        .unwrap();
        eng.publish().unwrap();
        eng.export_state()
    }

    fn small_sharded_state() -> ShardedState {
        small_sharded_state_at_width(None)
    }

    #[test]
    fn sharded_state_round_trips_bit_exactly() {
        // Both widths of the epoch-fenced apply path: the coordinator's
        // export format carries no trace of how many workers committed
        // the batch beyond the configured `threads` override itself.
        for threads in [Some(1), Some(4)] {
            let state = small_sharded_state_at_width(threads);
            let bytes = encode_sharded(&state);
            let decoded = decode_sharded(&bytes).unwrap();
            assert_eq!(decoded, state);
            // And the round trip is stable: re-encoding yields identical
            // bytes.
            assert_eq!(encode_sharded(&decoded), bytes);
        }
    }

    #[test]
    fn truncated_and_garbage_sharded_states_are_rejected() {
        let bytes = encode_sharded(&small_sharded_state());
        for cut in (0..bytes.len()).step_by(7) {
            assert!(
                decode_sharded(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_sharded(&padded).is_err(), "trailing byte accepted");
    }
}
