//! [`PersistentEngine`]: the durable serving engine.
//!
//! Wraps an [`ingrass::SnapshotEngine`] with write-ahead durability:
//! every state-changing call appends its operations to the
//! [WAL](crate::wal) *before* applying them, and the complete serving
//! state is periodically checkpointed as a [snapshot](crate::snapshot)
//! file. Recovery ([`PersistentEngine::open`]) loads the newest readable
//! snapshot and replays the WAL tail through the very same
//! `apply_batch`/`resetup` code paths that produced it — which, because
//! the engine is deterministic and snapshots are bit-exact state
//! captures, reproduces the pre-crash engine exactly (sparsifier edges,
//! factor values, ledger sums and all; only the process-unique
//! `instance_id` differs, by design).

use crate::snapshot::{load_latest, prune_snapshots, write_snapshot};
use crate::wal::{WalDir, WalRecord};
use crate::StoreError;
use ingrass::{
    BatchPublishReport, PublishReport, SetupConfig, SnapshotEngine, SnapshotReader, UpdateConfig,
    UpdateOp,
};
use ingrass_graph::Graph;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Durability and checkpoint policy for a [`PersistentEngine`] —
/// the persistence-layer mirror of [`ingrass::FactorPolicy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorePolicy {
    /// Fsync every WAL append and snapshot write before returning
    /// (default `true`). `false` trades crash durability of the newest
    /// records for throughput — recovery then restores some clean prefix
    /// of the history instead of all of it.
    pub fsync: bool,
    /// Rotate to a fresh WAL segment once the active one reaches this many
    /// bytes (default 1 MiB). Smaller segments mean finer-grained
    /// compaction; each carries a fixed 8-byte header.
    pub segment_bytes: u64,
    /// Write a snapshot automatically after this many logged batches
    /// (default 64; 0 disables automatic snapshots — only
    /// [`PersistentEngine::snapshot_now`] checkpoints). The trade-off is
    /// recovery time against checkpoint cost: snapshots are `O(state)`,
    /// while every batch since the last snapshot is replayed on open.
    pub snapshot_every: u64,
    /// After a successful snapshot, delete WAL segments it fully covers
    /// and all but the newest two snapshot files (default `true`).
    pub compact_on_snapshot: bool,
}

impl Default for StorePolicy {
    fn default() -> Self {
        StorePolicy {
            fsync: true,
            segment_bytes: 1 << 20,
            snapshot_every: 64,
            compact_on_snapshot: true,
        }
    }
}

impl StorePolicy {
    /// Checks every field is inside its domain.
    ///
    /// # Errors
    /// [`StoreError::Config`] if `segment_bytes` is smaller than one
    /// segment header (9 bytes — nothing could ever be appended).
    pub fn validate(&self) -> Result<(), StoreError> {
        if self.segment_bytes < 9 {
            return Err(StoreError::Config(format!(
                "segment_bytes must be at least 9 (one header + one byte), got {}",
                self.segment_bytes
            )));
        }
        Ok(())
    }

    /// Returns the policy with [`StorePolicy::fsync`] replaced.
    pub fn with_fsync(mut self, fsync: bool) -> Self {
        self.fsync = fsync;
        self
    }

    /// Returns the policy with [`StorePolicy::segment_bytes`] replaced.
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes;
        self
    }

    /// Returns the policy with [`StorePolicy::snapshot_every`] replaced.
    pub fn with_snapshot_every(mut self, batches: u64) -> Self {
        self.snapshot_every = batches;
        self
    }

    /// Returns the policy with [`StorePolicy::compact_on_snapshot`]
    /// replaced.
    pub fn with_compact_on_snapshot(mut self, compact: bool) -> Self {
        self.compact_on_snapshot = compact;
        self
    }
}

/// What [`PersistentEngine::open`] did to get back to the pre-crash
/// state.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Publish sequence of the snapshot recovery started from (0 if the
    /// store held no snapshot and recovery failed — never observed on a
    /// store created by [`PersistentEngine::create`]).
    pub snapshot_sequence: u64,
    /// WAL sequence number the snapshot already covered.
    pub snapshot_wal_seq: u64,
    /// Update batches replayed from the WAL tail.
    pub replayed_batches: u64,
    /// Explicit re-setup markers replayed.
    pub replayed_resetups: u64,
    /// Torn-tail bytes truncated from the last WAL segment.
    pub truncated_bytes: u64,
    /// Last WAL sequence number after recovery.
    pub wal_seq: u64,
    /// Wall seconds the whole recovery took (snapshot decode + replay).
    pub recover_seconds: f64,
}

/// A durable [`SnapshotEngine`]: WAL-logged updates, periodic snapshot
/// checkpoints, crash recovery on open.
///
/// # Write-ahead contract
///
/// [`PersistentEngine::apply_batch`] appends the batch to the WAL (fsync
/// per [`StorePolicy::fsync`]) **before** touching the engine, so every
/// state the in-memory engine ever reaches is reconstructible from disk.
/// Replay determinism is what makes the log sufficient: given the same
/// starting state and the same `(config, ops)` sequence, the engine makes
/// the same include/merge/redistribute decisions, journals the same
/// deltas, and patches the factor to the same bits — drift-triggered
/// re-setups included (they fire from replayed ledger sums and therefore
/// need no log record of their own; explicitly requested
/// [`PersistentEngine::resetup`] calls do get a marker).
///
/// # Example
///
/// ```no_run
/// use ingrass::{IngrassError, SetupConfig, UpdateConfig, UpdateOp};
/// use ingrass_graph::Graph;
/// use ingrass_store::{PersistentEngine, StorePolicy};
///
/// # fn main() -> Result<(), IngrassError> {
/// let h0 = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)])?;
/// let dir = std::path::Path::new("/tmp/ingrass-demo-store");
/// let mut engine =
///     PersistentEngine::create(dir, &h0, &SetupConfig::default(), StorePolicy::default())?;
/// engine.apply_batch(&[UpdateOp::Insert { u: 0, v: 2, weight: 0.5 }], &UpdateConfig::default())?;
/// drop(engine); // …process dies…
///
/// let (recovered, report) = PersistentEngine::open(dir, StorePolicy::default())?;
/// assert_eq!(report.replayed_batches, 1);
/// assert_eq!(recovered.engine().engine().updates_applied(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PersistentEngine {
    dir: PathBuf,
    policy: StorePolicy,
    wal: WalDir,
    engine: SnapshotEngine,
    /// Batches logged since the last snapshot (drives
    /// [`StorePolicy::snapshot_every`]).
    batches_since_snapshot: u64,
}

impl PersistentEngine {
    /// Runs engine setup on `h0` and initializes a fresh store in `dir`:
    /// an initial snapshot of the set-up state plus an empty WAL.
    ///
    /// # Errors
    /// [`StoreError::Config`] if `dir` already holds a store (open it
    /// instead — creating over history would orphan it) or the policy is
    /// invalid; engine setup and I/O errors as usual.
    pub fn create(
        dir: &Path,
        h0: &Graph,
        cfg: &SetupConfig,
        policy: StorePolicy,
    ) -> Result<Self, StoreError> {
        Self::create_from(dir, SnapshotEngine::setup(h0, cfg)?, policy)
    }

    /// Initializes a fresh store in `dir` around an engine the caller
    /// already configured (factor policy, pre-applied batches, …). The
    /// engine's current state becomes the initial snapshot; nothing
    /// applied before this call is in the WAL.
    ///
    /// # Errors
    /// As for [`PersistentEngine::create`].
    pub fn create_from(
        dir: &Path,
        engine: SnapshotEngine,
        policy: StorePolicy,
    ) -> Result<Self, StoreError> {
        policy.validate()?;
        std::fs::create_dir_all(dir)?;
        if !crate::snapshot::list_snapshots(dir)?.is_empty() {
            return Err(StoreError::Config(format!(
                "{} already holds a store — open it instead of creating over it",
                dir.display()
            )));
        }
        let (wal, load) = WalDir::open(dir, 0)?;
        if load.last_seq != 0 {
            return Err(StoreError::Config(format!(
                "{} already holds WAL records — open it instead of creating over it",
                dir.display()
            )));
        }
        write_snapshot(dir, &engine.export_state(), 0, policy.fsync)?;
        Ok(PersistentEngine {
            dir: dir.to_path_buf(),
            policy,
            wal,
            engine,
            batches_since_snapshot: 0,
        })
    }

    /// Recovers the engine from the store in `dir`: loads the newest
    /// readable snapshot, replays the WAL tail through the ordinary
    /// update path, and reports what happened.
    ///
    /// # Errors
    /// [`StoreError::Corrupt`] if no snapshot is readable, if WAL records
    /// between the snapshot and the tail are missing or damaged (only the
    /// *final* segment's tail may be torn — that is the one a crash can
    /// tear), or if a replayed batch fails against the restored state;
    /// [`StoreError::Config`] for an invalid policy.
    pub fn open(dir: &Path, policy: StorePolicy) -> Result<(Self, RecoveryReport), StoreError> {
        let started = Instant::now();
        policy.validate()?;
        let snap = load_latest(dir)?.ok_or_else(|| StoreError::Corrupt {
            file: dir.to_path_buf(),
            detail: "no readable snapshot in store directory".into(),
        })?;
        let snapshot_sequence = snap.state.sequence;
        let snapshot_wal_seq = snap.wal_seq;
        let mut engine = SnapshotEngine::from_state(snap.state)?;
        let (wal, load) = WalDir::open(dir, snap.wal_seq)?;
        let mut replayed_batches = 0u64;
        let mut replayed_resetups = 0u64;
        for (seq, record) in &load.records {
            match record {
                WalRecord::Batch { cfg, ops } => {
                    engine
                        .apply_batch(ops, cfg)
                        .map_err(|e| StoreError::Corrupt {
                            file: dir.to_path_buf(),
                            detail: format!("replay of WAL record {seq} failed: {e}"),
                        })?;
                    replayed_batches += 1;
                }
                WalRecord::Resetup => {
                    engine.resetup().map_err(|e| StoreError::Corrupt {
                        file: dir.to_path_buf(),
                        detail: format!("replay of re-setup marker {seq} failed: {e}"),
                    })?;
                    replayed_resetups += 1;
                }
            }
        }
        let report = RecoveryReport {
            snapshot_sequence,
            snapshot_wal_seq,
            replayed_batches,
            replayed_resetups,
            truncated_bytes: load.truncated_bytes,
            wal_seq: load.last_seq,
            recover_seconds: started.elapsed().as_secs_f64(),
        };
        Ok((
            PersistentEngine {
                dir: dir.to_path_buf(),
                policy,
                wal,
                engine,
                batches_since_snapshot: replayed_batches + replayed_resetups,
            },
            report,
        ))
    }

    /// Logs the batch to the WAL, then applies it through the wrapped
    /// [`SnapshotEngine`] (publishing a fresh in-memory snapshot if state
    /// changed), then checkpoints if [`StorePolicy::snapshot_every`] is
    /// due.
    ///
    /// Empty batches are not logged — they cannot change state, so replay
    /// without them is identical.
    ///
    /// # Errors
    /// I/O errors leave the engine untouched (the write is ahead of the
    /// apply); engine errors surface after the record is durable, which
    /// is safe because replay fails the same way deterministically.
    pub fn apply_batch(
        &mut self,
        ops: &[UpdateOp],
        cfg: &UpdateConfig,
    ) -> Result<BatchPublishReport, StoreError> {
        if ops.is_empty() {
            return Ok(self.engine.apply_batch(ops, cfg)?);
        }
        self.wal.append(
            &WalRecord::Batch {
                cfg: cfg.clone(),
                ops: ops.to_vec(),
            },
            self.policy.segment_bytes,
            self.policy.fsync,
        )?;
        let report = self.engine.apply_batch(ops, cfg)?;
        self.note_logged()?;
        Ok(report)
    }

    /// Logs an explicit re-setup marker, then re-runs engine setup from
    /// the live sparsifier (drift-*triggered* re-setups inside
    /// [`PersistentEngine::apply_batch`] need no marker — replay re-fires
    /// them from the ledger).
    ///
    /// # Errors
    /// As for [`ingrass::SnapshotEngine::resetup`], plus I/O.
    pub fn resetup(&mut self) -> Result<PublishReport, StoreError> {
        self.wal.append(
            &WalRecord::Resetup,
            self.policy.segment_bytes,
            self.policy.fsync,
        )?;
        let report = self.engine.resetup()?;
        self.note_logged()?;
        Ok(report)
    }

    /// Bookkeeping after a logged record: counts toward the snapshot
    /// cadence and checkpoints when due.
    fn note_logged(&mut self) -> Result<(), StoreError> {
        self.batches_since_snapshot += 1;
        if self.policy.snapshot_every > 0
            && self.batches_since_snapshot >= self.policy.snapshot_every
        {
            self.snapshot_now()?;
        }
        Ok(())
    }

    /// Checkpoints the current serving state as a durable snapshot and —
    /// per [`StorePolicy::compact_on_snapshot`] — compacts WAL segments
    /// the snapshot covers and prunes old snapshot files (the newest two
    /// are kept so a torn checkpoint always has a fallback).
    ///
    /// Returns the snapshot file path.
    pub fn snapshot_now(&mut self) -> Result<PathBuf, StoreError> {
        let path = write_snapshot(
            &self.dir,
            &self.engine.export_state(),
            self.wal.last_seq(),
            self.policy.fsync,
        )?;
        self.batches_since_snapshot = 0;
        if self.policy.compact_on_snapshot {
            self.wal.compact(self.wal.last_seq())?;
            prune_snapshots(&self.dir, 2)?;
        }
        Ok(path)
    }

    /// A reader subscription to the wrapped engine's published snapshots
    /// (in-memory [`ingrass::SparsifierSnapshot`]s, not snapshot files).
    pub fn reader(&self) -> SnapshotReader {
        self.engine.reader()
    }

    /// Read access to the wrapped serving engine. Intentionally no
    /// `engine_mut`: every mutation must flow through
    /// [`PersistentEngine::apply_batch`] / [`PersistentEngine::resetup`]
    /// so no state change can escape the log.
    pub fn engine(&self) -> &SnapshotEngine {
        &self.engine
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The policy in effect.
    pub fn policy(&self) -> StorePolicy {
        self.policy
    }

    /// Last WAL sequence number appended.
    pub fn wal_seq(&self) -> u64 {
        self.wal.last_seq()
    }
}
