//! Durable snapshot files: the serving layer's complete exported state,
//! schema-versioned and checksummed, written atomically.
//!
//! # On-disk format
//!
//! One file per snapshot, named `snap-<sequence>.bin` (the serving
//! layer's publish sequence, zero-padded):
//!
//! ```text
//! [magic: 8 bytes "INGSNAP1"] [schema: u32 LE] [payload_len: u64 LE]
//! [crc: u64 LE]  [payload: payload_len bytes]
//! payload = [wal_seq: u64 LE] [serving state: codec::encode_serving]
//! ```
//!
//! `crc` is FNV-1a over the payload. `wal_seq` is the last WAL sequence
//! number the state already reflects — recovery replays strictly later
//! records on top. Writes go through a temporary file plus rename, so a
//! crash mid-snapshot leaves the previous snapshot intact and at worst a
//! stray `*.tmp` that the next write overwrites.
//!
//! # Schema evolution
//!
//! `schema` is [`SCHEMA_VERSION`]. [`migrate_payload`] is the upgrade
//! hook: given an older on-disk schema it must rewrite the payload into
//! the current shape (today there is only version 1, so it is the
//! identity for current files and a loud [`StoreError::Schema`] for
//! anything else — newer *or* unknown older versions never decode as
//! garbage).

use crate::codec::{decode_serving, encode_serving};
use crate::{fnv1a, StoreError, FNV_OFFSET};
use ingrass::state::ServingState;
use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Snapshot-file magic.
pub const SNAP_MAGIC: [u8; 8] = *b"INGSNAP1";

/// Current snapshot payload schema.
pub const SCHEMA_VERSION: u32 = 1;

/// A snapshot loaded from disk.
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// The serving-layer state the file carried.
    pub state: ServingState,
    /// Last WAL sequence number the state reflects.
    pub wal_seq: u64,
    /// The file it came from.
    pub path: PathBuf,
}

fn snapshot_path(dir: &Path, sequence: u64) -> PathBuf {
    dir.join(format!("snap-{sequence:020}.bin"))
}

/// The schema-migration hook: rewrites a payload written under an older
/// schema into the current shape.
///
/// # Errors
/// [`StoreError::Schema`] for schemas this build cannot read — future
/// versions, and past versions whose migration has not been written.
pub fn migrate_payload(schema: u32, payload: Vec<u8>) -> Result<Vec<u8>, StoreError> {
    match schema {
        SCHEMA_VERSION => Ok(payload),
        other => Err(StoreError::Schema {
            found: other,
            supported: SCHEMA_VERSION,
        }),
    }
}

/// Writes `state` as the snapshot for its own publish sequence,
/// atomically (tmp + rename), recording `wal_seq` as the WAL position it
/// reflects. With `sync`, both the file and the directory entry are
/// fsynced before this returns.
///
/// Returns the final path.
pub fn write_snapshot(
    dir: &Path,
    state: &ServingState,
    wal_seq: u64,
    sync: bool,
) -> Result<PathBuf, StoreError> {
    fs::create_dir_all(dir)?;
    let mut payload = Vec::new();
    payload.extend_from_slice(&wal_seq.to_le_bytes());
    payload.extend_from_slice(&encode_serving(state));
    let crc = fnv1a(FNV_OFFSET, &payload);

    let mut bytes = Vec::with_capacity(28 + payload.len());
    bytes.extend_from_slice(&SNAP_MAGIC);
    bytes.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&crc.to_le_bytes());
    bytes.extend_from_slice(&payload);

    let path = snapshot_path(dir, state.sequence);
    let tmp = path.with_extension("tmp");
    {
        let mut f = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&tmp)?;
        f.write_all(&bytes)?;
        if sync {
            f.sync_all()?;
        }
    }
    fs::rename(&tmp, &path)?;
    if sync {
        // Persist the rename itself.
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(path)
}

/// Parses one snapshot file.
fn read_snapshot(path: &Path) -> Result<(ServingState, u64), StoreError> {
    let bytes = fs::read(path)?;
    let corrupt = |detail: String| StoreError::Corrupt {
        file: path.to_path_buf(),
        detail,
    };
    if bytes.len() < 28 || bytes[..8] != SNAP_MAGIC {
        return Err(corrupt("bad or missing snapshot magic".into()));
    }
    let schema = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let crc = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
    let payload = bytes[28..].to_vec();
    if payload.len() as u64 != payload_len {
        return Err(corrupt(format!(
            "payload is {} bytes, header says {payload_len}",
            payload.len()
        )));
    }
    if fnv1a(FNV_OFFSET, &payload) != crc {
        return Err(corrupt("payload checksum mismatch".into()));
    }
    let payload = migrate_payload(schema, payload)?;
    if payload.len() < 8 {
        return Err(corrupt("payload too short for a WAL position".into()));
    }
    let wal_seq = u64::from_le_bytes(payload[..8].try_into().unwrap());
    let state = decode_serving(&payload[8..]).map_err(|e| corrupt(e.to_string()))?;
    Ok((state, wal_seq))
}

/// Lists snapshot files as `(sequence, path)`, ascending.
pub fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut snaps = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(num) = name
            .strip_prefix("snap-")
            .and_then(|s| s.strip_suffix(".bin"))
        {
            if let Ok(seq) = num.parse::<u64>() {
                snaps.push((seq, entry.path()));
            }
        }
    }
    snaps.sort_unstable();
    Ok(snaps)
}

/// Loads the newest *readable* snapshot: candidates are tried newest
/// first, and an unreadable one (schema this build cannot migrate, torn
/// or corrupt file) falls back to the next older — the WAL still covers
/// the difference as long as its segments survive, which
/// [`crate::wal::WalDir::open`] verifies. `Ok(None)` if the directory
/// holds no snapshot at all.
///
/// # Errors
/// Only filesystem failures; per-file damage is skipped, not fatal (the
/// fallback is the recovery, and a missing WAL tail will fail loudly at
/// replay).
pub fn load_latest(dir: &Path) -> Result<Option<LoadedSnapshot>, StoreError> {
    let mut snaps = list_snapshots(dir)?;
    snaps.reverse();
    for (_, path) in snaps {
        match read_snapshot(&path) {
            Ok((state, wal_seq)) => {
                return Ok(Some(LoadedSnapshot {
                    state,
                    wal_seq,
                    path,
                }))
            }
            Err(StoreError::Io(e)) => return Err(StoreError::Io(e)),
            Err(_) => continue,
        }
    }
    Ok(None)
}

/// Deletes every snapshot older than the newest `keep` (at least 1).
/// Returns the number removed.
pub fn prune_snapshots(dir: &Path, keep: usize) -> Result<usize, StoreError> {
    let snaps = list_snapshots(dir)?;
    let keep = keep.max(1);
    let mut removed = 0;
    if snaps.len() > keep {
        for (_, path) in &snaps[..snaps.len() - keep] {
            fs::remove_file(path)?;
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingrass::{SetupConfig, SnapshotEngine};
    use ingrass_graph::Graph;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ingrass-snap-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn small_state() -> ServingState {
        let h0 = Graph::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 3, 1.0),
                (3, 4, 0.5),
                (4, 5, 1.5),
                (5, 0, 1.0),
                (0, 3, 0.25),
            ],
        )
        .unwrap();
        SnapshotEngine::setup(&h0, &SetupConfig::default())
            .unwrap()
            .export_state()
    }

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        let dir = tmpdir("roundtrip");
        let state = small_state();
        write_snapshot(&dir, &state, 17, false).unwrap();
        let loaded = load_latest(&dir).unwrap().expect("snapshot present");
        assert_eq!(loaded.wal_seq, 17);
        assert_eq!(loaded.state, state);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn newest_readable_snapshot_wins_and_corrupt_ones_fall_back() {
        let dir = tmpdir("fallback");
        let mut old_state = small_state();
        old_state.sequence = 1;
        write_snapshot(&dir, &old_state, 3, false).unwrap();
        let mut new_state = small_state();
        new_state.sequence = 2;
        let new_path = write_snapshot(&dir, &new_state, 9, false).unwrap();
        // Newest wins while intact…
        assert_eq!(load_latest(&dir).unwrap().unwrap().wal_seq, 9);
        // …and falls back to the older one when damaged.
        let mut bytes = fs::read(&new_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&new_path, &bytes).unwrap();
        let loaded = load_latest(&dir).unwrap().unwrap();
        assert_eq!(loaded.wal_seq, 3);
        assert_eq!(loaded.state, old_state);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_schema_is_refused_by_the_migration_hook() {
        let dir = tmpdir("schema");
        let state = small_state();
        let path = write_snapshot(&dir, &state, 1, false).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[8] = 0xEE; // schema field
        fs::write(&path, &bytes).unwrap();
        // load_latest skips it (no older snapshot → none at all)…
        assert!(load_latest(&dir).unwrap().is_none());
        // …and the hook itself reports the mismatch loudly.
        match migrate_payload(0xEE, vec![]) {
            Err(StoreError::Schema { found, supported }) => {
                assert_eq!(found, 0xEE);
                assert_eq!(supported, SCHEMA_VERSION);
            }
            other => panic!("expected schema error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_keeps_the_newest() {
        let dir = tmpdir("prune");
        for seq in 1..=4 {
            let mut state = small_state();
            state.sequence = seq;
            write_snapshot(&dir, &state, seq, false).unwrap();
        }
        let removed = prune_snapshots(&dir, 2).unwrap();
        assert_eq!(removed, 2);
        let left: Vec<u64> = list_snapshots(&dir)
            .unwrap()
            .iter()
            .map(|(s, _)| *s)
            .collect();
        assert_eq!(left, vec![3, 4]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
