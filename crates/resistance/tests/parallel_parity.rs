//! Parallel execution must be invisible: every estimator's output is
//! bit-for-bit identical at any thread count. These suites pin that contract
//! on random suite-style graphs — any scheduling- or reduction-order leak in
//! `ingrass-par` or the estimators shows up here as a bitwise mismatch.

use ingrass_gen::{grid_2d, WeightModel};
use ingrass_graph::Graph;
use ingrass_resistance::{
    JlConfig, JlEmbedder, KrylovConfig, KrylovEmbedder, NodeEmbedding, ResistanceEstimator,
};
use proptest::prelude::*;

/// A connected random-weight grid in the size band the suite generators
/// produce at test scale.
fn random_suite_graph(side: usize, seed: u64) -> Graph {
    grid_2d(side, side, WeightModel::Uniform { lo: 0.25, hi: 4.0 }, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Krylov `edge_resistances` at 2/4/8 threads equals the serial result
    /// exactly — not approximately.
    #[test]
    fn prop_krylov_edge_resistances_parallel_parity(
        seed in 0u64..1000,
        side in 6usize..14,
    ) {
        let g = random_suite_graph(side, seed);
        let serial = KrylovEmbedder::build(
            &g,
            &KrylovConfig::default().with_seed(seed).with_threads(1),
        )
        .unwrap()
        .edge_resistances(&g);
        for threads in [2usize, 4, 8] {
            let parallel = KrylovEmbedder::build(
                &g,
                &KrylovConfig::default().with_seed(seed).with_threads(threads),
            )
            .unwrap()
            .edge_resistances(&g);
            prop_assert_eq!(
                &parallel,
                &serial,
                "krylov diverged at {} threads",
                threads
            );
        }
    }

    /// Same contract for the JL embedder (per-probe derived seeds + batched
    /// CG solves).
    #[test]
    fn prop_jl_edge_resistances_parallel_parity(
        seed in 0u64..1000,
        side in 4usize..9,
    ) {
        let g = random_suite_graph(side, seed);
        let serial = JlEmbedder::build(
            &g,
            &JlConfig::default().with_dim(12).with_seed(seed).with_threads(1),
        )
        .unwrap()
        .edge_resistances(&g);
        for threads in [2usize, 4, 8] {
            let parallel = JlEmbedder::build(
                &g,
                &JlConfig::default().with_dim(12).with_seed(seed).with_threads(threads),
            )
            .unwrap()
            .edge_resistances(&g);
            prop_assert_eq!(&parallel, &serial, "jl diverged at {} threads", threads);
        }
    }
}

/// The wide-graph path of `NodeEmbedding::edge_resistances` fans out across
/// threads (the proptest graphs above stay under its threshold); build a
/// graph past the threshold and check the fan-out against the hand-written
/// serial map.
#[test]
fn wide_graph_edge_resistances_match_serial_map() {
    let side = 100; // 19_800 edges
    let g = random_suite_graph(side, 7);
    assert!(g.num_edges() > ingrass_par::PAR_AUTO_THRESHOLD);
    let n = g.num_nodes();
    let dim = 6;
    let data: Vec<f64> = (0..n * dim)
        .map(|i| ((i as f64) * 0.37).sin()) // deterministic synthetic rows
        .collect();
    let emb = NodeEmbedding::from_rows(n, dim, data);
    let serial: Vec<f64> = g.edges().iter().map(|e| emb.distance2(e.u, e.v)).collect();
    assert_eq!(emb.edge_resistances(&g), serial);
}
