//! Spielman–Srivastava resistance embedding via random projections and
//! Laplacian solves.

use crate::embedding::NodeEmbedding;
use crate::ResistanceEstimator;
use ingrass_graph::{kruskal_tree, Graph, GraphError, NodeId, TreeObjective, TreePrecond};
use ingrass_linalg::{pcg_multi, CgOptions};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`JlEmbedder::build`].
#[derive(Debug, Clone, PartialEq)]
pub struct JlConfig {
    /// Number of random projections `k`. `None` picks `4·⌈log₂ n⌉ + 8`
    /// (≈ ε = 0.7 guarantees; plenty for ranking and within ~20 % typical
    /// error on meshes).
    pub dim: Option<usize>,
    /// Relative tolerance of the inner CG solves.
    pub cg_tol: f64,
    /// Iteration cap of the inner CG solves.
    pub cg_max_iters: usize,
    /// RNG seed. Each projection derives its own independent stream from
    /// this (`ingrass_par::derive_seed`), which is what lets the solves run
    /// in parallel without perturbing the result.
    pub seed: u64,
    /// Worker threads for the probe solves. `None` (default) uses the
    /// ambient width from `ingrass_par::num_threads` (`INGRASS_THREADS`
    /// override, else host parallelism). The embedding is bit-for-bit
    /// identical at any thread count.
    pub threads: Option<usize>,
}

impl Default for JlConfig {
    fn default() -> Self {
        JlConfig {
            dim: None,
            cg_tol: 1e-8,
            cg_max_iters: 3000,
            seed: 1234,
            threads: None,
        }
    }
}

impl JlConfig {
    /// Returns the config with an explicit number of projections.
    pub fn with_dim(mut self, dim: usize) -> Self {
        self.dim = Some(dim);
        self
    }

    /// Returns the config with the given seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config with an explicit worker thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }
}

/// Spielman–Srivastava style resistance embedding.
///
/// Writes `R(p, q) = ‖W^{1/2} B L⁺ b_pq‖²` and sketches the edge-indexed
/// vector with `k` random `±1/√k` vectors `z_i`: each row solve
/// `L y_i = Bᵀ W^{1/2} z_i` (tree-preconditioned CG) contributes one node
/// coordinate, and by Johnson–Lindenstrauss
/// `‖y_p − y_q‖² = (1 ± ε) R(p, q)` with `k = O(log n / ε²)`.
///
/// Slower than the paper's Krylov scheme (it performs `k` Laplacian solves)
/// but much sharper — used here as the high-accuracy alternative estimator
/// and in ablation benches.
#[derive(Debug, Clone)]
pub struct JlEmbedder {
    embedding: NodeEmbedding,
}

impl JlEmbedder {
    /// Builds the embedding for `g`.
    ///
    /// # Errors
    /// [`GraphError::Empty`] if `g` has no nodes,
    /// [`GraphError::Disconnected`] if it has no spanning tree (the
    /// resistance metric is infinite across components).
    pub fn build(g: &Graph, cfg: &JlConfig) -> Result<Self, GraphError> {
        let n = g.num_nodes();
        if n == 0 {
            return Err(GraphError::Empty);
        }
        let k = cfg
            .dim
            .unwrap_or_else(|| 4 * ((n.max(2) as f64).log2().ceil() as usize) + 8)
            .max(1);
        let tree = kruskal_tree(g, TreeObjective::MaxWeight)?;
        let precond = TreePrecond::new(&tree.tree);
        let lap = g.laplacian();
        let ones = vec![1.0; n];
        let opts = CgOptions::default()
            .with_rel_tol(cfg.cg_tol)
            .with_max_iters(cfg.cg_max_iters);

        let threads = cfg.threads.unwrap_or_else(ingrass_par::num_threads);
        let scale = 1.0 / (k as f64).sqrt();
        // rhs_i = Bᵀ W^{1/2} z_i, each from its own derived RNG stream so
        // the probes are order-independent.
        let rhss: Vec<Vec<f64>> = ingrass_par::par_map_range_with(threads, k, |i| {
            let mut rng = StdRng::seed_from_u64(ingrass_par::derive_seed(cfg.seed, i as u64));
            let mut rhs = vec![0.0; n];
            for e in g.edges() {
                let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
                let s = sign * scale * e.weight.sqrt();
                rhs[e.u.index()] += s;
                rhs[e.v.index()] -= s;
            }
            rhs
        });
        // The k Laplacian solves are mutually independent: batch them.
        let solves = pcg_multi(&lap, &rhss, &precond, Some(&ones), &opts, threads);
        let mut data = vec![0.0; n * k];
        for (i, (y, _)) in solves.iter().enumerate() {
            for (p, &yp) in y.iter().enumerate() {
                data[p * k + i] = yp;
            }
        }
        Ok(JlEmbedder {
            embedding: NodeEmbedding::from_rows(n, k, data),
        })
    }

    /// The underlying node embedding.
    pub fn embedding(&self) -> &NodeEmbedding {
        &self.embedding
    }

    /// Number of projections (embedding dimension).
    pub fn dim(&self) -> usize {
        self.embedding.dim()
    }

    /// Squared embedding distance (= resistance estimate) between `u`, `v`.
    pub fn distance2(&self, u: NodeId, v: NodeId) -> f64 {
        self.embedding.distance2(u, v)
    }
}

impl ResistanceEstimator for JlEmbedder {
    fn resistance(&self, u: NodeId, v: NodeId) -> f64 {
        self.embedding.distance2(u, v)
    }

    fn edge_resistances(&self, g: &Graph) -> Vec<f64> {
        ResistanceEstimator::edge_resistances(&self.embedding, g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactResistance;

    fn grid(w: usize, h: usize) -> Graph {
        let mut edges = Vec::new();
        for y in 0..h {
            for x in 0..w {
                let u = y * w + x;
                if x + 1 < w {
                    edges.push((u, u + 1, 1.0));
                }
                if y + 1 < h {
                    edges.push((u, u + w, 1.0));
                }
            }
        }
        Graph::from_edges(w * h, &edges).unwrap()
    }

    #[test]
    fn approximates_exact_resistance_on_grid() {
        let g = grid(6, 6);
        let jl = JlEmbedder::build(&g, &JlConfig::default().with_dim(256)).unwrap();
        let exact = ExactResistance::dense(&g).unwrap();
        // Check a spread of pairs: within 25 % at k = 256.
        let pairs = [(0u32, 1u32), (0, 35), (5, 30), (14, 21)];
        for (u, v) in pairs {
            let a = jl.resistance(u.into(), v.into());
            let e = exact.resistance(u.into(), v.into());
            assert!(
                (a - e).abs() / e < 0.25,
                "pair ({u},{v}): jl {a} vs exact {e}"
            );
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = grid(4, 4);
        let cfg = JlConfig::default().with_dim(16).with_seed(5);
        let a = JlEmbedder::build(&g, &cfg).unwrap();
        let b = JlEmbedder::build(&g, &cfg).unwrap();
        assert_eq!(a.embedding(), b.embedding());
    }

    #[test]
    fn default_dimension_scales_with_log_n() {
        let g = grid(8, 8); // n = 64 → 4·6 + 8 = 32
        let jl = JlEmbedder::build(&g, &JlConfig::default()).unwrap();
        assert_eq!(jl.dim(), 32);
    }

    #[test]
    fn disconnected_graph_errors() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        assert!(JlEmbedder::build(&g, &JlConfig::default()).is_err());
    }

    #[test]
    fn series_resistance_on_weighted_path() {
        // Resistances in series add: w = 2, 4 → R(0,2) = 0.5 + 0.25.
        let g = Graph::from_edges(3, &[(0, 1, 2.0), (1, 2, 4.0)]).unwrap();
        let jl = JlEmbedder::build(&g, &JlConfig::default().with_dim(512)).unwrap();
        let r = jl.resistance(0.into(), 2.into());
        assert!((r - 0.75).abs() < 0.12, "got {r}");
    }
}
