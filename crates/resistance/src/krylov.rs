//! The paper's Krylov-subspace resistance embedding (setup phase, eq. (3)).

use crate::embedding::NodeEmbedding;
use ingrass_graph::{Graph, GraphError, NodeId};
use ingrass_linalg::vector::{
    mgs_orthogonalize, normalize, project_out_ones, random_unit_perp_ones,
};
use ingrass_linalg::{CsrMatrix, DenseMatrix};

/// Which operator spans the Krylov subspace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KrylovOperator {
    /// Damped random-walk smoothing `(1−ω)·I + ω·D⁻¹A` (equivalently one
    /// weighted-Jacobi sweep, since `D⁻¹A = I − D⁻¹L`). Power iterations on
    /// this operator converge onto the *smooth* (low Laplacian frequency)
    /// modes that dominate effective resistance — the same solver-free
    /// smoothing SF-GRASS \[9\] uses. Default, with `ω = 0.7` (damping keeps
    /// the alternating mode of bipartite-ish graphs out of the subspace).
    SmoothedAdjacency {
        /// Jacobi damping factor in `(0, 1]`.
        omega: f64,
        /// Number of smoothing sweeps applied to every random probe vector
        /// (randomized subspace iteration depth).
        steps: usize,
    },
    /// Raw power iterations on the weighted adjacency matrix `A` — the
    /// paper's literal prescription (`x, Ax, A²x, …`). On irregular graphs
    /// the subspace aligns with high-degree local structure instead of the
    /// smooth modes; kept as an ablation.
    Adjacency,
    /// Power iterations on the Laplacian `L` — an ablation alternative that
    /// emphasises high-frequency modes.
    Laplacian,
}

impl Default for KrylovOperator {
    fn default() -> Self {
        KrylovOperator::SmoothedAdjacency {
            omega: 0.7,
            steps: 8,
        }
    }
}

/// Configuration for [`KrylovEmbedder::build`].
#[derive(Debug, Clone, PartialEq)]
pub struct KrylovConfig {
    /// Krylov subspace order `m` (embedding dimension). `None` picks
    /// `⌈log₂ n⌉ + 4`, matching the paper's `O(log N)` prescription with a
    /// constant that keeps small graphs accurate.
    pub dim: Option<usize>,
    /// Operator generating the subspace.
    pub operator: KrylovOperator,
    /// RNG seed for the start vector.
    pub seed: u64,
    /// Worker threads for the embarrassingly parallel stages (probe
    /// smoothing, Rayleigh–Ritz assembly, coordinate columns). `None`
    /// (default) uses the ambient width from `ingrass_par::num_threads`
    /// (`INGRASS_THREADS` override, else host parallelism). The result is
    /// bit-for-bit identical at any thread count.
    pub threads: Option<usize>,
}

impl Default for KrylovConfig {
    fn default() -> Self {
        KrylovConfig {
            dim: None,
            operator: KrylovOperator::default(),
            seed: 42,
            threads: None,
        }
    }
}

impl KrylovConfig {
    /// Returns the config with an explicit embedding dimension.
    pub fn with_dim(mut self, dim: usize) -> Self {
        self.dim = Some(dim);
        self
    }

    /// Returns the config with the given operator.
    pub fn with_operator(mut self, op: KrylovOperator) -> Self {
        self.operator = op;
        self
    }

    /// Returns the config with the given seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config with an explicit worker thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }
}

/// The paper's scalable effective-resistance estimator (Section III-B-1).
///
/// Builds orthonormal vectors `ũ_1 … ũ_m` spanning the Krylov subspace
/// `K_m(A, x)` of a random start vector, then estimates
///
/// ```text
/// R(p, q) ≈ Σ_i (ũ_iᵀ b_pq)² / (ũ_iᵀ L ũ_i)        (paper eq. (3))
/// ```
///
/// which is the squared distance between rows of the node embedding
/// `y_p[i] = ũ_i[p] / sqrt(ũ_iᵀ L ũ_i)`. Cost: `m` sparse mat-vecs plus
/// `O(n m²)` orthogonalisation — no linear solves.
///
/// The estimate is coarse in absolute terms but preserves the *ordering* of
/// resistances well, which is all the LRD decomposition and the distortion
/// ranking need (validated against [`crate::ExactResistance`] in this
/// crate's tests and the `bench_resistance` ablation).
#[derive(Debug, Clone, PartialEq)]
pub struct KrylovEmbedder {
    embedding: NodeEmbedding,
}

impl KrylovEmbedder {
    /// Builds the Krylov resistance embedding of `g`.
    ///
    /// # Errors
    /// [`GraphError::Empty`] if the graph has no nodes.
    pub fn build(g: &Graph, cfg: &KrylovConfig) -> Result<Self, GraphError> {
        Ok(KrylovEmbedder {
            embedding: build_krylov_embedding(g, cfg)?,
        })
    }

    /// The underlying node embedding.
    pub fn embedding(&self) -> &NodeEmbedding {
        &self.embedding
    }

    /// Number of embedded nodes.
    pub fn num_nodes(&self) -> usize {
        self.embedding.num_nodes()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.embedding.dim()
    }

    /// Squared embedding distance (= resistance estimate) between `u` and `v`.
    pub fn distance2(&self, u: NodeId, v: NodeId) -> f64 {
        self.embedding.distance2(u, v)
    }
}

impl crate::ResistanceEstimator for KrylovEmbedder {
    fn resistance(&self, u: NodeId, v: NodeId) -> f64 {
        self.embedding.distance2(u, v)
    }

    fn edge_resistances(&self, g: &Graph) -> Vec<f64> {
        crate::ResistanceEstimator::edge_resistances(&self.embedding, g)
    }
}

fn build_krylov_embedding(g: &Graph, cfg: &KrylovConfig) -> Result<NodeEmbedding, GraphError> {
    let n = g.num_nodes();
    if n == 0 {
        return Err(GraphError::Empty);
    }
    let m = cfg
        .dim
        .unwrap_or_else(|| ((n.max(2) as f64).log2().ceil() as usize) + 4)
        .clamp(1, n.saturating_sub(1).max(1));

    let lap: CsrMatrix = g.laplacian();
    let adj: Option<CsrMatrix> = match cfg.operator {
        KrylovOperator::Laplacian => None,
        _ => Some(g.adjacency_matrix()),
    };
    let inv_deg: Vec<f64> = (0..n)
        .map(|u| {
            let d = g.weighted_degree(NodeId::new(u));
            if d > 0.0 {
                1.0 / d
            } else {
                0.0
            }
        })
        .collect();
    // One application of the chosen iteration operator.
    let apply = |x: &[f64]| -> Vec<f64> {
        match cfg.operator {
            KrylovOperator::SmoothedAdjacency { omega, .. } => {
                let mut y = adj.as_ref().expect("adjacency built").matvec_alloc(x);
                for ((yi, xi), di) in y.iter_mut().zip(x).zip(&inv_deg) {
                    *yi = (1.0 - omega) * xi + omega * *yi * di;
                }
                y
            }
            KrylovOperator::Adjacency => adj.as_ref().expect("adjacency built").matvec_alloc(x),
            KrylovOperator::Laplacian => lap.matvec_alloc(x),
        }
    };

    let threads = cfg.threads.unwrap_or_else(ingrass_par::num_threads);

    // Build the subspace. For the smoothed operator we run randomized
    // subspace iteration (a *block* of m random probes, each smoothed
    // `steps` times — this covers the m lowest Laplacian modes far better
    // than a single Krylov chain); for the ablation operators we grow the
    // classical single-vector Krylov chain of the paper's eq. (3).
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m);
    if let KrylovOperator::SmoothedAdjacency { steps, .. } = cfg.operator {
        // Each probe starts from its own seeded random vector and is
        // smoothed independently — the hot O(m · steps · nnz) stage runs in
        // parallel, and only the (order-sensitive, O(n m²)) MGS pass below
        // stays serial, so the basis is identical at any thread count.
        let smoothed: Vec<Vec<f64>> = ingrass_par::par_map_range_with(threads, m, |i| {
            let mut w = random_unit_perp_ones(n, ingrass_par::derive_seed(cfg.seed, i as u64));
            for _ in 0..steps {
                w = apply(&w);
                project_out_ones(&mut w);
                if normalize(&mut w) <= f64::MIN_POSITIVE.sqrt() {
                    break; // probe annihilated (can happen on tiny graphs)
                }
            }
            w
        });
        for mut w in smoothed {
            mgs_orthogonalize(&mut w, &basis);
            if normalize(&mut w) <= 1e-12 {
                continue; // rank-deficient probe; skip
            }
            basis.push(w);
        }
        if basis.is_empty() {
            basis.push(random_unit_perp_ones(n, cfg.seed));
        }
    } else {
        let mut v = random_unit_perp_ones(n, cfg.seed);
        basis.push(v.clone());
        let mut restarts = 0u64;
        while basis.len() < m {
            let mut w = apply(&v);
            project_out_ones(&mut w);
            mgs_orthogonalize(&mut w, &basis);
            if normalize(&mut w) <= 1e-12 {
                // Krylov space exhausted — restart with a fresh random
                // direction orthogonal to everything found so far.
                restarts += 1;
                if basis.len() + (restarts as usize) > n {
                    break;
                }
                w = random_unit_perp_ones(n, cfg.seed.wrapping_add(restarts));
                mgs_orthogonalize(&mut w, &basis);
                if normalize(&mut w) <= 1e-12 {
                    break;
                }
            }
            basis.push(w.clone());
            v = w;
        }
    }

    // Rayleigh–Ritz on L over the Krylov space: the projected matrix
    // T = ŨᵀLŨ is eigendecomposed and its Ritz pairs (θ_i, Ũs_i) serve as
    // the "new set of mutually-orthogonal vectors approximating the original
    // Laplacian eigenvectors" of the paper. The low Ritz pairs converge to
    // the low Laplacian eigenpairs — the ones that dominate eq. (2).
    let dim = basis.len();
    let lu: Vec<Vec<f64>> = ingrass_par::par_map_with(threads, &basis, |u| lap.matvec_alloc(u));
    // Upper triangle of T, one independent row per basis vector.
    let t_rows: Vec<Vec<f64>> = ingrass_par::par_map_range_with(threads, dim, |i| {
        (i..dim)
            .map(|j| basis[i].iter().zip(&lu[j]).map(|(a, b)| a * b).sum())
            .collect()
    });
    let mut t = DenseMatrix::zeros(dim, dim);
    for (i, row) in t_rows.iter().enumerate() {
        for (off, &v) in row.iter().enumerate() {
            let j = i + off;
            t.set(i, j, v);
            t.set(j, i, v);
        }
    }
    let (theta, s) = t
        .symmetric_eigen()
        .expect("small symmetric eigenproblem cannot fail");
    let theta_max = theta.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
    let cutoff = 1e-12 * theta_max.max(f64::MIN_POSITIVE);

    // Node coordinates: y_p[i] = (Ũ s_i)[p] / sqrt(θ_i), eq. (3). Each Ritz
    // direction fills one embedding column independently; the per-column
    // accumulation order over j is the serial loop's, so the coordinates are
    // bitwise thread-count-independent.
    let cols: Vec<Option<Vec<f64>>> = ingrass_par::par_map_range_with(threads, dim, |i| {
        let th = theta[i];
        if th <= cutoff {
            return None; // numerically-null direction carries no energy
        }
        let inv_sqrt = 1.0 / th.sqrt();
        let mut col = vec![0.0; n];
        for (j, u) in basis.iter().enumerate() {
            let c = s.get(j, i) * inv_sqrt;
            if c == 0.0 {
                continue;
            }
            for (cp, up) in col.iter_mut().zip(u) {
                *cp += c * up;
            }
        }
        Some(col)
    });
    let mut data = vec![0.0; n * dim];
    for (i, col) in cols.iter().enumerate() {
        if let Some(col) = col {
            for (p, &v) in col.iter().enumerate() {
                data[p * dim + i] = v;
            }
        }
    }
    Ok(NodeEmbedding::from_rows(n, dim, data))
}

/// Estimates per-edge effective resistances of `g` via the Krylov embedding
/// (paper setup phase 1) — convenience wrapper.
///
/// # Errors
/// [`GraphError::Empty`] if the graph has no nodes.
pub fn krylov_edge_resistances(g: &Graph, cfg: &KrylovConfig) -> Result<Vec<f64>, GraphError> {
    let emb = build_krylov_embedding(g, cfg)?;
    Ok(g.edges().iter().map(|e| emb.distance2(e.u, e.v)).collect())
}

/// Resistance between two nodes via a fresh embedding — test convenience.
///
/// # Errors
/// [`GraphError::Empty`] if the graph has no nodes.
pub fn krylov_resistance(
    g: &Graph,
    u: NodeId,
    v: NodeId,
    cfg: &KrylovConfig,
) -> Result<f64, GraphError> {
    let emb = build_krylov_embedding(g, cfg)?;
    Ok(emb.distance2(u, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactResistance;
    use crate::ResistanceEstimator;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn grid(w: usize, h: usize, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for y in 0..h {
            for x in 0..w {
                let u = y * w + x;
                if x + 1 < w {
                    edges.push((u, u + 1, 0.5 + rng.random::<f64>()));
                }
                if y + 1 < h {
                    edges.push((u, u + w, 0.5 + rng.random::<f64>()));
                }
            }
        }
        Graph::from_edges(w * h, &edges).unwrap()
    }

    fn spearman(a: &[f64], b: &[f64]) -> f64 {
        fn ranks(x: &[f64]) -> Vec<f64> {
            let mut idx: Vec<usize> = (0..x.len()).collect();
            idx.sort_by(|&i, &j| x[i].total_cmp(&x[j]));
            let mut r = vec![0.0; x.len()];
            for (rank, &i) in idx.iter().enumerate() {
                r[i] = rank as f64;
            }
            r
        }
        let (ra, rb) = (ranks(a), ranks(b));
        let n = a.len() as f64;
        let mean = (n - 1.0) / 2.0;
        let mut num = 0.0;
        let mut da = 0.0;
        let mut db = 0.0;
        for i in 0..a.len() {
            num += (ra[i] - mean) * (rb[i] - mean);
            da += (ra[i] - mean).powi(2);
            db += (rb[i] - mean).powi(2);
        }
        num / (da.sqrt() * db.sqrt())
    }

    #[test]
    fn embedding_dimension_defaults_to_log_n() {
        let g = grid(8, 8, 1);
        let emb = KrylovEmbedder::build(&g, &KrylovConfig::default()).unwrap();
        assert_eq!(emb.num_nodes(), 64);
        assert_eq!(emb.dim(), 10); // ceil(log2 64) + 4
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = grid(6, 6, 2);
        let cfg = KrylovConfig::default().with_seed(9);
        let a = KrylovEmbedder::build(&g, &cfg).unwrap();
        let b = KrylovEmbedder::build(&g, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn path_graph_resistances_track_distance() {
        // Truncated spectral sums are not strictly monotone along a path;
        // the *ranking* must still strongly track the true resistance.
        let n = 16;
        let edges: Vec<(usize, usize, f64)> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let emb = KrylovEmbedder::build(&g, &KrylovConfig::default().with_dim(12)).unwrap();
        let approx: Vec<f64> = (1..n).map(|k| emb.distance2(0.into(), k.into())).collect();
        let truth: Vec<f64> = (1..n).map(|k| k as f64).collect();
        let rho = spearman(&approx, &truth);
        assert!(rho > 0.8, "spearman along path too low: {rho}");
        // Far pairs must read clearly larger than adjacent ones.
        assert!(approx[14] > 2.0 * approx[0]);
    }

    #[test]
    fn pair_resistance_ranking_correlates_with_exact() {
        // Pairs at mixed distances — the workload the update phase sees
        // (new edges span both local and long-range node pairs).
        let g = grid(7, 7, 3);
        let emb = KrylovEmbedder::build(&g, &KrylovConfig::default().with_dim(14)).unwrap();
        let exact = ExactResistance::dense(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut approx = Vec::new();
        let mut truth = Vec::new();
        for _ in 0..80 {
            let u: usize = rng.random_range(0..49);
            let v: usize = rng.random_range(0..49);
            if u == v {
                continue;
            }
            approx.push(emb.distance2(u.into(), v.into()));
            truth.push(exact.resistance(u.into(), v.into()));
        }
        let rho = spearman(&approx, &truth);
        assert!(rho > 0.6, "spearman correlation too low: {rho}");
    }

    #[test]
    fn laplacian_operator_variant_also_works() {
        let g = grid(6, 6, 4);
        let cfg = KrylovConfig::default()
            .with_operator(KrylovOperator::Laplacian)
            .with_dim(10);
        let emb = KrylovEmbedder::build(&g, &cfg).unwrap();
        assert!(emb.distance2(0.into(), 35.into()) > 0.0);
    }

    #[test]
    fn empty_graph_errors() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert!(KrylovEmbedder::build(&g, &KrylovConfig::default()).is_err());
    }

    #[test]
    fn tiny_complete_graph_does_not_panic_on_exhausted_krylov_space() {
        // K3 has a 2-dimensional nontrivial spectrum; asking for dim 3 should
        // cap gracefully.
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]).unwrap();
        let emb = KrylovEmbedder::build(&g, &KrylovConfig::default().with_dim(3)).unwrap();
        assert!(emb.dim() >= 1);
        // K3 with unit weights: exact R = 2/3 between any pair; the embedding
        // must at least be symmetric across pairs.
        let r01 = emb.distance2(0.into(), 1.into());
        let r12 = emb.distance2(1.into(), 2.into());
        assert!((r01 - r12).abs() < 0.5 * r01.max(r12) + 1e-12);
    }
}
