//! Ground-truth effective resistance.

use crate::ResistanceEstimator;
use ingrass_graph::{kruskal_tree, Graph, GraphError, NodeId, TreeObjective, TreePrecond};
use ingrass_linalg::{pcg, CgOptions, CsrMatrix, DenseMatrix, LinalgError};

enum Backend {
    /// Precomputed dense pseudo-inverse of the Laplacian.
    Dense(DenseMatrix),
    /// One CG solve per query.
    Cg {
        laplacian: CsrMatrix,
        precond: TreePrecond,
        ones: Vec<f64>,
        opts: CgOptions,
    },
}

/// Exact effective resistance, used as the test oracle and as a reference
/// estimator in ablation benches.
///
/// Two backends:
/// * [`ExactResistance::dense`] — `O(n³)` eigendecomposition once, `O(1)`
///   per query. Only for small graphs (n ≲ 2000).
/// * [`ExactResistance::via_cg`] — no precomputation beyond a spanning tree
///   preconditioner; each query runs one tree-preconditioned CG solve
///   `L x = b_pq` to high tolerance.
///
/// # Example
/// ```
/// use ingrass_graph::Graph;
/// use ingrass_resistance::{ExactResistance, ResistanceEstimator};
/// // Two parallel unit edges between the same endpoints: R = 1/2.
/// let g = Graph::from_edges(2, &[(0, 1, 2.0)]).unwrap();
/// let r = ExactResistance::dense(&g).unwrap();
/// assert!((r.resistance(0.into(), 1.into()) - 0.5).abs() < 1e-10);
/// ```
pub struct ExactResistance {
    backend: Backend,
}

impl std::fmt::Debug for ExactResistance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self.backend {
            Backend::Dense(_) => "dense",
            Backend::Cg { .. } => "cg",
        };
        f.debug_struct("ExactResistance")
            .field("backend", &name)
            .finish()
    }
}

impl ExactResistance {
    /// Dense-pseudo-inverse backend.
    ///
    /// # Errors
    /// Propagates eigensolver failures ([`LinalgError`]).
    pub fn dense(g: &Graph) -> Result<Self, LinalgError> {
        let l = DenseMatrix::from_csr(&g.laplacian());
        let (vals, vecs) = l.symmetric_eigen()?;
        let n = g.num_nodes();
        let lmax = vals.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let cutoff = 1e-10 * lmax.max(f64::MIN_POSITIVE);
        // pinv = V diag(1/λ) Vᵀ over the non-null eigenpairs.
        let mut pinv = DenseMatrix::zeros(n, n);
        for (k, &lam) in vals.iter().enumerate() {
            if lam.abs() <= cutoff {
                continue;
            }
            let inv = 1.0 / lam;
            for i in 0..n {
                let vik = vecs.get(i, k);
                if vik == 0.0 {
                    continue;
                }
                for j in 0..n {
                    pinv.add(i, j, inv * vik * vecs.get(j, k));
                }
            }
        }
        Ok(ExactResistance {
            backend: Backend::Dense(pinv),
        })
    }

    /// CG backend with a spanning-tree preconditioner.
    ///
    /// # Errors
    /// [`GraphError::Disconnected`] / [`GraphError::Empty`] if no spanning
    /// tree exists (resistance is infinite across components).
    pub fn via_cg(g: &Graph) -> Result<Self, GraphError> {
        let tree = kruskal_tree(g, TreeObjective::MaxWeight)?;
        Ok(ExactResistance {
            backend: Backend::Cg {
                laplacian: g.laplacian(),
                precond: TreePrecond::new(&tree.tree),
                ones: vec![1.0; g.num_nodes()],
                opts: CgOptions::default()
                    .with_rel_tol(1e-10)
                    .with_max_iters(5000),
            },
        })
    }
}

impl ResistanceEstimator for ExactResistance {
    fn resistance(&self, u: NodeId, v: NodeId) -> f64 {
        if u == v {
            return 0.0;
        }
        match &self.backend {
            Backend::Dense(pinv) => {
                pinv.get(u.index(), u.index()) + pinv.get(v.index(), v.index())
                    - 2.0 * pinv.get(u.index(), v.index())
            }
            Backend::Cg {
                laplacian,
                precond,
                ones,
                opts,
            } => {
                let n = laplacian.n_rows();
                let mut b = vec![0.0; n];
                b[u.index()] = 1.0;
                b[v.index()] = -1.0;
                let mut x = vec![0.0; n];
                pcg(laplacian, &b, &mut x, precond, Some(ones), opts);
                x[u.index()] - x[v.index()]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wheatstone() -> Graph {
        // Classic bridge: 0-1 (1Ω), 0-2 (1Ω), 1-3 (1Ω), 2-3 (1Ω), 1-2 (1Ω).
        // R(0,3) = 1 (by symmetry the bridge carries no current).
        Graph::from_edges(
            4,
            &[
                (0, 1, 1.0),
                (0, 2, 1.0),
                (1, 3, 1.0),
                (2, 3, 1.0),
                (1, 2, 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn dense_matches_series_parallel_rules() {
        let g = wheatstone();
        let r = ExactResistance::dense(&g).unwrap();
        assert!((r.resistance(0.into(), 3.into()) - 1.0).abs() < 1e-9);
        // R(0,1): 1Ω in parallel with (1 + series/parallel rest). By
        // symmetry of the square-with-diagonal: 1 ∥ (1 + 1∥(1+1)) = 1∥(5/3) = 5/8.
        assert!((r.resistance(0.into(), 1.into()) - 0.625).abs() < 1e-9);
    }

    #[test]
    fn cg_backend_agrees_with_dense() {
        let g = wheatstone();
        let dense = ExactResistance::dense(&g).unwrap();
        let cg = ExactResistance::via_cg(&g).unwrap();
        for u in 0..4u32 {
            for v in 0..4u32 {
                let a = dense.resistance(u.into(), v.into());
                let b = cg.resistance(u.into(), v.into());
                assert!((a - b).abs() < 1e-7, "({u},{v}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn cycle_resistance_formula() {
        // On a unit cycle of n nodes, R(0, k) = k(n-k)/n.
        let n = 12;
        let edges: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let r = ExactResistance::dense(&g).unwrap();
        for k in 1..n {
            let expect = (k * (n - k)) as f64 / n as f64;
            let got = r.resistance(0.into(), k.into());
            assert!((got - expect).abs() < 1e-9, "k={k}: {got} vs {expect}");
        }
    }

    #[test]
    fn rayleigh_monotonicity_under_extra_edge() {
        // Adding an edge can only decrease effective resistances.
        let g1 = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let g2 =
            Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 1.0)]).unwrap();
        let r1 = ExactResistance::dense(&g1).unwrap();
        let r2 = ExactResistance::dense(&g2).unwrap();
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                assert!(
                    r2.resistance(u.into(), v.into()) <= r1.resistance(u.into(), v.into()) + 1e-9
                );
            }
        }
    }

    #[test]
    fn via_cg_rejects_disconnected() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        assert!(ExactResistance::via_cg(&g).is_err());
    }
}
