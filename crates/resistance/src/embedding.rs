//! Dense low-dimensional node embeddings whose squared distances estimate
//! effective resistances.

use crate::ResistanceEstimator;
use ingrass_graph::{Graph, NodeId};

/// An `n × d` row-major matrix of node coordinates.
///
/// Both the Krylov and the JL estimators reduce resistance queries to
/// squared Euclidean distances between embedding rows; this type holds the
/// rows and implements [`ResistanceEstimator`] directly.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeEmbedding {
    n: usize,
    dim: usize,
    data: Vec<f64>,
}

impl NodeEmbedding {
    /// Creates an embedding from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != n * dim`.
    pub fn from_rows(n: usize, dim: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * dim, "embedding data length mismatch");
        NodeEmbedding { n, dim, data }
    }

    /// Number of embedded nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Embedding dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The coordinate row of node `u`.
    ///
    /// # Panics
    /// Panics if `u` is out of bounds.
    #[inline]
    pub fn vector(&self, u: NodeId) -> &[f64] {
        &self.data[u.index() * self.dim..(u.index() + 1) * self.dim]
    }

    /// Squared Euclidean distance between the rows of `u` and `v`.
    pub fn distance2(&self, u: NodeId, v: NodeId) -> f64 {
        let (a, b) = (self.vector(u), self.vector(v));
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }
}

impl ResistanceEstimator for NodeEmbedding {
    fn resistance(&self, u: NodeId, v: NodeId) -> f64 {
        self.distance2(u, v)
    }

    fn edge_resistances(&self, g: &Graph) -> Vec<f64> {
        // Each edge's distance is independent; wide graphs fan the map out
        // (results placed by edge index — identical at any width), small
        // ones stay serial per the shared ingrass-par threshold.
        ingrass_par::par_map_auto(g.edges(), |e| self.distance2(e.u, e.v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_match_manual_computation() {
        // Two nodes at (0,0) and (3,4): squared distance 25.
        let e = NodeEmbedding::from_rows(2, 2, vec![0.0, 0.0, 3.0, 4.0]);
        assert_eq!(e.distance2(0.into(), 1.into()), 25.0);
        assert_eq!(e.distance2(1.into(), 0.into()), 25.0);
        assert_eq!(e.distance2(0.into(), 0.into()), 0.0);
        assert_eq!(e.vector(1.into()), &[3.0, 4.0]);
        assert_eq!(e.num_nodes(), 2);
        assert_eq!(e.dim(), 2);
    }

    #[test]
    fn estimator_trait_delegates_to_distance() {
        let e = NodeEmbedding::from_rows(2, 1, vec![1.0, -1.0]);
        assert_eq!(e.resistance(0.into(), 1.into()), 4.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_data_length_panics() {
        NodeEmbedding::from_rows(2, 2, vec![0.0; 3]);
    }
}
