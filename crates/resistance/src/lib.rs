//! Effective-resistance estimation for the inGRASS reproduction.
//!
//! The effective resistance `R(p, q) = b_pq^T L⁺ b_pq` between two nodes of
//! a weighted graph is the quantity every spectral sparsifier in the GRASS
//! family ranks edges by (spectral distortion of an edge = `w · R`). This
//! crate offers three estimators behind one trait:
//!
//! * [`KrylovEmbedder`] — the paper's setup-phase scheme (eq. (3)): build an
//!   `m`-dimensional Krylov subspace of the adjacency (or Laplacian)
//!   operator, orthonormalise it, and use Rayleigh-quotient-scaled
//!   approximate eigenvectors as node coordinates. Nearly-linear time, no
//!   solves; accuracy suited for *ranking* edges, not for sharp values.
//! * [`JlEmbedder`] — Spielman–Srivastava random projection: solve
//!   `L y_i = B^T W^{1/2} z_i` for `k = O(log n)` random `±1` edge vectors
//!   `z_i` with tree-preconditioned CG; distances in the embedding
//!   approximate resistances to `1 ± ε`. Higher accuracy, costs solves.
//! * [`ExactResistance`] — ground truth: dense pseudo-inverse for small
//!   graphs, or one CG solve per query for medium graphs. Used in tests and
//!   in the ablation benches.
//!
//! # Example
//!
//! ```
//! use ingrass_graph::Graph;
//! use ingrass_resistance::{ExactResistance, KrylovEmbedder, KrylovConfig, ResistanceEstimator};
//!
//! // A path of 4 nodes: resistance 0-3 is 3 (unit weights in series).
//! let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
//! let exact = ExactResistance::dense(&g).unwrap();
//! assert!((exact.resistance(0.into(), 3.into()) - 3.0).abs() < 1e-9);
//!
//! // The Krylov embedding preserves the ordering of resistances.
//! let emb = KrylovEmbedder::build(&g, &KrylovConfig::default()).unwrap();
//! let near = emb.resistance(0.into(), 1.into());
//! let far = emb.resistance(0.into(), 3.into());
//! assert!(far > near);
//! ```

#![deny(missing_docs)]

mod embedding;
mod exact;
mod jl;
mod krylov;

pub use embedding::NodeEmbedding;
pub use exact::ExactResistance;
pub use jl::{JlConfig, JlEmbedder};
pub use krylov::{
    krylov_edge_resistances, krylov_resistance, KrylovConfig, KrylovEmbedder, KrylovOperator,
};

use ingrass_graph::{Graph, NodeId};

/// A source of (approximate) effective resistances between node pairs.
pub trait ResistanceEstimator {
    /// Estimated effective resistance between `u` and `v`.
    fn resistance(&self, u: NodeId, v: NodeId) -> f64;

    /// Estimated resistance of every edge of `g`, indexed by edge id.
    fn edge_resistances(&self, g: &Graph) -> Vec<f64> {
        g.edges()
            .iter()
            .map(|e| self.resistance(e.u, e.v))
            .collect()
    }
}
