//! Shared harness for the paper-reproduction benchmark binaries.
//!
//! One binary per table/figure of the paper's evaluation section:
//!
//! | binary | reproduces | run |
//! |---|---|---|
//! | `table1` | Table I — GRASS time vs inGRASS setup time | `cargo run -p ingrass-bench --release --bin table1` |
//! | `table2` | Table II — 10-iteration update comparison | `cargo run -p ingrass-bench --release --bin table2` |
//! | `table3` | Table III — robustness across initial densities | `cargo run -p ingrass-bench --release --bin table3` |
//! | `fig4`   | Fig. 4 — runtime scalability (CSV series) | `cargo run -p ingrass-bench --release --bin fig4` |
//! | `ablation` | ours — tree/selection/backend quality ablations | `cargo run -p ingrass-bench --release --bin ablation` |
//! | `perf` | ours — deterministic perf trajectory (`BENCH_*.json`) | `cargo run -p ingrass-bench --release --bin perf -- --scale tiny` |
//!
//! The table/figure binaries accept `--scale <f64>` (graph size as a
//! fraction of the paper's |V|, default 1/200), `--seed <u64>`, and
//! `--cases <csv names>`. The `perf` binary has its own flag set (named
//! scales, thread override, baseline gate) — see its module docs.

pub mod json;

use ingrass::{InGrassEngine, SetupConfig, UpdateConfig};
use ingrass_baselines::{random_update_to_condition, GrassSparsifier};
use ingrass_gen::{paper_suite, InsertionStream, TestCase};
use ingrass_graph::{DynGraph, Graph};
use ingrass_metrics::{estimate_condition_number, ConditionOptions, SparsifierDensity};
use std::time::Instant;

/// Command-line options shared by the table binaries.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Graph size as a fraction of the paper's node counts.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Which suite cases to run.
    pub cases: Vec<TestCase>,
    /// Initial off-tree density of `H(0)`.
    pub initial_density: f64,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            scale: 1.0 / 200.0,
            seed: 42,
            cases: paper_suite(),
            initial_density: 0.10,
        }
    }
}

impl HarnessOptions {
    /// Parses `--scale`, `--seed`, `--cases`, `--density` from the process
    /// arguments (no external CLI dependency).
    ///
    /// # Panics
    /// Panics with a usage message on malformed arguments.
    pub fn from_args() -> Self {
        let mut opts = HarnessOptions::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    opts.scale = args
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .expect("--scale requires a positive number");
                    i += 2;
                }
                "--seed" => {
                    opts.seed = args
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .expect("--seed requires an integer");
                    i += 2;
                }
                "--density" => {
                    opts.initial_density = args
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .expect("--density requires a number in (0,1)");
                    i += 2;
                }
                "--cases" => {
                    let list = args.get(i + 1).expect("--cases requires a csv list");
                    opts.cases = paper_suite()
                        .into_iter()
                        .filter(|c| list.split(',').any(|n| n.eq_ignore_ascii_case(c.name())))
                        .collect();
                    assert!(!opts.cases.is_empty(), "no cases matched {list}");
                    i += 2;
                }
                other => {
                    panic!("unknown argument {other} (expected --scale/--seed/--cases/--density)")
                }
            }
        }
        opts
    }
}

/// Everything measured for one suite case over the 10-iteration update
/// experiment (the columns of paper Tables II/III and Fig. 4).
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Case identifier.
    pub case: TestCase,
    /// Nodes / edges of the generated stand-in graph.
    pub nodes: usize,
    /// Edges of the generated stand-in graph.
    pub edges: usize,
    /// Off-tree density of `H(0)`.
    pub density_initial: f64,
    /// Off-tree density if every stream edge were kept.
    pub density_all: f64,
    /// Condition measure `λmax(L_H⁺L_G)` of `H(0)` against `G(0)` (the
    /// target every method must restore).
    pub kappa_initial: f64,
    /// Condition measure of the *stale* `H(0)` against the updated graph —
    /// the paper's "κ → perturbed" column.
    pub kappa_stale: f64,
    /// GRASS re-run: final off-tree density for the target.
    pub grass_density: f64,
    /// GRASS re-run: condition measure achieved.
    pub grass_kappa: f64,
    /// Total time of 10 GRASS re-sparsifications (seconds).
    pub grass_time: f64,
    /// inGRASS: one-time setup seconds.
    pub ingrass_setup_time: f64,
    /// inGRASS: final off-tree density.
    pub ingrass_density: f64,
    /// inGRASS: condition measure achieved (λmax).
    pub ingrass_kappa: f64,
    /// inGRASS: honest two-sided κ (λmax/λmin) — reweighting pushes λmin
    /// below 1; reported for transparency (see EXPERIMENTS.md).
    pub ingrass_kappa_two_sided: f64,
    /// Total time of the 10 inGRASS update batches (seconds).
    pub ingrass_time: f64,
    /// Random baseline: off-tree density needed for the target.
    pub random_density: f64,
    /// GRASS single from-scratch sparsification time (Table I column).
    pub grass_single_time: f64,
}

impl CaseResult {
    /// The headline `GRASS-T / inGRASS-T` speedup.
    pub fn speedup(&self) -> f64 {
        if self.ingrass_time > 0.0 {
            self.grass_time / self.ingrass_time
        } else {
            f64::INFINITY
        }
    }
}

/// Runs the full 10-iteration comparison for one case on the given graph.
///
/// The protocol mirrors the paper:
/// 1. `H(0)` = GRASS at `initial_density`; the target condition measure is
///    `λmax(L_{H(0)}⁺ L_{G(0)})`.
/// 2. A seeded stream sized to +24 % off-tree edges arrives over 10
///    batches.
/// 3. **GRASS** re-sparsifies the updated graph from scratch each
///    iteration (timed); its final density for the target comes from one
///    condition-number search on the final graph.
/// 4. **inGRASS** runs setup once (timed separately) and filters each
///    batch incrementally (timed).
/// 5. **Random** includes random stream edges until the target is met.
///
/// # Panics
/// Panics if any pipeline stage fails (benchmark binaries surface the
/// failure rather than reporting bogus rows).
pub fn run_case(case: TestCase, g0: &Graph, opts: &HarnessOptions) -> CaseResult {
    let density = SparsifierDensity::new(g0.num_nodes());
    // The fast estimator profile keeps 14-case runs tractable; the values
    // are accurate to ~1 %, far below the cross-method differences reported.
    let cond = ConditionOptions::fast();
    let cond_fast = ConditionOptions::fast();
    let grass = GrassSparsifier::default();

    // Initial sparsifier + target.
    let t = Instant::now();
    let h0 = grass
        .by_offtree_density(g0, opts.initial_density)
        .expect("initial sparsification");
    let grass_single_time = t.elapsed().as_secs_f64();
    let kappa_initial = estimate_condition_number(g0, &h0.graph, &cond)
        .expect("initial condition estimate")
        .lambda_max;

    // Insertion stream and cumulative graphs.
    let stream = InsertionStream::paper_default(g0, opts.seed ^ 0x57ea);
    let mut g_cum = DynGraph::from_graph(g0);
    let mut g_per_iter: Vec<Graph> = Vec::with_capacity(stream.batches().len());
    let mut all_new: Vec<(usize, usize, f64)> = Vec::new();
    for batch in stream.batches() {
        for &(u, v, w) in batch {
            g_cum
                .add_edge(u.into(), v.into(), w)
                .expect("stream edges are valid");
            all_new.push((u, v, w));
        }
        g_per_iter.push(g_cum.to_graph());
    }
    let g_final = g_per_iter.last().expect("at least one batch").clone();
    let density_all = density.report(h0.graph.num_edges() + stream.total_edges(), g0.num_edges());
    let kappa_stale = estimate_condition_number(&g_final, &h0.graph, &cond)
        .expect("stale condition estimate")
        .lambda_max;

    // GRASS: density needed on the final graph (one search), then 10 timed
    // re-sparsifications at that density — the paper's per-iteration rerun.
    let searched = grass
        .to_condition(&g_final, kappa_initial, &cond_fast)
        .expect("grass condition search");
    let grass_offtree_density = {
        let off = g_final.num_edges() - (g_final.num_nodes() - 1);
        searched.offtree_added as f64 / off as f64
    };
    let grass_kappa = estimate_condition_number(&g_final, &searched.graph, &cond)
        .expect("grass final estimate")
        .lambda_max;
    let mut grass_time = 0.0;
    for g_t in &g_per_iter {
        let t = Instant::now();
        let _ = grass
            .by_offtree_density(g_t, grass_offtree_density)
            .expect("grass rerun");
        grass_time += t.elapsed().as_secs_f64();
    }
    let grass_density = density.report_graphs(&searched.graph, g0).off_tree;

    // inGRASS: setup once, stream the batches.
    let t = Instant::now();
    let mut engine = InGrassEngine::setup(&h0.graph, &SetupConfig::default().with_seed(opts.seed))
        .expect("ingrass setup");
    let ingrass_setup_time = t.elapsed().as_secs_f64();
    let ucfg = UpdateConfig {
        target_condition: kappa_initial,
        ..Default::default()
    };
    let mut ingrass_time = 0.0;
    for batch in stream.batches() {
        let t = Instant::now();
        engine.insert_batch(batch, &ucfg).expect("ingrass update");
        ingrass_time += t.elapsed().as_secs_f64();
    }
    let h_in = engine.sparsifier_graph();
    let ingrass_est =
        estimate_condition_number(&g_final, &h_in, &cond).expect("ingrass final estimate");
    let ingrass_density = density.report_graphs(&h_in, g0).off_tree;

    // Random baseline.
    let random = random_update_to_condition(
        &g_final,
        &h0.graph,
        &all_new,
        kappa_initial,
        &cond_fast,
        opts.seed ^ 0xda7a,
    )
    .expect("random baseline");
    let random_density = density.report_graphs(&random.sparsifier, g0).off_tree;

    CaseResult {
        case,
        nodes: g0.num_nodes(),
        edges: g0.num_edges(),
        density_initial: density.report_graphs(&h0.graph, g0).off_tree,
        density_all: density_all.off_tree,
        kappa_initial,
        kappa_stale,
        grass_density,
        grass_kappa,
        grass_time,
        ingrass_setup_time,
        ingrass_density,
        ingrass_kappa: ingrass_est.lambda_max,
        ingrass_kappa_two_sided: ingrass_est.kappa,
        ingrass_time,
        random_density,
        grass_single_time,
    }
}

/// Writes rows as CSV next to the binary's working directory.
///
/// # Panics
/// Panics on I/O errors (benchmark context).
pub fn write_csv(path: &str, header: &str, rows: &[String]) {
    use std::io::Write;
    let mut f = std::fs::File::create(path).expect("create csv");
    writeln!(f, "{header}").expect("write csv");
    for r in rows {
        writeln!(f, "{r}").expect("write csv");
    }
    eprintln!("wrote {path}");
}

/// Human-readable engineering format for seconds.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.0} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(2.5), "2.50 s");
        assert_eq!(fmt_secs(0.0025), "2.50 ms");
        assert_eq!(fmt_secs(0.0000025), "2 µs"); // {:.0} uses banker-style rounding
    }

    #[test]
    fn run_case_produces_consistent_row() {
        let opts = HarnessOptions {
            scale: 0.002,
            ..Default::default()
        };
        let case = TestCase::FeSphere;
        let g0 = case.build(opts.scale, opts.seed);
        let row = run_case(case, &g0, &opts);
        assert_eq!(row.nodes, g0.num_nodes());
        assert!(row.kappa_initial > 1.0);
        assert!(row.kappa_stale >= row.kappa_initial * 0.9);
        assert!(row.density_all > row.density_initial);
        assert!(row.ingrass_density <= row.density_all);
        assert!(row.random_density <= 1.0);
        assert!(row.speedup() > 1.0, "speedup {}", row.speedup());
    }
}
