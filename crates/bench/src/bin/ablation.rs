//! Quality ablations for the design choices DESIGN.md calls out:
//! spanning-tree backbone × selection policy for the GRASS baseline, and
//! resistance backend × diameter growth for the inGRASS setup.
//!
//! `cargo run -p ingrass-bench --release --bin ablation [--scale f]`

use ingrass::{InGrassEngine, ResistanceBackend, SetupConfig, UpdateConfig};
use ingrass_baselines::{GrassConfig, GrassSparsifier, SelectionPolicy, TreeKind};
use ingrass_bench::HarnessOptions;
use ingrass_gen::{InsertionStream, TestCase};
use ingrass_graph::DynGraph;
use ingrass_metrics::{estimate_condition_number, ConditionOptions, SparsifierDensity};
use ingrass_resistance::JlConfig;

fn main() {
    let opts = HarnessOptions::from_args();
    let cond = ConditionOptions::default();

    // ------------------------------------------------------------------
    // Ablation A: tree backbone × selection policy at equal density.
    // ------------------------------------------------------------------
    println!("Ablation A — GRASS baseline: λmax at 10% off-tree density");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "case", "maxW/topk", "maxW/peel", "effW/topk", "effW/peel", "lsst/topk", "lsst/peel"
    );
    for case in [
        TestCase::G2Circuit,
        TestCase::DelaunayN18,
        TestCase::FeSphere,
    ] {
        let g0 = case.build(opts.scale, opts.seed);
        print!("{:<14}", case.name());
        for tree in [
            TreeKind::MaxWeight,
            TreeKind::EffectiveWeight,
            TreeKind::LowStretch(7),
        ] {
            for selection in [SelectionPolicy::TopK, SelectionPolicy::SpreadPeel] {
                let out = GrassSparsifier::new(GrassConfig { tree, selection })
                    .by_offtree_density(&g0, opts.initial_density)
                    .expect("sparsification");
                let k = estimate_condition_number(&g0, &out.graph, &cond)
                    .expect("estimate")
                    .lambda_max;
                print!(" {k:>11.1}");
            }
        }
        println!();
    }

    // ------------------------------------------------------------------
    // Ablation B: inGRASS resistance backend × LRD growth factor.
    // ------------------------------------------------------------------
    println!("\nAblation B — inGRASS: final λmax / off-tree density after 10 update batches");
    println!(
        "{:<14} {:>18} {:>18} {:>18} {:>18}",
        "case", "krylov γ=4", "krylov γ=2", "jl γ=4", "local-only γ=4"
    );
    for case in [TestCase::G2Circuit, TestCase::DelaunayN18] {
        let g0 = case.build(opts.scale, opts.seed);
        let h0 = GrassSparsifier::default()
            .by_offtree_density(&g0, opts.initial_density)
            .expect("sparsification");
        let target = estimate_condition_number(&g0, &h0.graph, &cond)
            .expect("estimate")
            .lambda_max;
        let stream = InsertionStream::paper_default(&g0, opts.seed);
        let mut g_cum = DynGraph::from_graph(&g0);
        for batch in stream.batches() {
            for &(u, v, w) in batch {
                g_cum.add_edge(u.into(), v.into(), w).expect("stream edge");
            }
        }
        let g_final = g_cum.to_graph();
        let density = SparsifierDensity::new(g0.num_nodes());

        print!("{:<14}", case.name());
        let configs: Vec<SetupConfig> = vec![
            SetupConfig::default(),
            SetupConfig::default().with_diameter_growth(2.0),
            SetupConfig::default().with_resistance(ResistanceBackend::Jl(JlConfig::default())),
            SetupConfig::default().with_resistance(ResistanceBackend::LocalOnly),
        ];
        for setup in configs {
            let mut engine =
                InGrassEngine::setup(&h0.graph, &setup.with_seed(opts.seed)).expect("setup");
            let ucfg = UpdateConfig {
                target_condition: target,
                ..Default::default()
            };
            for batch in stream.batches() {
                engine.insert_batch(batch, &ucfg).expect("update");
            }
            let h = engine.sparsifier_graph();
            let k = estimate_condition_number(&g_final, &h, &cond)
                .expect("estimate")
                .lambda_max;
            let d = density.report_graphs(&h, &g0).off_tree;
            print!("   {:>8.1}/{:>4.1}%", k, 100.0 * d);
        }
        println!();
    }
    println!("\n(target per case = λmax of H(0) vs G(0); lower λmax and lower density are better)");
}
