//! Reproduces paper **Table II**: incremental sparsification over
//! 10 update iterations — densities and condition measures for GRASS
//! (from-scratch re-runs), inGRASS, and Random, plus the runtime speedup.
//!
//! `cargo run -p ingrass-bench --release --bin table2 [--scale f] [--cases a,b]`

use ingrass_bench::{run_case, write_csv, HarnessOptions};

fn main() {
    let opts = HarnessOptions::from_args();
    println!(
        "Table II — 10-iteration incremental sparsification (scale {:.4}, seed {})",
        opts.scale, opts.seed
    );
    println!(
        "{:<14} {:>13} {:>14} {:>8} {:>9} {:>9} {:>9} {:>9} {:>8} | paper ×",
        "case",
        "D0→Dall",
        "κ0→κstale",
        "GRASS-D",
        "inGRASS-D",
        "Random-D",
        "GRASS-T",
        "inGRASS-T",
        "speedup"
    );
    let mut csv = Vec::new();
    for case in &opts.cases {
        let g0 = case.build(opts.scale, opts.seed);
        let r = run_case(*case, &g0, &opts);
        println!(
            "{:<14} {:>5.1}%→{:>5.1}% {:>6.0}→{:>6.0} {:>7.1}% {:>8.1}% {:>8.1}% {:>8.2}s {:>8.4}s {:>7.0}× | {:>4.0}×",
            case.name(),
            100.0 * r.density_initial,
            100.0 * r.density_all,
            r.kappa_initial,
            r.kappa_stale,
            100.0 * r.grass_density,
            100.0 * r.ingrass_density,
            100.0 * r.random_density,
            r.grass_time,
            r.ingrass_time,
            r.speedup(),
            case.paper_speedup(),
        );
        csv.push(format!(
            "{},{},{},{:.4},{:.4},{:.2},{:.2},{:.4},{:.4},{:.4},{:.6},{:.6},{:.2},{:.2},{:.2},{:.6}",
            case.name(),
            r.nodes,
            r.edges,
            r.density_initial,
            r.density_all,
            r.kappa_initial,
            r.kappa_stale,
            r.grass_density,
            r.ingrass_density,
            r.random_density,
            r.grass_time,
            r.ingrass_time,
            r.speedup(),
            r.grass_kappa,
            r.ingrass_kappa,
            r.ingrass_kappa_two_sided,
        ));
    }
    write_csv(
        "table2.csv",
        "case,nodes,edges,d0,d_all,kappa0,kappa_stale,grass_d,ingrass_d,random_d,\
         grass_t,ingrass_t,speedup,grass_kappa,ingrass_kappa,ingrass_kappa_two_sided",
        &csv,
    );
    println!(
        "\nκ columns are the condition measure λmax(L_H⁺L_G); the CSV adds the\n\
         achieved values per method and inGRASS's two-sided κ (see EXPERIMENTS.md)."
    );
}
