//! Deterministic perf harness: runs a fixed scenario matrix (suite case ×
//! resistance backend, setup + update phases), records wall times,
//! per-phase breakdowns, condition number and off-tree density, and writes
//! a schema-versioned `BENCH_<n>.json` at the repo root — the perf
//! trajectory every later change is judged against.
//!
//! ```text
//! cargo run -p ingrass-bench --release --bin perf -- --scale tiny --seed 42
//! ```
//!
//! Flags:
//!
//! * `--scale tiny|small|paper` — scenario size (fractions 0.01 / 0.05 /
//!   1.0 of the paper's |V|; default `tiny`).
//! * `--seed <u64>` — master seed (default 42). Graphs, streams, and every
//!   estimator probe derive from it; two runs with equal flags and equal
//!   `INGRASS_THREADS` produce identical non-timing fields.
//! * `--threads <n>` — pin the worker width for the whole process (sets
//!   `INGRASS_THREADS`, so every ambient-width stage — embedders,
//!   wide-graph `edge_resistances`, `insert_batch` scoring — sees it).
//! * `--out <path>` — write the report there instead of the auto-numbered
//!   `BENCH_<n>.json` at the repo root.
//! * `--baseline <path>` — compare against a previous report and **exit
//!   non-zero** if any scenario's `setup_wall_s`/`update_wall_s` regressed
//!   more than the tolerance (the CI gate).
//! * `--tolerance <f>` — relative regression budget for `--baseline`
//!   (default 0.25 = 25 %, plus a 5 ms absolute floor against timer noise).
//!
//! The emitted JSON schema (`schema_version` 2) is documented in the README
//! ("Benchmarking & perf tracking"). Schema 1 additions were
//! backward-compatible: one `<case>/krylov/churn` scenario per case
//! exercising the operation-log engine under a mixed
//! insert/delete/reweight stream (drift-driven re-setups enabled), plus a
//! top-level `update_mix` metadata object with the churn ratios, plus one
//! `<case>/solve` scenario per case measuring the sparsifier-preconditioned
//! solve service (factorization wall time, cold vs warm batched PCG,
//! iteration counts against unpreconditioned CG), plus one `serve/<case>`
//! scenario per case measuring the concurrent serving layer (snapshot
//! publish latency per state-changing batch, admission-batched drain wall
//! time, mixed update+solve throughput). Schema 2 adds one
//! `recover/<case>` scenario per case measuring the persistence layer —
//! crash recovery (`PersistentEngine::open`: newest snapshot + WAL-tail
//! replay) against from-scratch engine setup on the same sparsifier — and
//! gates its `recover_wall_s`. Schema 3 adds one `shard/<case>` scenario
//! per case measuring the sharded multi-writer engine (`ShardedEngine`,
//! S=4) under a shard-skewed churn stream — summed per-shard update wall
//! vs the single-engine wall, work-imbalance ratio, boundary-graph size,
//! and stitched Schur-complement PCG iterations vs the mono
//! preconditioner — and gates `shard_update_wall_s` and
//! `shard_publish_wall_s`. Schema 4 adds one `traffic/<case>` scenario
//! per case measuring the serving front end (`ingrass-traffic`) under a
//! sustained 2× open-loop overload on a virtual clock — bounded
//! admission (cap + deadline shedding + weighted-fair dequeue) against
//! the unbounded mode on the same trace — and gates `traffic_p99_s` and
//! `shed_fraction`. Those two are deterministic virtual-clock metrics
//! (bit-exact at any machine speed and worker width), so the gate
//! compares them **without** the machine-speed calibration scaling it
//! applies to wall-clock keys. The gate refuses a baseline whose
//! `schema_version` differs from this binary's: a schema change without a
//! baseline regenerated in the same PR guards nothing.

use ingrass::{
    InGrassEngine, PhaseTimer, ResistanceBackend, SetupConfig, ShardedConfig, ShardedEngine,
    SnapshotEngine, UpdateConfig, UpdateOp,
};
use ingrass_baselines::GrassSparsifier;
use ingrass_bench::fmt_secs;
use ingrass_bench::json::{obj, scenario_metrics, Json};
use ingrass_gen::{
    ArrivalProcess, ChurnConfig, ChurnOp, ChurnStream, InsertionStream, ShardSkew, TestCase,
    WorkloadConfig, WorkloadTrace,
};
use ingrass_graph::{DynGraph, Graph};
use ingrass_metrics::{
    estimate_condition_number, ConditionOptions, ConditionTrajectory, LatencySummary,
    SparsifierDensity,
};
use ingrass_resistance::{JlConfig, KrylovConfig};
use ingrass_solve::{unpreconditioned_cg, ConcurrentSolveService, SolveConfig, SolveService};
use ingrass_store::{PersistentEngine, StorePolicy};
use ingrass_traffic::{run_open_loop, OpenLoopConfig, TrafficConfig};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

/// Bumped whenever a field changes meaning **or the gated-metric set
/// grows** (readers must check it; the gate refuses mismatched
/// baselines). 1 → 2: `recover/<case>` scenarios added and their
/// `recover_wall_s` joined the gated set — a schema-1 baseline can no
/// longer vouch for the full matrix. 2 → 3: `shard/<case>` scenarios
/// added (sharded multi-writer engine over a shard-skewed churn stream)
/// and their `shard_update_wall_s` / `shard_publish_wall_s` joined the
/// gated set. 3 → 4: `traffic/<case>` scenarios added (bounded vs
/// unbounded admission under 2× open-loop overload, virtual clock) and
/// their `traffic_p99_s` / `shed_fraction` joined the gated set —
/// compared unscaled, because they are machine-independent. 4 → 5: the
/// sharded engine's epoch-fenced commit protocol added
/// `shard_parallel_update_wall_s` (the coordinator's fan-out→fence span,
/// i.e. the slowest shard per batch) to the `shard/<case>` scenarios and
/// the gated set — on a single-CPU runner it tracks the summed per-shard
/// wall; real shard-parallel speedup only shows on multi-core hosts.
const SCHEMA_VERSION: f64 = 5.0;

/// Times a fixed integer-arithmetic kernel (~1.6·10⁸ wrapping ops) as a
/// machine-speed proxy. The regression gate scales baseline wall times by
/// the calibration ratio, so a baseline recorded on faster/slower hardware
/// still gates meaningfully (see `regressions`).
fn calibration_seconds() -> f64 {
    let timer = PhaseTimer::start();
    let mut acc: u64 = 0x9E37_79B9_7F4A_7C15;
    for i in 0..40_000_000u64 {
        acc = acc.wrapping_mul(0xBF58_476D_1CE4_E5B9) ^ (acc >> 31) ^ i;
    }
    std::hint::black_box(acc);
    timer.total().as_secs_f64()
}

/// The fixed case axis of the matrix: two FE meshes, a power grid, and the
/// Fig. 4 scalability representative (`delaunay_n18` is the base of the
/// paper's delaunay size sweep).
const CASES: [TestCase; 4] = [
    TestCase::Fe4elt2,
    TestCase::FeSphere,
    TestCase::G2Circuit,
    TestCase::DelaunayN18,
];

/// The backend axis: the paper's solve-free Krylov scheme, the JL/CG
/// high-accuracy alternative, and the zero-cost local floor.
const BACKENDS: [&str; 3] = ["krylov", "jl", "local"];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scale {
    Tiny,
    Small,
    Paper,
}

impl Scale {
    fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Paper => "paper",
        }
    }

    /// Fraction of the paper's node counts fed to the suite generators.
    fn fraction(self) -> f64 {
        match self {
            Scale::Tiny => 0.01,
            Scale::Small => 0.05,
            Scale::Paper => 1.0,
        }
    }

    /// How many times the update stream is replayed inside the timed update
    /// phase. At small scales one pass costs tens of microseconds — far
    /// below the regression gate's 5 ms noise floor, which would leave the
    /// paper's headline incremental phase ungated; replaying lifts
    /// `update_wall_s` above the floor while staying deterministic (replayed
    /// edges are already indexed, so they merge/redistribute — the same
    /// code path a dense stream exercises).
    fn update_repeats(self) -> usize {
        match self {
            Scale::Tiny => 200,
            Scale::Small => 20,
            Scale::Paper => 1,
        }
    }
}

struct Args {
    scale: Scale,
    seed: u64,
    threads: Option<usize>,
    out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    tolerance: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: Scale::Tiny,
        seed: 42,
        threads: None,
        out: None,
        baseline: None,
        tolerance: 0.25,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> &str {
            argv.get(i + 1)
                .unwrap_or_else(|| panic!("{} requires a value", argv[i]))
        };
        match argv[i].as_str() {
            "--scale" => {
                args.scale = Scale::parse(value(i))
                    .unwrap_or_else(|| panic!("--scale must be tiny|small|paper"));
            }
            "--seed" => args.seed = value(i).parse().expect("--seed requires an integer"),
            "--threads" => {
                args.threads = Some(value(i).parse().expect("--threads requires an integer ≥ 1"));
            }
            "--out" => args.out = Some(PathBuf::from(value(i))),
            "--baseline" => args.baseline = Some(PathBuf::from(value(i))),
            "--tolerance" => {
                args.tolerance = value(i).parse().expect("--tolerance requires a number");
            }
            other => panic!(
                "unknown argument {other} (expected --scale/--seed/--threads/--out/--baseline/--tolerance)"
            ),
        }
        i += 2;
    }
    args
}

fn backend_config(name: &str, threads: Option<usize>) -> ResistanceBackend {
    match name {
        "krylov" => ResistanceBackend::Krylov(KrylovConfig {
            threads,
            ..KrylovConfig::default()
        }),
        "jl" => ResistanceBackend::Jl(JlConfig {
            threads,
            ..JlConfig::default()
        }),
        "local" => ResistanceBackend::LocalOnly,
        other => panic!("unknown backend {other}"),
    }
}

/// The backend-independent fixture of one case: the generated graph, its
/// GRASS initial sparsifier, the insertion stream, and the cumulative final
/// graph — computed once per case, shared by every backend scenario (the
/// GRASS sparsification is the expensive part at `--scale paper`). The
/// churn scenario adds a paper-shaped mixed stream and its final graph.
struct CaseFixture {
    g0: Graph,
    h0: Graph,
    stream: InsertionStream,
    g_final: Graph,
    churn: ChurnStream,
}

impl CaseFixture {
    fn build(case: TestCase, args: &Args) -> CaseFixture {
        let g0 = case.build(args.scale.fraction(), args.seed);
        let h0 = GrassSparsifier::default()
            .by_offtree_density(&g0, 0.10)
            .expect("initial sparsification")
            .graph;
        let stream = InsertionStream::paper_default(&g0, args.seed ^ 0x57ea);
        let mut g_cum = DynGraph::from_graph(&g0);
        for batch in stream.batches() {
            for &(u, v, w) in batch {
                g_cum
                    .add_edge(u.into(), v.into(), w)
                    .expect("stream edges are valid");
            }
        }
        let g_final = g_cum.to_graph();
        let churn = ChurnStream::paper_default(&g0, args.seed ^ 0xc4a2);
        CaseFixture {
            g0,
            h0,
            stream,
            g_final,
            churn,
        }
    }
}

/// Bridges generator churn ops into engine update ops (the facade crate
/// owns the public conversion; the bench binary avoids the extra edge).
fn to_update_ops(batch: &[ChurnOp]) -> Vec<UpdateOp> {
    batch
        .iter()
        .map(|op| match *op {
            ChurnOp::Insert(u, v, weight) => UpdateOp::Insert { u, v, weight },
            ChurnOp::Delete(u, v) => UpdateOp::Delete { u, v },
            ChurnOp::Reweight(u, v, weight) => UpdateOp::Reweight { u, v, weight },
        })
        .collect()
}

/// Runs the churn scenario of one case: operation-log engine (Krylov
/// backend, default drift policy) over the mixed stream, with the
/// condition-number trajectory tracked across batches and re-setups.
fn run_churn_scenario(case: TestCase, fixture: &CaseFixture, args: &Args) -> Json {
    let setup_cfg = SetupConfig::default()
        .with_seed(args.seed)
        .with_resistance(backend_config("krylov", args.threads));
    let mut engine = InGrassEngine::setup(&fixture.h0, &setup_cfg).expect("churn setup");
    let ucfg = UpdateConfig::default();

    let mut timer = PhaseTimer::start();
    timer.lap();
    let mut wall = std::time::Duration::ZERO;
    let mut trajectory = ConditionTrajectory::new();
    // Ground truth follows the stream prefix: batch `i`'s quality sample
    // compares H_i against G_i, not against the final graph (edges the
    // stream has not delivered yet are no fault of the sparsifier).
    let mut g_now = DynGraph::from_graph(&fixture.g0);
    for (i, batch) in fixture.churn.batches().iter().enumerate() {
        let ops = to_update_ops(batch);
        ingrass::replay_ops(&mut g_now, &ops).expect("churn stream is consistent");
        timer.lap();
        let report = engine.apply_batch(&ops, &ucfg).expect("churn update");
        wall += timer.lap();
        // Quality tracking happens outside the timed region.
        let est = estimate_condition_number(
            &g_now.to_graph(),
            &engine.sparsifier_graph(),
            &ConditionOptions::fast(),
        )
        .expect("churn condition estimate");
        trajectory.record(i, &est, report.resetup.is_some());
    }

    let density = SparsifierDensity::new(fixture.g0.num_nodes())
        .report_graphs(&engine.sparsifier_graph(), &fixture.g0)
        .off_tree;
    let ledger = engine.ledger();
    println!(
        "{:<14} {:<7} churn {:>10}  κ {:>8.2} (max {:>8.2})  resetups {}  density {:.4}",
        case.name(),
        "krylov",
        fmt_secs(wall.as_secs_f64()),
        trajectory.final_lambda_max().unwrap_or(f64::NAN),
        trajectory.max_lambda_max().unwrap_or(f64::NAN),
        engine.resetups(),
        density,
    );

    let trajectory_json: Vec<Json> = trajectory
        .points()
        .iter()
        .map(|p| {
            obj(vec![
                ("batch", Json::Num(p.batch as f64)),
                ("lambda_max", Json::Num(p.lambda_max)),
                ("kappa", Json::Num(p.kappa)),
                ("resetup", Json::Bool(p.resetup)),
            ])
        })
        .collect();
    obj(vec![
        ("id", Json::Str(format!("{}/krylov/churn", case.name()))),
        ("case", Json::Str(case.name().to_string())),
        ("backend", Json::Str("krylov".to_string())),
        ("kind", Json::Str("churn".to_string())),
        ("nodes", Json::Num(fixture.g0.num_nodes() as f64)),
        ("edges", Json::Num(fixture.g0.num_edges() as f64)),
        ("churn_wall_s", Json::Num(wall.as_secs_f64())),
        ("churn_ops", Json::Num(fixture.churn.total_ops() as f64)),
        ("churn_inserts", Json::Num(fixture.churn.inserts() as f64)),
        ("churn_deletes", Json::Num(fixture.churn.deletes() as f64)),
        (
            "churn_reweights",
            Json::Num(fixture.churn.reweights() as f64),
        ),
        ("churn_relinks", Json::Num(ledger.relinks() as f64)),
        ("churn_vacuous", Json::Num(ledger.vacuous() as f64)),
        ("churn_resetups", Json::Num(engine.resetups() as f64)),
        (
            "condition_churn_final",
            Json::Num(trajectory.final_lambda_max().unwrap_or(f64::NAN)),
        ),
        (
            "condition_churn_max",
            Json::Num(trajectory.max_lambda_max().unwrap_or(f64::NAN)),
        ),
        ("offtree_density_final", Json::Num(density)),
        ("condition_trajectory", Json::Arr(trajectory_json)),
    ])
}

/// Deterministic multi-RHS batch for the solve scenario: current
/// injections between seed-derived node pairs (the workload a Laplacian
/// solve service actually sees — potentials between terminals).
fn solve_rhs_batch(n: usize, seed: u64, count: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|i| {
            let u = (ingrass_par::derive_seed(seed, 2 * i as u64) % n as u64) as usize;
            let mut v = (ingrass_par::derive_seed(seed, 2 * i as u64 + 1) % n as u64) as usize;
            if v == u {
                v = (v + 1) % n;
            }
            let mut b = vec![0.0; n];
            b[u] = 1.0;
            b[v] = -1.0;
            b
        })
        .collect()
}

/// Off-tree density of the solve scenario's sparsifier. Preconditioner
/// extraction wants a denser basis than the paper's 10 % update-phase
/// protocol: at 10 % the factor barely beats plain CG on well-conditioned
/// meshes (fe_sphere), while at 30 % the `O(√κ(L_H⁻¹L_G))` iteration bound
/// clears 3× across the whole suite and the factor still carries ~n fill.
const SOLVE_DENSITY: f64 = 0.30;

/// Runs the solve scenario of one case: extract the sparsifier
/// preconditioner, serve a cold batched PCG solve on the *original*
/// Laplacian, replay one insertion batch (no re-setup), and serve the same
/// batch warm off the cached factorization. Unpreconditioned CG on the
/// same right-hand sides is the iteration baseline.
fn run_solve_scenario(case: TestCase, fixture: &CaseFixture, args: &Args) -> Json {
    let setup_cfg = SetupConfig::default()
        .with_seed(args.seed)
        .with_resistance(backend_config("krylov", args.threads));
    let h_solve = GrassSparsifier::default()
        .by_offtree_density(&fixture.g0, SOLVE_DENSITY)
        .expect("solve-grade sparsification")
        .graph;
    let mut engine = InGrassEngine::setup(&h_solve, &setup_cfg).expect("solve setup");
    let l_g = fixture.g0.laplacian();
    let n = fixture.g0.num_nodes();
    let rhss = solve_rhs_batch(n, args.seed ^ 0x50_1e, 4);

    // Pin the Cholesky strategy: Auto's node-ceiling fallback would
    // switch the paper-scale delaunay case to the tree preconditioner and
    // silently change what `<case>/solve` measures across scales.
    let solve_cfg = SolveConfig {
        strategy: ingrass_solve::PrecondStrategy::Cholesky,
        ..Default::default()
    };
    let mut service = SolveService::new(solve_cfg.clone());
    let (_, cold) = service
        .solve_batch(&engine, &l_g, &rhss)
        .expect("cold solve");
    assert!(cold.refactorized, "first solve must factorize");

    // Unpreconditioned baseline on identical systems (same budget and
    // tolerance). Convergence is recorded: a capped baseline would make
    // cg_iters_* and iter_ratio silent understatements.
    let timer = PhaseTimer::start();
    let cg_results: Vec<ingrass_linalg::CgResult> = rhss
        .iter()
        .map(|b| unpreconditioned_cg(&l_g, b, &solve_cfg.cg).1)
        .collect();
    let cg_wall = timer.total().as_secs_f64();
    let cg_iters: Vec<usize> = cg_results.iter().map(|r| r.iterations).collect();
    let cg_converged = cg_results.iter().all(|r| r.converged);

    // One ordinary insertion batch: epoch unchanged → the next solve is
    // served warm off the cached factorization.
    let report = engine
        .insert_batch(&fixture.stream.batches()[0], &UpdateConfig::default())
        .expect("solve-scenario update");
    assert!(report.resetup.is_none(), "insert batch must not re-setup");
    let (_, warm) = service
        .solve_batch(&engine, &l_g, &rhss)
        .expect("warm solve");
    assert!(!warm.refactorized, "cached factorization must be reused");

    let pcg_total: usize = cold.total_iterations();
    let cg_total: usize = cg_iters.iter().sum();
    let iter_ratio = cg_total as f64 / pcg_total.max(1) as f64;
    println!(
        "{:<14} solve   factor {:>10} cold {:>10} warm {:>10}  pcg {:>4} vs cg {:>5} iters ({:.1}x)",
        case.name(),
        fmt_secs(cold.factor_seconds),
        fmt_secs(cold.solve_seconds),
        fmt_secs(warm.solve_seconds),
        pcg_total,
        cg_total,
        iter_ratio,
    );

    obj(vec![
        ("id", Json::Str(format!("{}/solve", case.name()))),
        ("case", Json::Str(case.name().to_string())),
        ("backend", Json::Str("krylov".to_string())),
        ("kind", Json::Str("solve".to_string())),
        ("nodes", Json::Num(n as f64)),
        ("edges", Json::Num(fixture.g0.num_edges() as f64)),
        ("precond", Json::Str(cold.precond.to_string())),
        ("sparsifier_offtree_density", Json::Num(SOLVE_DENSITY)),
        ("rhs_count", Json::Num(rhss.len() as f64)),
        ("factor_wall_s", Json::Num(cold.factor_seconds)),
        ("factor_nnz", Json::Num(cold.factor_nnz as f64)),
        ("solve_cold_wall_s", Json::Num(cold.solve_seconds)),
        ("solve_warm_wall_s", Json::Num(warm.solve_seconds)),
        ("warm_cache_hit", Json::Bool(!warm.refactorized)),
        ("pcg_iters_total", Json::Num(pcg_total as f64)),
        ("pcg_iters_max", Json::Num(cold.max_iterations() as f64)),
        ("cg_iters_total", Json::Num(cg_total as f64)),
        (
            "cg_iters_max",
            Json::Num(cg_iters.iter().copied().max().unwrap_or(0) as f64),
        ),
        ("cg_wall_s", Json::Num(cg_wall)),
        ("cg_converged", Json::Bool(cg_converged)),
        ("iter_ratio", Json::Num(iter_ratio)),
        (
            "pcg_converged",
            Json::Bool(cold.all_converged() && warm.all_converged()),
        ),
    ])
}

/// Right-hand sides per churn batch in the serve scenario.
const SERVE_RHS_PER_BATCH: usize = 2;

/// Runs the serve scenario of one case: the concurrent serving layer's
/// mixed update+solve loop, single-threaded and deterministic so the wall
/// times gate. A `SnapshotEngine` (solve-grade sparsifier, as in the solve
/// scenario) replays the paper-shaped churn stream; every state-changing
/// batch publishes an immutable snapshot (publish latency recorded), and
/// between batches a `ConcurrentSolveService` admission-batches seeded
/// terminal-pair requests against the current snapshot and drains them —
/// PCG on the *current* original Laplacian preconditioned by the
/// snapshot's factor.
fn run_serve_scenario(case: TestCase, fixture: &CaseFixture, args: &Args) -> Json {
    let setup_cfg = SetupConfig::default()
        .with_seed(args.seed)
        .with_resistance(backend_config("krylov", args.threads));
    let h_solve = GrassSparsifier::default()
        .by_offtree_density(&fixture.g0, SOLVE_DENSITY)
        .expect("serve-grade sparsification")
        .graph;
    let mut engine = SnapshotEngine::setup(&h_solve, &setup_cfg).expect("serve setup");
    let service = ConcurrentSolveService::new(SolveConfig::default());
    let n = fixture.g0.num_nodes();
    let ucfg = UpdateConfig::default();

    let mut g_live = DynGraph::from_graph(&fixture.g0);
    let mut publish = LatencySummary::new();
    let mut publish_series: Vec<f64> = Vec::new();
    let mut nnz_series: Vec<f64> = Vec::new();
    let mut flops_series: Vec<f64> = Vec::new();
    let mut drains = LatencySummary::new();
    let mut update_wall = std::time::Duration::ZERO;
    let mut churn_ops = 0usize;
    let mut solves = 0usize;
    let mut pcg_iters = 0usize;
    let mut all_converged = true;
    let mut timer = PhaseTimer::start();
    for (i, batch) in fixture.churn.batches().iter().enumerate() {
        let ops = to_update_ops(batch);
        ingrass::replay_ops(&mut g_live, &ops).expect("churn stream is consistent");
        churn_ops += ops.len();

        // Writer side: apply + publish (publish latency tracked per batch).
        timer.lap();
        let report = engine.apply_batch(&ops, &ucfg).expect("serve update");
        update_wall += timer.lap();
        if let Some(p) = report.publish {
            publish.record(p.publish_seconds);
            publish_series.push(p.publish_seconds);
            nnz_series.push(p.factor_nnz as f64);
            flops_series.push(p.factor_flops);
        }

        // Reader side: admission-batch requests against the snapshot just
        // published, paired with the current original Laplacian, and drain.
        let lap = Arc::new(g_live.to_graph().laplacian());
        let snap = engine.snapshot();
        for k in 0..SERVE_RHS_PER_BATCH {
            let stream = (i * SERVE_RHS_PER_BATCH + k) as u64;
            let u = (ingrass_par::derive_seed(args.seed ^ 0x5e21, 2 * stream) % n as u64) as usize;
            let mut v =
                (ingrass_par::derive_seed(args.seed ^ 0x5e21, 2 * stream + 1) % n as u64) as usize;
            if v == u {
                v = (v + 1) % n;
            }
            let mut b = vec![0.0; n];
            b[u] = 1.0;
            b[v] = -1.0;
            service.submit(&snap, &lap, b).expect("serve submit");
        }
        let round = service.drain();
        drains.record(round.solve_seconds);
        solves += round.served.len();
        pcg_iters += round.total_iterations();
        all_converged &= round.all_converged();
    }

    let wall = update_wall.as_secs_f64() + drains.total_seconds();
    let throughput = if wall > 0.0 {
        (churn_ops + solves) as f64 / wall
    } else {
        f64::INFINITY
    };

    // Flat-trend self-check: with incremental factor maintenance, per-epoch
    // publish latency must not compound with the epoch count (the
    // pre-incremental regime recomputed a fill-reducing ordering every
    // publish, so each epoch cost hundreds of times its numeric work and
    // the total climbed a cliff). The paper-shaped churn is insert-heavy,
    // so the sparsifier — and any exact factor of it — genuinely grows
    // across the run; latency proportional to the factor's numeric work
    // (the flops estimate, which fill makes superlinear in nnz) is the
    // physics of an exact method, not a maintenance regression. Compare
    // the mean of the last quartile of the per-epoch series against the
    // first, allow growth up to the factor-flops growth over the same
    // window plus 50 % headroom, and add an absolute floor so sub-5 ms
    // publishes never trip on scheduler noise.
    let quartile_means = |series: &[f64]| {
        let q = series.len() / 4;
        let first = series[..q].iter().sum::<f64>() / q as f64;
        let last = series[series.len() - q..].iter().sum::<f64>() / q as f64;
        (first, last)
    };
    let trend_ratio = if publish_series.len() >= 8 {
        let (first, last) = quartile_means(&publish_series);
        let (flops_first, flops_last) = quartile_means(&flops_series);
        let flops_ratio = if flops_first > 0.0 {
            flops_last / flops_first
        } else {
            1.0
        };
        const TREND_FLOOR_S: f64 = 0.005;
        assert!(
            last <= first * flops_ratio.max(1.0) * 1.5 + TREND_FLOOR_S,
            "{}: publish latency trends upward with epoch count beyond factor growth \
             (first-quartile mean {:.4}s, last-quartile mean {:.4}s, factor-flops growth {:.2}x)",
            case.name(),
            first,
            last,
            flops_ratio,
        );
        if first > 0.0 {
            last / first
        } else {
            1.0
        }
    } else {
        1.0
    };
    println!(
        "{:<14} serve   update {:>10} publish {:>10} (max {:>10}) solve {:>10}  {} solves, {:.0} op/s",
        case.name(),
        fmt_secs(update_wall.as_secs_f64()),
        fmt_secs(publish.total_seconds()),
        fmt_secs(publish.max_seconds()),
        fmt_secs(drains.total_seconds()),
        solves,
        throughput,
    );

    obj(vec![
        ("id", Json::Str(format!("serve/{}", case.name()))),
        ("case", Json::Str(case.name().to_string())),
        ("backend", Json::Str("krylov".to_string())),
        ("kind", Json::Str("serve".to_string())),
        ("nodes", Json::Num(n as f64)),
        ("edges", Json::Num(fixture.g0.num_edges() as f64)),
        ("sparsifier_offtree_density", Json::Num(SOLVE_DENSITY)),
        ("churn_ops", Json::Num(churn_ops as f64)),
        ("serve_update_wall_s", Json::Num(update_wall.as_secs_f64())),
        ("publish_count", Json::Num(publish.count() as f64)),
        ("publish_wall_s", Json::Num(publish.total_seconds())),
        ("publish_mean_s", Json::Num(publish.mean_seconds())),
        ("publish_max_s", Json::Num(publish.max_seconds())),
        (
            "publish_series_s",
            Json::Arr(publish_series.iter().map(|&s| Json::Num(s)).collect()),
        ),
        ("publish_trend_ratio", Json::Num(trend_ratio)),
        (
            "factor_nnz_series",
            Json::Arr(nnz_series.iter().map(|&s| Json::Num(s)).collect()),
        ),
        (
            "factor_flops_series",
            Json::Arr(flops_series.iter().map(|&s| Json::Num(s)).collect()),
        ),
        ("factor_updates", Json::Num(engine.factor_updates() as f64)),
        (
            "factor_refactors",
            Json::Num(engine.factor_refactors() as f64),
        ),
        ("serve_solves", Json::Num(solves as f64)),
        ("serve_solve_wall_s", Json::Num(drains.total_seconds())),
        ("serve_drain_max_s", Json::Num(drains.max_seconds())),
        ("serve_pcg_iters_total", Json::Num(pcg_iters as f64)),
        ("serve_all_converged", Json::Bool(all_converged)),
        ("serve_throughput_ops_per_s", Json::Num(throughput)),
        ("snapshots_published", Json::Num(engine.publishes() as f64)),
        ("resetups", Json::Num(engine.engine().resetups() as f64)),
    ])
}

/// Runs the recover scenario of one case. A durable store is populated —
/// engine setup, the full churn stream, a snapshot checkpoint after the
/// next-to-last batch so the last batch remains as a WAL tail — then the
/// process "dies" (the engine is dropped) and `PersistentEngine::open`
/// recovers: newest-snapshot decode plus WAL-tail replay.
///
/// The comparison point is everything recovery replaces: without the
/// store, the crashed process would re-sparsify the original graph,
/// re-run engine setup (paying the resistance embedding again), and
/// re-apply the full update history. `recover_wall_s` is gated; the
/// headline `recover_ratio_vs_from_scratch` is recovery over that
/// from-scratch rebuild (≤ 0.25 expected on every suite case — the
/// snapshot-cadence/recovery-time trade-off is discussed in the README).
fn run_recover_scenario(case: TestCase, fixture: &CaseFixture, args: &Args) -> Json {
    let setup_cfg = SetupConfig::default()
        .with_seed(args.seed)
        .with_resistance(backend_config("krylov", args.threads));
    let ucfg = UpdateConfig::default();
    let batches = fixture.churn.batches();

    // The from-scratch rebuild, timed end to end on the same inputs.
    let mut timer = PhaseTimer::start();
    let h_rebuilt = GrassSparsifier::default()
        .by_offtree_density(&fixture.g0, 0.10)
        .expect("recover re-sparsification")
        .graph;
    let mut scratch = SnapshotEngine::setup(&h_rebuilt, &setup_cfg).expect("recover setup");
    for batch in batches {
        scratch
            .apply_batch(&to_update_ops(batch), &ucfg)
            .expect("recover from-scratch replay");
    }
    let from_scratch_wall = timer.lap().as_secs_f64();
    drop(scratch);

    // Populate the store: same setup and history, checkpointed after the
    // next-to-last batch so recovery exercises both arms — snapshot decode
    // and WAL-tail replay.
    let dir = std::env::temp_dir().join(format!(
        "ingrass-perf-recover-{}-{}",
        case.name(),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    // fsync off: the scenario times the read/replay path; sync-write noise
    // on CI runners is not what the gate should absorb. Automatic
    // checkpoints off so the snapshot/WAL split is the explicit one below.
    let policy = StorePolicy::default()
        .with_fsync(false)
        .with_snapshot_every(0);
    let mut persistent =
        PersistentEngine::create(&dir, &fixture.h0, &setup_cfg, policy).expect("recover store");
    let split = batches.len().saturating_sub(1);
    for batch in &batches[..split] {
        persistent
            .apply_batch(&to_update_ops(batch), &ucfg)
            .expect("recover churn (pre-checkpoint)");
    }
    persistent.snapshot_now().expect("recover checkpoint");
    for batch in &batches[split..] {
        persistent
            .apply_batch(&to_update_ops(batch), &ucfg)
            .expect("recover churn (WAL tail)");
    }
    let wal_seq = persistent.wal_seq();
    drop(persistent);

    timer.lap();
    let (recovered, report) = PersistentEngine::open(&dir, policy).expect("recover open");
    let recover_wall = timer.lap().as_secs_f64();
    assert_eq!(
        report.replayed_batches,
        (batches.len() - split) as u64,
        "recovery must replay exactly the WAL tail"
    );
    assert_eq!(recovered.wal_seq(), wal_seq, "recovery lost WAL records");
    let ratio = recover_wall / from_scratch_wall.max(f64::MIN_POSITIVE);
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "{:<14} recover {:>10} vs from-scratch {:>10} ({:.3}x)  snapshot seq {} + {} replayed",
        case.name(),
        fmt_secs(recover_wall),
        fmt_secs(from_scratch_wall),
        ratio,
        report.snapshot_sequence,
        report.replayed_batches,
    );

    obj(vec![
        ("id", Json::Str(format!("recover/{}", case.name()))),
        ("case", Json::Str(case.name().to_string())),
        ("backend", Json::Str("krylov".to_string())),
        ("kind", Json::Str("recover".to_string())),
        ("nodes", Json::Num(fixture.g0.num_nodes() as f64)),
        ("edges", Json::Num(fixture.g0.num_edges() as f64)),
        ("recover_wall_s", Json::Num(recover_wall)),
        ("from_scratch_wall_s", Json::Num(from_scratch_wall)),
        ("recover_ratio_vs_from_scratch", Json::Num(ratio)),
        ("recover_decode_replay_s", Json::Num(report.recover_seconds)),
        (
            "replayed_batches",
            Json::Num(report.replayed_batches as f64),
        ),
        (
            "snapshot_sequence",
            Json::Num(report.snapshot_sequence as f64),
        ),
        ("wal_seq", Json::Num(report.wal_seq as f64)),
    ])
}

/// Shard count of the `shard/<case>` scenarios.
const SHARD_COUNT: usize = 4;
/// Fraction of intra-cluster inserts biased onto the hottest shard.
const SHARD_HOT_FRACTION: f64 = 0.2;
/// Fraction of inserts forced across shard boundaries.
const SHARD_CROSS_FRACTION: f64 = 0.15;

/// Runs the shard scenario of one case: a `ShardedEngine` (S=4) and a
/// single `InGrassEngine` replay the same shard-skewed churn stream (the
/// skew derives from the sharded engine's own routing table: 20 % of
/// intra-cluster inserts biased onto one hot shard, 15 % of inserts forced
/// across shard boundaries). Tracked against the acceptance bars:
///
/// * `shard_update_wall_s` — per-shard update wall times *summed* (the
///   total work the shards did; the bar is ≤ 1.25× the single-engine
///   wall, checked inline above the 5 ms noise floor);
/// * `imbalance_ratio` — max/mean per-shard routed ops (bar ≤ 2.0,
///   checked inline — it is seed-deterministic);
/// * boundary-graph size and relink count;
/// * stitched Schur-complement PCG iterations against the mono
///   preconditioner on identical systems.
fn run_shard_scenario(case: TestCase, fixture: &CaseFixture, args: &Args) -> Json {
    let setup_cfg = SetupConfig::default()
        .with_seed(args.seed)
        .with_resistance(backend_config("krylov", args.threads));
    let mut sharded = ShardedEngine::setup(
        &fixture.h0,
        &setup_cfg,
        &ShardedConfig::default().with_shards(SHARD_COUNT),
    )
    .expect("shard setup");
    let mut mono = InGrassEngine::setup(&fixture.h0, &setup_cfg).expect("shard mono setup");

    // The skewed stream: labels are the sharded engine's own routing
    // table, so "hot shard" and "cross-shard" mean exactly what the
    // coordinator will see.
    let skew = ShardSkew {
        labels: sharded.routing().shard_of_slice().to_vec(),
        hot_fraction: SHARD_HOT_FRACTION,
        cross_fraction: SHARD_CROSS_FRACTION,
        hot_label: 0,
    };
    let churn = ChurnStream::generate_with_skew(
        &fixture.g0,
        &ChurnConfig::paper_shaped(&fixture.g0, args.seed ^ 0x5a4d),
        &skew,
    );
    let ucfg = UpdateConfig::default();

    let mut timer = PhaseTimer::start();
    let mut mono_wall = std::time::Duration::ZERO;
    let mut boundary_ops = 0usize;
    let mut intra_ops = 0usize;
    for batch in churn.batches() {
        let ops = to_update_ops(batch);
        timer.lap();
        mono.apply_batch(&ops, &ucfg).expect("shard mono update");
        mono_wall += timer.lap();
        let report = sharded.apply_batch(&ops, &ucfg).expect("shard update");
        boundary_ops += report.boundary_ops;
        intra_ops += report.intra_ops;
    }
    let publish_report = sharded.publish().expect("shard publish");
    let stats = publish_report.shard.expect("sharded publish carries stats");
    let shard_wall = stats.update.total_seconds();
    let parallel_wall = stats.parallel_update.total_seconds();
    let mono_wall_s = mono_wall.as_secs_f64();

    // Inline acceptance: the imbalance bar is deterministic; the wall bar
    // only gates above the noise floor (at --scale tiny both engines
    // finish in microseconds).
    assert!(
        stats.imbalance_ratio <= 2.0,
        "{}: shard work imbalance {:.3} exceeds 2.0 (max {} of {} ops)",
        case.name(),
        stats.imbalance_ratio,
        stats.max_shard_ops,
        stats.total_shard_ops,
    );
    const WALL_FLOOR_S: f64 = 0.005;
    if mono_wall_s > WALL_FLOOR_S {
        assert!(
            shard_wall <= 1.25 * mono_wall_s + WALL_FLOOR_S,
            "{}: summed per-shard update wall {:.4}s exceeds 1.25x the \
             single-engine wall {:.4}s",
            case.name(),
            shard_wall,
            mono_wall_s,
        );
    }
    // The fan-out→fence span can never beat the slowest shard, so it is
    // bounded below by (roughly) the summed wall divided by the shard
    // count; sanity-check the relation the commit protocol promises —
    // parallel span ≤ summed per-shard wall + fan-out overhead. A
    // wall-clock *speedup* assertion would only hold on a multi-core
    // runner (PR 2 precedent), so it stays out of the gate.
    if parallel_wall > WALL_FLOOR_S {
        assert!(
            parallel_wall <= shard_wall + 0.5 * WALL_FLOOR_S + 0.25 * shard_wall,
            "{}: fenced parallel span {:.4}s exceeds the summed per-shard \
             wall {:.4}s beyond fan-out overhead",
            case.name(),
            parallel_wall,
            shard_wall,
        );
    }

    // Stitched vs mono PCG on identical systems: the final churned graph's
    // Laplacian, preconditioned by the stitched Schur-complement factor
    // and by the mono engine's factor (same pinned Cholesky strategy as
    // the solve scenario).
    let g_now = churn.apply_to(&fixture.g0).expect("churn replay");
    let lap = g_now.laplacian();
    let n = fixture.g0.num_nodes();
    let rhss = solve_rhs_batch(n, args.seed ^ 0x54a6, 4);
    let solve_cfg = SolveConfig {
        strategy: ingrass_solve::PrecondStrategy::Cholesky,
        ..Default::default()
    };
    let mut svc = SolveService::new(solve_cfg.clone());
    let snap = sharded.snapshot();
    let (_, stitched) = svc
        .solve_snapshot_batch(&snap, &lap, &rhss)
        .expect("stitched solve");
    let mut mono_svc = SolveService::new(solve_cfg);
    let (_, mono_solve) = mono_svc
        .solve_batch(&mono, &lap, &rhss)
        .expect("shard mono solve");
    let stitched_iters = stitched.total_iterations();
    let mono_iters = mono_solve.total_iterations();

    println!(
        "{:<14} shard   update {:>10} (fence {:>10}) vs mono {:>10} ({:.2}x)  imbalance {:.2}  boundary {} edges  pcg {:>4} vs {:>4}",
        case.name(),
        fmt_secs(shard_wall),
        fmt_secs(parallel_wall),
        fmt_secs(mono_wall_s),
        shard_wall / mono_wall_s.max(f64::MIN_POSITIVE),
        stats.imbalance_ratio,
        stats.boundary_edges,
        stitched_iters,
        mono_iters,
    );

    obj(vec![
        ("id", Json::Str(format!("shard/{}", case.name()))),
        ("case", Json::Str(case.name().to_string())),
        ("backend", Json::Str("krylov".to_string())),
        ("kind", Json::Str("shard".to_string())),
        ("nodes", Json::Num(fixture.g0.num_nodes() as f64)),
        ("edges", Json::Num(fixture.g0.num_edges() as f64)),
        ("shards", Json::Num(stats.shards as f64)),
        ("hot_fraction", Json::Num(SHARD_HOT_FRACTION)),
        ("cross_fraction", Json::Num(SHARD_CROSS_FRACTION)),
        ("churn_ops", Json::Num(churn.total_ops() as f64)),
        ("intra_ops", Json::Num(intra_ops as f64)),
        ("boundary_ops", Json::Num(boundary_ops as f64)),
        ("shard_update_wall_s", Json::Num(shard_wall)),
        ("shard_parallel_update_wall_s", Json::Num(parallel_wall)),
        (
            "shard_parallel_speedup",
            Json::Num(shard_wall / parallel_wall.max(f64::MIN_POSITIVE)),
        ),
        ("mono_update_wall_s", Json::Num(mono_wall_s)),
        (
            "shard_wall_ratio_vs_mono",
            Json::Num(shard_wall / mono_wall_s.max(f64::MIN_POSITIVE)),
        ),
        ("imbalance_ratio", Json::Num(stats.imbalance_ratio)),
        ("max_shard_ops", Json::Num(stats.max_shard_ops as f64)),
        ("total_shard_ops", Json::Num(stats.total_shard_ops as f64)),
        ("boundary_edges", Json::Num(stats.boundary_edges as f64)),
        ("boundary_nodes", Json::Num(stats.boundary_nodes as f64)),
        (
            "boundary_relinks",
            Json::Num(sharded.boundary_relinks() as f64),
        ),
        (
            "shard_publish_wall_s",
            Json::Num(publish_report.publish_seconds),
        ),
        ("factor_nnz", Json::Num(publish_report.factor_nnz as f64)),
        ("stitched_pcg_iters_total", Json::Num(stitched_iters as f64)),
        ("mono_pcg_iters_total", Json::Num(mono_iters as f64)),
        (
            "stitched_iter_ratio",
            Json::Num(stitched_iters as f64 / mono_iters.max(1) as f64),
        ),
        (
            "stitched_converged",
            Json::Bool(stitched.all_converged() && mono_solve.all_converged()),
        ),
        ("resetups", Json::Num(sharded.epoch() as f64)),
    ])
}

/// Runs one (case, backend) scenario: inGRASS setup (timed, with the
/// engine's own phase breakdown) → the paper's 10-batch insertion stream
/// (timed) → final condition number and off-tree density against the
/// updated graph.
fn run_scenario(case: TestCase, fixture: &CaseFixture, backend: &str, args: &Args) -> Json {
    let CaseFixture {
        g0,
        h0,
        stream,
        g_final,
        ..
    } = fixture;
    let setup_cfg = SetupConfig::default()
        .with_seed(args.seed)
        .with_resistance(backend_config(backend, args.threads));

    let mut timer = PhaseTimer::start();
    let mut engine = InGrassEngine::setup(h0, &setup_cfg).expect("ingrass setup");
    let setup_wall = timer.lap();
    let report = engine.setup_report().clone();

    let ucfg = UpdateConfig::default();
    let repeats = args.scale.update_repeats();
    let (mut included, mut merged, mut redistributed) = (0usize, 0usize, 0usize);
    timer.lap();
    for _ in 0..repeats {
        for batch in stream.batches() {
            let r = engine.insert_batch(batch, &ucfg).expect("ingrass update");
            included += r.included;
            merged += r.merged;
            redistributed += r.redistributed;
        }
    }
    let update_wall = timer.lap();

    // Quality metrics on the final state (not part of either timed phase).
    let h_final = engine.sparsifier_graph();
    let cond = estimate_condition_number(g_final, &h_final, &ConditionOptions::fast())
        .expect("condition estimate");
    let density = SparsifierDensity::new(g0.num_nodes())
        .report_graphs(&h_final, g0)
        .off_tree;

    println!(
        "{:<14} {:<7} setup {:>10} (res {:>10}) update {:>10}  κ {:>8.2}  density {:.4}",
        case.name(),
        backend,
        fmt_secs(setup_wall.as_secs_f64()),
        fmt_secs(report.resistance_time.as_secs_f64()),
        fmt_secs(update_wall.as_secs_f64()),
        cond.lambda_max,
        density,
    );

    obj(vec![
        ("id", Json::Str(format!("{}/{}", case.name(), backend))),
        ("case", Json::Str(case.name().to_string())),
        ("backend", Json::Str(backend.to_string())),
        ("nodes", Json::Num(g0.num_nodes() as f64)),
        ("edges", Json::Num(g0.num_edges() as f64)),
        ("levels", Json::Num(report.levels as f64)),
        ("setup_wall_s", Json::Num(setup_wall.as_secs_f64())),
        (
            "setup_resistance_s",
            Json::Num(report.resistance_time.as_secs_f64()),
        ),
        ("setup_lrd_s", Json::Num(report.lrd_time.as_secs_f64())),
        (
            "setup_connectivity_s",
            Json::Num(report.connectivity_time.as_secs_f64()),
        ),
        ("update_wall_s", Json::Num(update_wall.as_secs_f64())),
        ("update_repeats", Json::Num(repeats as f64)),
        (
            "update_batches",
            Json::Num((stream.batches().len() * repeats) as f64),
        ),
        ("update_included", Json::Num(included as f64)),
        ("update_merged", Json::Num(merged as f64)),
        ("update_redistributed", Json::Num(redistributed as f64)),
        ("condition_final", Json::Num(cond.lambda_max)),
        ("offtree_density_final", Json::Num(density)),
    ])
}

/// Offered-load multiple over the front end's configured capacity in the
/// `traffic/<case>` scenarios: sustained 2× overload.
const TRAFFIC_OVERLOAD: f64 = 2.0;
/// Virtual trace horizon of the traffic scenarios (seconds).
const TRAFFIC_HORIZON_S: f64 = 2.5;
/// Bounded admission cap of the traffic scenarios.
const TRAFFIC_MAX_PENDING: usize = 32;
/// Per-request deadline of the traffic scenarios (virtual seconds).
const TRAFFIC_DEADLINE_S: f64 = 0.3;

/// Runs the traffic scenario of one case: the serving front end
/// (`ingrass-traffic`) replays the same seeded 2×-overload workload trace
/// (Poisson arrivals, hot-tenant skew, mixed reader solves + writer
/// churn) twice against a solve-grade `SnapshotEngine`, on a virtual
/// clock:
///
/// * **bounded** — admission cap, per-request deadline, weighted-fair
///   dequeue (tenant weights 2:1:1). Gated: `traffic_p99_s` (accepted
///   requests' queue wait + modeled service time) and `shed_fraction`.
///   Both are bit-deterministic at fixed seed — any machine, any worker
///   width — so the gate compares them unscaled.
/// * **unbounded** — the same trace with the cap and deadline off (the
///   pre-front-end regime, kept as a harness mode): nothing is shed and
///   the backlog at the horizon grows to roughly `(λ − C)·T`, recorded
///   as `unbounded_pending_at_horizon` next to the bounded cap.
fn run_traffic_scenario(case: TestCase, fixture: &CaseFixture, args: &Args) -> Json {
    let setup_cfg = SetupConfig::default()
        .with_seed(args.seed)
        .with_resistance(backend_config("krylov", args.threads));
    let h_solve = GrassSparsifier::default()
        .by_offtree_density(&fixture.g0, SOLVE_DENSITY)
        .expect("traffic-grade sparsification")
        .graph;
    let churn_batches: Vec<Vec<UpdateOp>> = fixture
        .churn
        .batches()
        .iter()
        .map(|b| to_update_ops(b))
        .collect();

    let bounded_cfg = OpenLoopConfig {
        traffic: TrafficConfig {
            max_pending: TRAFFIC_MAX_PENDING,
            deadline_s: TRAFFIC_DEADLINE_S,
            tenant_weights: vec![2.0, 1.0, 1.0],
        },
        ..Default::default()
    };
    let capacity_hz = bounded_cfg.capacity_hz();
    let offered_hz = capacity_hz * TRAFFIC_OVERLOAD;
    let trace = WorkloadTrace::generate(&WorkloadConfig {
        duration_s: TRAFFIC_HORIZON_S,
        arrivals: ArrivalProcess::Poisson {
            rate_hz: offered_hz,
        },
        tenants: 3,
        churn_fraction: 0.03,
        seed: args.seed ^ 0x7a11,
        ..Default::default()
    });

    let timer = PhaseTimer::start();
    let mut engine = SnapshotEngine::setup(&h_solve, &setup_cfg).expect("traffic setup");
    let bounded = run_open_loop(
        &mut engine,
        &churn_batches,
        trace.events(),
        TRAFFIC_HORIZON_S,
        &bounded_cfg,
    )
    .expect("bounded traffic run");

    let mut unbounded_cfg = bounded_cfg.clone();
    unbounded_cfg.traffic.max_pending = usize::MAX;
    unbounded_cfg.traffic.deadline_s = f64::INFINITY;
    unbounded_cfg.flush_after_horizon = false;
    let mut engine = SnapshotEngine::setup(&h_solve, &setup_cfg).expect("traffic setup");
    let unbounded = run_open_loop(
        &mut engine,
        &churn_batches,
        trace.events(),
        TRAFFIC_HORIZON_S,
        &unbounded_cfg,
    )
    .expect("unbounded traffic run");
    let wall = timer.total().as_secs_f64();

    // Inline acceptance bars — seed-deterministic, so they assert rather
    // than gate. Under sustained 2× overload the bounded front end sheds
    // roughly half the offered load (both loss modes occur), holds the
    // backlog at the cap, and keeps accepted-request p99 within
    // deadline + one cadence + max modeled service time; the unbounded
    // mode sheds nothing and its backlog grows far past the cap.
    let shed = bounded.shed_fraction();
    let p99 = bounded.p99_s();
    assert_eq!(
        bounded.non_converged,
        0,
        "{}: non-converged solves",
        case.name()
    );
    assert!(
        shed > 0.25 && shed < 0.75,
        "{}: shed fraction {shed} out of the 2x-overload band",
        case.name()
    );
    assert!(
        p99 > 0.0 && p99 < 1.0,
        "{}: accepted p99 {p99}s escaped the SLO bar",
        case.name()
    );
    assert!(
        bounded.traffic.rejected_full > 0 && bounded.traffic.shed_deadline > 0,
        "{}: overload must exercise both loss modes (full {}, deadline {})",
        case.name(),
        bounded.traffic.rejected_full,
        bounded.traffic.shed_deadline,
    );
    assert!(bounded.pending_at_horizon <= TRAFFIC_MAX_PENDING);
    assert_eq!(unbounded.traffic.rejected_full, 0);
    assert_eq!(unbounded.traffic.shed_deadline, 0);
    assert!(
        unbounded.pending_at_horizon > 3 * TRAFFIC_MAX_PENDING,
        "{}: unbounded backlog {} did not outgrow the bounded cap",
        case.name(),
        unbounded.pending_at_horizon,
    );

    println!(
        "{:<14} traffic p99 {:>10} p50 {:>10} shed {:>5.1}%  {:>4} done | unbounded backlog {:>4} ({})",
        case.name(),
        fmt_secs(p99),
        fmt_secs(bounded.accepted_latency.p50()),
        shed * 100.0,
        bounded.completed,
        unbounded.pending_at_horizon,
        fmt_secs(wall),
    );

    obj(vec![
        ("id", Json::Str(format!("traffic/{}", case.name()))),
        ("case", Json::Str(case.name().to_string())),
        ("backend", Json::Str("krylov".to_string())),
        ("kind", Json::Str("traffic".to_string())),
        ("nodes", Json::Num(fixture.g0.num_nodes() as f64)),
        ("edges", Json::Num(fixture.g0.num_edges() as f64)),
        ("capacity_hz", Json::Num(capacity_hz)),
        ("offered_hz", Json::Num(offered_hz)),
        ("horizon_s", Json::Num(TRAFFIC_HORIZON_S)),
        ("max_pending", Json::Num(TRAFFIC_MAX_PENDING as f64)),
        ("deadline_s", Json::Num(TRAFFIC_DEADLINE_S)),
        ("traffic_offered", Json::Num(bounded.traffic.offered as f64)),
        ("traffic_completed", Json::Num(bounded.completed as f64)),
        (
            "traffic_rejected_full",
            Json::Num(bounded.traffic.rejected_full as f64),
        ),
        (
            "traffic_shed_deadline",
            Json::Num(bounded.traffic.shed_deadline as f64),
        ),
        ("shed_fraction", Json::Num(shed)),
        ("traffic_p50_s", Json::Num(bounded.accepted_latency.p50())),
        ("traffic_p95_s", Json::Num(bounded.accepted_latency.p95())),
        ("traffic_p99_s", Json::Num(p99)),
        (
            "queue_wait_p99_s",
            Json::Num(bounded.traffic.queue_wait.p99()),
        ),
        (
            "per_tenant_dispatched",
            Json::Arr(
                bounded
                    .traffic
                    .per_tenant_dispatched
                    .iter()
                    .map(|&d| Json::Num(d as f64))
                    .collect(),
            ),
        ),
        ("drain_rounds", Json::Num(bounded.drain_rounds as f64)),
        (
            "churn_batches_applied",
            Json::Num(bounded.churn_batches_applied as f64),
        ),
        (
            "bounded_pending_at_horizon",
            Json::Num(bounded.pending_at_horizon as f64),
        ),
        (
            "unbounded_pending_at_horizon",
            Json::Num(unbounded.pending_at_horizon as f64),
        ),
        ("unbounded_completed", Json::Num(unbounded.completed as f64)),
        ("traffic_wall_s", Json::Num(wall)),
    ])
}

/// Next free `BENCH_<n>.json` slot at the repo root.
fn next_bench_path(root: &Path) -> PathBuf {
    let mut max_n = 0u64;
    if let Ok(entries) = std::fs::read_dir(root) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name
                .strip_prefix("BENCH_")
                .and_then(|s| s.strip_suffix(".json"))
            {
                if let Ok(n) = num.parse::<u64>() {
                    max_n = max_n.max(n + 1);
                }
            }
        }
    }
    root.join(format!("BENCH_{max_n}.json"))
}

/// Compares current timings against a baseline report. Returns the list of
/// human-readable regression lines (empty = gate passes).
///
/// Baseline times are first scaled by the `calibration_s` ratio of the two
/// reports (clamped to 4× either way), so a baseline recorded on different
/// hardware is normalized to this machine's speed before the tolerance is
/// applied. Reports without a calibration field compare unscaled.
fn regressions(current: &Json, baseline: &Json, tolerance: f64) -> Vec<String> {
    // Wall-clock gates, plus the traffic scenarios' virtual-clock SLO
    // keys below: quality metrics (condition, density) are
    // seed-deterministic and belong to correctness tests, not a perf gate.
    // The solve keys gate once a regenerated baseline carries `<case>/solve`
    // scenarios (solve latency is a tracked metric, not best-effort), and
    // likewise the serving keys once a baseline carries `serve/<case>`
    // scenarios (snapshot publish latency and drain throughput are the
    // serving layer's tracked metrics).
    const GATED: [&str; 11] = [
        "setup_wall_s",
        "update_wall_s",
        "factor_wall_s",
        "solve_cold_wall_s",
        "serve_update_wall_s",
        "publish_wall_s",
        "serve_solve_wall_s",
        "recover_wall_s",
        "shard_update_wall_s",
        "shard_parallel_update_wall_s",
        "shard_publish_wall_s",
    ];
    // Virtual-clock gates from the traffic scenarios: deterministic
    // functions of (seed, scale, config), identical at any machine speed
    // and worker width — so the machine-speed calibration ratio must NOT
    // touch them (scaling by hardware would loosen or falsely trip a bar
    // that hardware cannot move).
    const GATED_VIRTUAL: [&str; 2] = ["traffic_p99_s", "shed_fraction"];
    // Absolute floor absorbing scheduler/timer noise on sub-5 ms scenarios.
    const FLOOR_S: f64 = 0.005;
    let machine_scale = match (
        current.get("calibration_s").and_then(Json::as_f64),
        baseline.get("calibration_s").and_then(Json::as_f64),
    ) {
        (Some(cur_cal), Some(base_cal)) if base_cal > 0.0 && cur_cal > 0.0 => {
            (cur_cal / base_cal).clamp(0.25, 4.0)
        }
        _ => 1.0,
    };
    let cur = scenario_metrics(current);
    let base = scenario_metrics(baseline);
    let mut out = Vec::new();
    for (id, base_metrics) in &base {
        let Some(cur_metrics) = cur.get(id) else {
            out.push(format!("scenario {id} missing from current run"));
            continue;
        };
        let keyed_scales = GATED
            .iter()
            .map(|&k| (k, machine_scale))
            .chain(GATED_VIRTUAL.iter().map(|&k| (k, 1.0)));
        for (key, scale) in keyed_scales {
            let (Some(&b), Some(&c)) = (base_metrics.get(key), cur_metrics.get(key)) else {
                continue;
            };
            let b_scaled = b * scale;
            if c > b_scaled * (1.0 + tolerance) + FLOOR_S {
                out.push(format!(
                    "{id} {key}: {} → {} (> {:.0}% + {:.0} ms budget at machine scale {:.2})",
                    fmt_secs(b_scaled),
                    fmt_secs(c),
                    tolerance * 100.0,
                    FLOOR_S * 1e3,
                    scale,
                ));
            }
        }
    }
    out
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Some(n) = args.threads {
        // Pin the width process-wide (still single-threaded here): the
        // embedder configs carry the explicit override, and every
        // ambient-width stage (wide-graph edge_resistances, insert_batch
        // scoring) reads this variable.
        std::env::set_var(ingrass_par::THREADS_ENV, n.to_string());
    }
    let threads_effective = args.threads.unwrap_or_else(ingrass_par::num_threads);
    let calibration_s = calibration_seconds();
    println!(
        "perf — scale {} (fraction {}), seed {}, {} worker thread(s), calibration {}",
        args.scale.name(),
        args.scale.fraction(),
        args.seed,
        threads_effective,
        fmt_secs(calibration_s),
    );

    let mut scenarios = Vec::new();
    for case in CASES {
        let fixture = CaseFixture::build(case, &args);
        for backend in BACKENDS {
            scenarios.push(run_scenario(case, &fixture, backend, &args));
        }
        scenarios.push(run_churn_scenario(case, &fixture, &args));
        scenarios.push(run_solve_scenario(case, &fixture, &args));
        scenarios.push(run_serve_scenario(case, &fixture, &args));
        scenarios.push(run_recover_scenario(case, &fixture, &args));
        scenarios.push(run_shard_scenario(case, &fixture, &args));
        scenarios.push(run_traffic_scenario(case, &fixture, &args));
    }

    let doc = obj(vec![
        ("schema_version", Json::Num(SCHEMA_VERSION)),
        ("generator", Json::Str("ingrass-bench perf".to_string())),
        ("scale", Json::Str(args.scale.name().to_string())),
        ("scale_fraction", Json::Num(args.scale.fraction())),
        ("seed", Json::Num(args.seed as f64)),
        ("threads", Json::Num(threads_effective as f64)),
        ("calibration_s", Json::Num(calibration_s)),
        (
            "update_mix",
            obj(vec![
                (
                    "delete_fraction",
                    Json::Num(ChurnConfig::PAPER_DELETE_FRACTION),
                ),
                (
                    "reweight_fraction",
                    Json::Num(ChurnConfig::PAPER_REWEIGHT_FRACTION),
                ),
                (
                    "insert_fraction",
                    Json::Num(
                        1.0 - ChurnConfig::PAPER_DELETE_FRACTION
                            - ChurnConfig::PAPER_REWEIGHT_FRACTION,
                    ),
                ),
            ]),
        ),
        ("scenarios", Json::Arr(scenarios)),
    ]);

    // crates/bench/../.. = repo root, regardless of the invocation cwd.
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out_path = args
        .out
        .clone()
        .unwrap_or_else(|| next_bench_path(&repo_root));
    std::fs::write(&out_path, doc.to_pretty()).expect("write bench json");
    println!("wrote {}", out_path.display());

    if let Some(baseline_path) = &args.baseline {
        let text = std::fs::read_to_string(baseline_path).expect("read baseline json");
        let baseline = Json::parse(&text).expect("parse baseline json");
        // The gate must never pass vacuously: a baseline this binary cannot
        // interpret (schema drift, truncated/renamed scenarios) guards
        // nothing, so it is an error, not a clean pass.
        let base_schema = baseline.get("schema_version").and_then(Json::as_f64);
        if base_schema != Some(SCHEMA_VERSION) {
            eprintln!(
                "baseline {}: schema_version {:?} does not match this binary's \
                 {SCHEMA_VERSION} — the schema changed without regenerating the \
                 baseline. Re-run the perf binary on the baseline machine and \
                 check the new BENCH_baseline.json in with the schema change \
                 (same PR), so every gated metric keeps a reference point.",
                baseline_path.display(),
                base_schema,
            );
            return ExitCode::FAILURE;
        }
        if scenario_metrics(&baseline).is_empty() {
            eprintln!(
                "baseline {}: no gateable scenarios found",
                baseline_path.display(),
            );
            return ExitCode::FAILURE;
        }
        let found = regressions(&doc, &baseline, args.tolerance);
        if !found.is_empty() {
            eprintln!("PERF REGRESSIONS vs {}:", baseline_path.display());
            for line in &found {
                eprintln!("  {line}");
            }
            return ExitCode::FAILURE;
        }
        println!(
            "perf gate passed vs {} (tolerance {:.0}%)",
            baseline_path.display(),
            args.tolerance * 100.0
        );
    }
    ExitCode::SUCCESS
}
