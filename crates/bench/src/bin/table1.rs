//! Reproduces paper **Table I**: GRASS from-scratch sparsification time vs
//! the inGRASS setup time, per suite case.
//!
//! `cargo run -p ingrass-bench --release --bin table1 [--scale f] [--cases a,b]`

use ingrass::{InGrassEngine, SetupConfig};
use ingrass_baselines::GrassSparsifier;
use ingrass_bench::{fmt_secs, write_csv, HarnessOptions};
use std::time::Instant;

fn main() {
    let opts = HarnessOptions::from_args();
    println!(
        "Table I — GRASS time vs inGRASS setup time (scale {:.4}, seed {})",
        opts.scale, opts.seed
    );
    println!(
        "{:<14} {:>9} {:>9}   {:>12} {:>12}   {:>10} {:>10}",
        "case", "|V|", "|E|", "GRASS", "Setup", "paperGRASS", "paperSetup"
    );
    let mut csv = Vec::new();
    for case in &opts.cases {
        let g0 = case.build(opts.scale, opts.seed);

        // GRASS column: one full from-scratch sparsification.
        let t = Instant::now();
        let h0 = GrassSparsifier::default()
            .by_offtree_density(&g0, opts.initial_density)
            .expect("sparsification");
        let grass_s = t.elapsed().as_secs_f64();

        // Setup column: the inGRASS one-time setup on H(0).
        let t = Instant::now();
        let engine = InGrassEngine::setup(&h0.graph, &SetupConfig::default().with_seed(opts.seed))
            .expect("setup");
        let setup_s = t.elapsed().as_secs_f64();

        println!(
            "{:<14} {:>9} {:>9}   {:>12} {:>12}   {:>9.2}s {:>9.2}s",
            case.name(),
            g0.num_nodes(),
            g0.num_edges(),
            fmt_secs(grass_s),
            fmt_secs(setup_s),
            case.paper_grass_seconds(),
            case.paper_setup_seconds(),
        );
        csv.push(format!(
            "{},{},{},{:.6},{:.6},{},{},{}",
            case.name(),
            g0.num_nodes(),
            g0.num_edges(),
            grass_s,
            setup_s,
            engine.setup_report().levels,
            case.paper_grass_seconds(),
            case.paper_setup_seconds(),
        ));
    }
    write_csv(
        "table1.csv",
        "case,nodes,edges,grass_s,setup_s,lrd_levels,paper_grass_s,paper_setup_s",
        &csv,
    );
}
