//! Reproduces paper **Table III**: robustness of inGRASS across different
//! initial sparsifier densities on the `G2_circuit` case.
//!
//! `cargo run -p ingrass-bench --release --bin table3 [--scale f]`

use ingrass_bench::{run_case, write_csv, HarnessOptions};
use ingrass_gen::TestCase;

fn main() {
    let mut opts = HarnessOptions::from_args();
    let case = TestCase::G2Circuit;
    let g0 = case.build(opts.scale, opts.seed);
    println!(
        "Table III — G2_circuit across initial densities (scale {:.4}, {} nodes)",
        opts.scale,
        g0.num_nodes()
    );
    println!(
        "{:<13} {:>14} {:>9} {:>10}",
        "D0 → Dall", "κ0→κstale", "GRASS-D", "inGRASS-D"
    );
    let mut csv = Vec::new();
    // The paper sweeps 12.7 % … 6.6 %.
    for d0 in [0.127, 0.118, 0.09, 0.076, 0.066] {
        opts.initial_density = d0;
        let r = run_case(case, &g0, &opts);
        println!(
            "{:>5.1}%→{:>5.1}% {:>6.0}→{:>6.0} {:>8.1}% {:>9.1}%",
            100.0 * r.density_initial,
            100.0 * r.density_all,
            r.kappa_initial,
            r.kappa_stale,
            100.0 * r.grass_density,
            100.0 * r.ingrass_density,
        );
        csv.push(format!(
            "{:.4},{:.4},{:.2},{:.2},{:.4},{:.4}",
            r.density_initial,
            r.density_all,
            r.kappa_initial,
            r.kappa_stale,
            r.grass_density,
            r.ingrass_density,
        ));
    }
    write_csv(
        "table3.csv",
        "d0,d_all,kappa0,kappa_stale,grass_d,ingrass_d",
        &csv,
    );
}
