//! Reproduces paper **Fig. 4**: runtime scalability of GRASS (10 re-runs)
//! vs inGRASS (10 updates) vs inGRASS + its one-time setup, across graph
//! sizes. Emits the three series as CSV for log-scale plotting.
//!
//! `cargo run -p ingrass-bench --release --bin fig4 [--scale f]`

use ingrass_bench::{fmt_secs, run_case, write_csv, HarnessOptions};
use ingrass_gen::TestCase;

fn main() {
    let opts = HarnessOptions::from_args();
    // The five delaunay cases form a natural 16× size sweep; the remaining
    // cases fill in the spread like the paper's x-axis.
    let cases = if opts.cases.len() == ingrass_gen::paper_suite().len() {
        vec![
            TestCase::Fe4elt2,
            TestCase::FeSphere,
            TestCase::G2Circuit,
            TestCase::FeOcean,
            TestCase::DelaunayN18,
            TestCase::DelaunayN19,
            TestCase::DelaunayN20,
            TestCase::Naca15,
            TestCase::G3Circuit,
            TestCase::DelaunayN21,
            TestCase::M6,
            TestCase::DelaunayN22,
        ]
    } else {
        opts.cases.clone()
    };
    println!(
        "Fig. 4 — runtime scalability (scale {:.4}; log-plot the CSV series)",
        opts.scale
    );
    println!(
        "{:<14} {:>9} {:>12} {:>12} {:>14} {:>9}",
        "case", "|V|", "GRASS-T", "inGRASS-T", "inGRASS+setup", "speedup"
    );
    let mut csv = Vec::new();
    for case in cases {
        let g0 = case.build(opts.scale, opts.seed);
        let r = run_case(case, &g0, &opts);
        println!(
            "{:<14} {:>9} {:>12} {:>12} {:>14} {:>8.0}×",
            case.name(),
            r.nodes,
            fmt_secs(r.grass_time),
            fmt_secs(r.ingrass_time),
            fmt_secs(r.ingrass_time + r.ingrass_setup_time),
            r.speedup(),
        );
        csv.push(format!(
            "{},{},{:.6},{:.6},{:.6},{:.2}",
            case.name(),
            r.nodes,
            r.grass_time,
            r.ingrass_time,
            r.ingrass_time + r.ingrass_setup_time,
            r.speedup(),
        ));
    }
    write_csv(
        "fig4.csv",
        "case,nodes,grass_t,ingrass_t,ingrass_t_plus_setup,speedup",
        &csv,
    );
}
