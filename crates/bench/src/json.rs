//! Minimal JSON value type with writer and parser.
//!
//! The perf harness writes schema-versioned `BENCH_*.json` files and the CI
//! regression gate reads the checked-in baseline back; the build environment
//! has no registry access (no `serde`), so this module implements the small
//! JSON subset those files use: objects, arrays, strings, finite numbers,
//! booleans, and `null`. Non-finite numbers serialize as `null` (JSON has no
//! NaN/∞), and the parser accepts arbitrary standard JSON produced by this
//! writer or by hand-edited baselines.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion order is preserved (stable diffs between runs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key (objects only).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    // Rust's shortest round-trip formatting; integral values
                    // print bare ("1", not "1.0"), which every JSON reader
                    // (including ours) accepts as a number.
                    let s = format!("{x}");
                    out.push_str(&s);
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (rejecting trailing garbage).
    ///
    /// # Errors
    /// A human-readable message with the byte offset of the problem.
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

/// Builds an object from key/value pairs — the writer-side convenience the
/// perf harness uses.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Flattens `scenarios[*].{key→num}` maps for the regression gate: walks an
/// emitted document and returns `scenario_id → metric map`.
pub fn scenario_metrics(doc: &Json) -> BTreeMap<String, BTreeMap<String, f64>> {
    let mut out = BTreeMap::new();
    let Some(scenarios) = doc.get("scenarios").and_then(Json::as_arr) else {
        return out;
    };
    for s in scenarios {
        let Some(id) = s.get("id").and_then(Json::as_str) else {
            continue;
        };
        let mut metrics = BTreeMap::new();
        if let Json::Obj(members) = s {
            for (k, v) in members {
                if let Some(x) = v.as_f64() {
                    metrics.insert(k.clone(), x);
                }
            }
        }
        out.insert(id.to_string(), metrics);
    }
    out
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogate pairs never appear in these files; map
                        // lone surrogates to U+FFFD rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty by construction");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_bench_like_document() {
        let doc = obj(vec![
            ("schema_version", Json::Num(1.0)),
            ("scale", Json::Str("tiny".into())),
            (
                "scenarios",
                Json::Arr(vec![obj(vec![
                    ("id", Json::Str("fe_4elt2/krylov".into())),
                    ("setup_wall_s", Json::Num(0.0123)),
                    ("condition_final", Json::Num(87.5)),
                ])]),
            ),
        ]);
        let text = doc.to_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(
            back.get("scenarios").unwrap().as_arr().unwrap()[0]
                .get("setup_wall_s")
                .unwrap()
                .as_f64(),
            Some(0.0123)
        );
    }

    #[test]
    fn parses_hand_written_json() {
        let src = r#" { "a": [1, 2.5e-3, -4], "b": {"nested": true}, "c": null,
                        "s": "q\"\\\nA" } "#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("nested"), Some(&Json::Bool(true)));
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert_eq!(v.get("s").unwrap().as_str(), Some("q\"\\\nA"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "{} garbage", "\"open"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        let v = Json::Arr(vec![Json::Num(f64::NAN), Json::Num(f64::INFINITY)]);
        let text = v.to_pretty();
        assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
        assert_eq!(
            Json::parse(&text).unwrap(),
            Json::Arr(vec![Json::Null, Json::Null])
        );
    }

    #[test]
    fn scenario_metrics_flattens_numbers_only() {
        let doc = obj(vec![(
            "scenarios",
            Json::Arr(vec![obj(vec![
                ("id", Json::Str("x/y".into())),
                ("setup_wall_s", Json::Num(1.5)),
                ("backend", Json::Str("krylov".into())),
            ])]),
        )]);
        let m = scenario_metrics(&doc);
        assert_eq!(m["x/y"]["setup_wall_s"], 1.5);
        assert!(!m["x/y"].contains_key("backend"));
    }
}
