//! Criterion benchmarks of the three effective-resistance estimators
//! (setup-phase ablation: Krylov vs JL vs exact-CG).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ingrass_gen::{grid_2d, WeightModel};
use ingrass_resistance::{
    ExactResistance, JlConfig, JlEmbedder, KrylovConfig, KrylovEmbedder, ResistanceEstimator,
};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("resistance_build");
    group.sample_size(10);
    let g = grid_2d(40, 40, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 3);
    group.bench_function("krylov_default", |b| {
        b.iter(|| KrylovEmbedder::build(&g, &KrylovConfig::default()).expect("build"))
    });
    group.bench_function("jl_default", |b| {
        b.iter(|| JlEmbedder::build(&g, &JlConfig::default()).expect("build"))
    });
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("resistance_query");
    let g = grid_2d(30, 30, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 4);
    let pairs: Vec<(u32, u32)> = (0..1000u32)
        .map(|i| (i % 900, (i * 7 + 13) % 900))
        .collect();

    let krylov = KrylovEmbedder::build(&g, &KrylovConfig::default()).expect("build");
    group.bench_function("krylov_1000_pairs", |b| {
        b.iter(|| {
            pairs
                .iter()
                .map(|&(u, v)| krylov.resistance(u.into(), v.into()))
                .sum::<f64>()
        })
    });
    let jl = JlEmbedder::build(&g, &JlConfig::default()).expect("build");
    group.bench_function("jl_1000_pairs", |b| {
        b.iter(|| {
            pairs
                .iter()
                .map(|&(u, v)| jl.resistance(u.into(), v.into()))
                .sum::<f64>()
        })
    });
    // Exact CG: far fewer pairs (each query is a Laplacian solve).
    let exact = ExactResistance::via_cg(&g).expect("build");
    group.sample_size(10);
    group.bench_function("exact_cg_10_pairs", |b| {
        b.iter(|| {
            pairs[..10]
                .iter()
                .map(|&(u, v)| exact.resistance(u.into(), v.into()))
                .sum::<f64>()
        })
    });
    group.finish();
}

fn bench_krylov_dims(c: &mut Criterion) {
    let mut group = c.benchmark_group("krylov_dim_sweep");
    group.sample_size(10);
    let g = grid_2d(40, 40, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 5);
    for dim in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, &dim| {
            b.iter(|| {
                KrylovEmbedder::build(&g, &KrylovConfig::default().with_dim(dim)).expect("build")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_query, bench_krylov_dims);
criterion_main!(benches);
