//! Criterion micro-benchmarks of the inGRASS update phase — the paper's
//! headline O(log N)-per-edge claim (Fig. 4 at micro scale).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use ingrass::{InGrassEngine, SetupConfig, UpdateConfig};
use ingrass_baselines::GrassSparsifier;
use ingrass_gen::{InsertionStream, StreamConfig, TestCase};

fn bench_update_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_batch_100_edges");
    group.sample_size(20);
    group.throughput(Throughput::Elements(100));
    for case in [TestCase::G2Circuit, TestCase::DelaunayN18] {
        let g0 = case.build(0.004, 11);
        let h0 = GrassSparsifier::default()
            .by_offtree_density(&g0, 0.10)
            .expect("sparsify")
            .graph;
        let stream = InsertionStream::generate(
            &g0,
            &StreamConfig {
                batches: 1,
                edges_per_batch: 100,
                ..Default::default()
            },
        );
        let batch = stream.batches()[0].clone();
        let cfg = UpdateConfig::default();
        group.bench_with_input(
            BenchmarkId::from_parameter(case.name()),
            &batch,
            |b, batch| {
                b.iter_batched(
                    || InGrassEngine::setup(&h0, &SetupConfig::default()).expect("setup"),
                    |mut e| e.insert_batch(batch, &cfg).expect("update"),
                    BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_per_edge_scaling(c: &mut Criterion) {
    // O(log N) per edge: per-edge update cost across a 16× size sweep
    // should grow far slower than linearly.
    let mut group = c.benchmark_group("update_per_edge_scaling");
    group.sample_size(10);
    for scale_num in [1usize, 4, 16] {
        let g0 = TestCase::DelaunayN20.build(0.0005 * scale_num as f64, 5);
        let h0 = GrassSparsifier::default()
            .by_offtree_density(&g0, 0.10)
            .expect("sparsify")
            .graph;
        let stream = InsertionStream::generate(
            &g0,
            &StreamConfig {
                batches: 1,
                edges_per_batch: 200,
                ..Default::default()
            },
        );
        let batch = stream.batches()[0].clone();
        let cfg = UpdateConfig::default();
        group.throughput(Throughput::Elements(batch.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(g0.num_nodes()),
            &batch,
            |b, batch| {
                b.iter_batched(
                    || InGrassEngine::setup(&h0, &SetupConfig::default()).expect("setup"),
                    |mut e| e.insert_batch(batch, &cfg).expect("update"),
                    BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_update_batch, bench_per_edge_scaling);
criterion_main!(benches);
