//! Criterion benchmarks of the workload generators (the substrate that
//! stands in for the SuiteSparse matrices).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ingrass_gen::{
    delaunay, power_grid, sphere_mesh, DelaunayConfig, PowerGridConfig, SphereConfig,
};

fn bench_delaunay(c: &mut Criterion) {
    let mut group = c.benchmark_group("delaunay_triangulation");
    group.sample_size(10);
    for points in [1000usize, 4000, 16000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(points),
            &points,
            |b, &points| {
                b.iter(|| {
                    delaunay(&DelaunayConfig {
                        points,
                        seed: 1,
                        ..Default::default()
                    })
                    .expect("delaunay")
                })
            },
        );
    }
    group.finish();
}

fn bench_power_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("power_grid");
    group.sample_size(10);
    for side in [64usize, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(side), &side, |b, &side| {
            b.iter(|| {
                power_grid(&PowerGridConfig {
                    width: side,
                    height: side,
                    ..Default::default()
                })
            })
        });
    }
    group.finish();
}

fn bench_sphere(c: &mut Criterion) {
    c.bench_function("sphere_mesh_40x80", |b| {
        b.iter(|| sphere_mesh(&SphereConfig::default()))
    });
}

criterion_group!(benches, bench_delaunay, bench_power_grid, bench_sphere);
criterion_main!(benches);
