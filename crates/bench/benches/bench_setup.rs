//! Criterion micro-benchmarks of the inGRASS setup phase (paper Table I's
//! "Setup" column at micro scale): resistance embedding + LRD decomposition
//! + connectivity indexing, per suite family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ingrass::{InGrassEngine, SetupConfig};
use ingrass_baselines::GrassSparsifier;
use ingrass_gen::TestCase;

fn bench_setup(c: &mut Criterion) {
    let mut group = c.benchmark_group("setup_phase");
    group.sample_size(10);
    for case in [
        TestCase::G2Circuit,
        TestCase::DelaunayN18,
        TestCase::FeSphere,
        TestCase::FeOcean,
    ] {
        let g0 = case.build(0.002, 7);
        let h0 = GrassSparsifier::default()
            .by_offtree_density(&g0, 0.10)
            .expect("sparsify")
            .graph;
        group.bench_with_input(BenchmarkId::new("full_setup", case.name()), &h0, |b, h0| {
            b.iter(|| InGrassEngine::setup(h0, &SetupConfig::default()).expect("setup"));
        });
    }
    group.finish();
}

fn bench_setup_scaling(c: &mut Criterion) {
    // Near-linear scaling check: setup time across 4× node growth.
    let mut group = c.benchmark_group("setup_scaling_delaunay");
    group.sample_size(10);
    for scale_num in [1usize, 2, 4] {
        let scale = 0.001 * scale_num as f64;
        let g0 = TestCase::DelaunayN20.build(scale, 3);
        let h0 = GrassSparsifier::default()
            .by_offtree_density(&g0, 0.10)
            .expect("sparsify")
            .graph;
        group.bench_with_input(BenchmarkId::from_parameter(g0.num_nodes()), &h0, |b, h0| {
            b.iter(|| InGrassEngine::setup(h0, &SetupConfig::default()).expect("setup"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_setup, bench_setup_scaling);
criterion_main!(benches);
