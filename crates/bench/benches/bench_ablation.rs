//! Criterion timing ablations for design choices DESIGN.md calls out:
//! spanning-tree constructions and GRASS selection policies. (The *quality*
//! side of these ablations lives in the `ablation` binary, which prints κ
//! tables.)

use criterion::{criterion_group, criterion_main, Criterion};
use ingrass_baselines::{GrassConfig, GrassSparsifier, SelectionPolicy, TreeKind};
use ingrass_gen::{delaunay, DelaunayConfig};
use ingrass_graph::{effective_weight_tree, kruskal_tree, low_stretch_tree, TreeObjective};

fn bench_trees(c: &mut Criterion) {
    let mut group = c.benchmark_group("spanning_tree_build");
    group.sample_size(10);
    let g = delaunay(&DelaunayConfig {
        points: 10_000,
        seed: 2,
        ..Default::default()
    })
    .expect("delaunay");
    group.bench_function("kruskal_max_weight", |b| {
        b.iter(|| kruskal_tree(&g, TreeObjective::MaxWeight).expect("tree"))
    });
    group.bench_function("effective_weight", |b| {
        b.iter(|| effective_weight_tree(&g).expect("tree"))
    });
    group.bench_function("low_stretch_mpx", |b| {
        b.iter(|| low_stretch_tree(&g, 7).expect("tree"))
    });
    group.finish();
}

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("grass_selection_policy");
    group.sample_size(10);
    let g = delaunay(&DelaunayConfig {
        points: 10_000,
        seed: 3,
        ..Default::default()
    })
    .expect("delaunay");
    for (name, selection) in [
        ("topk", SelectionPolicy::TopK),
        ("spread_peel", SelectionPolicy::SpreadPeel),
    ] {
        group.bench_function(name, |b| {
            let grass = GrassSparsifier::new(GrassConfig {
                tree: TreeKind::LowStretch(7),
                selection,
            });
            b.iter(|| grass.by_offtree_density(&g, 0.10).expect("sparsify"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trees, bench_selection);
criterion_main!(benches);
