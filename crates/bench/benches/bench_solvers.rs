//! Criterion benchmarks of the linear-algebra substrate: tree-solver vs
//! Jacobi preconditioning, raw tree solves, and pencil Lanczos (the
//! condition-number estimator's inner loop).

use criterion::{criterion_group, criterion_main, Criterion};
use ingrass_gen::{grid_2d, WeightModel};
use ingrass_graph::{kruskal_tree, TreeLaplacianSolver, TreeObjective, TreePrecond};
use ingrass_linalg::{pcg, CgOptions, JacobiPrecond};
use ingrass_metrics::{estimate_condition_number, ConditionOptions};

fn bench_pcg(c: &mut Criterion) {
    let mut group = c.benchmark_group("pcg_grid_2500");
    group.sample_size(20);
    let g = grid_2d(50, 50, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 9);
    let n = g.num_nodes();
    let l = g.laplacian();
    let tree = kruskal_tree(&g, TreeObjective::MaxWeight).expect("tree");
    let mut b_vec: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
    let mean = b_vec.iter().sum::<f64>() / n as f64;
    b_vec.iter_mut().for_each(|v| *v -= mean);
    let ones = vec![1.0; n];
    let opts = CgOptions::default().with_rel_tol(1e-8);

    let jacobi = JacobiPrecond::from_matrix(&l);
    group.bench_function("jacobi_precond", |b| {
        b.iter(|| {
            let mut x = vec![0.0; n];
            pcg(&l, &b_vec, &mut x, &jacobi, Some(&ones), &opts)
        })
    });
    let tp = TreePrecond::new(&tree.tree);
    group.bench_function("tree_precond", |b| {
        b.iter(|| {
            let mut x = vec![0.0; n];
            pcg(&l, &b_vec, &mut x, &tp, Some(&ones), &opts)
        })
    });
    group.finish();
}

fn bench_tree_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_laplacian_solve");
    for side in [32usize, 64, 128] {
        let g = grid_2d(side, side, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 2);
        let tree = kruskal_tree(&g, TreeObjective::MaxWeight).expect("tree");
        let solver = TreeLaplacianSolver::new(&tree.tree);
        let n = g.num_nodes();
        let mut b_vec: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let mean = b_vec.iter().sum::<f64>() / n as f64;
        b_vec.iter_mut().for_each(|v| *v -= mean);
        group.bench_function(format!("n_{}", n), |b| {
            let mut x = vec![0.0; n];
            b.iter(|| solver.solve_into(&b_vec, &mut x))
        });
    }
    group.finish();
}

fn bench_condition_number(c: &mut Criterion) {
    let mut group = c.benchmark_group("condition_number_estimate");
    group.sample_size(10);
    let g = grid_2d(40, 40, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 5);
    let h = ingrass_baselines::GrassSparsifier::default()
        .by_offtree_density(&g, 0.10)
        .expect("sparsify")
        .graph;
    group.bench_function("default_opts", |b| {
        b.iter(|| estimate_condition_number(&g, &h, &ConditionOptions::default()).expect("est"))
    });
    group.bench_function("fast_opts", |b| {
        b.iter(|| estimate_condition_number(&g, &h, &ConditionOptions::fast()).expect("est"))
    });
    group.finish();
}

criterion_group!(benches, bench_pcg, bench_tree_solve, bench_condition_number);
criterion_main!(benches);
