//! Diagnostic: per-phase timing of the inGRASS setup (resistance embedding
//! vs LRD decomposition vs connectivity indexing) on two large suite cases.
//!
//! `cargo run -p ingrass-bench --release --example profile_setup`

use ingrass::{InGrassEngine, SetupConfig};
use ingrass_baselines::GrassSparsifier;
use ingrass_gen::TestCase;

fn main() {
    for case in [TestCase::DelaunayN22, TestCase::As365] {
        let g0 = case.build(0.005, 42);
        let h0 = GrassSparsifier::default()
            .by_offtree_density(&g0, 0.10)
            .expect("sparsify")
            .graph;
        let e = InGrassEngine::setup(&h0, &SetupConfig::default()).expect("setup");
        let r = e.setup_report();
        println!(
            "{}: total {:?} = resistance {:?} + lrd {:?} + connectivity {:?} ({} levels)",
            case.name(),
            r.total_time,
            r.resistance_time,
            r.lrd_time,
            r.connectivity_time,
            r.levels
        );
    }
}
