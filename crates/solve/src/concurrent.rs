//! Concurrent, snapshot-isolated solve serving: admission-batching of
//! right-hand sides per snapshot, drained in parallel on the `ingrass-par`
//! pool.
//!
//! The [`crate::SolveService`] is a single-caller object: one `&mut`
//! holder, one factorization cache, solves serialized against the caller.
//! [`ConcurrentSolveService`] is its serving-layer counterpart for the
//! [`ingrass::SnapshotEngine`] world:
//!
//! * **submission is `&self`** — any number of reader threads
//!   [`submit`](ConcurrentSolveService::submit) right-hand sides, each
//!   tagged with the [`ingrass::SparsifierSnapshot`] (and matching
//!   original-graph Laplacian) it should be answered against. Requests
//!   against the *same* snapshot coalesce into one admission group — the
//!   multi-RHS batch shape the PCG layer is built for;
//! * **draining is `&self` too** — [`drain`](ConcurrentSolveService::drain)
//!   takes the pending groups out under the lock, then solves them
//!   *outside* the lock, fanning the admitted requests out across
//!   `ingrass-par` workers ([`ingrass_par::par_map_with`] at the
//!   configured width — the pool's dynamic cursor load-balances uneven
//!   groups). Submissions arriving during a drain simply land in the next
//!   round.
//!
//! Results are deterministic: each request is solved independently from a
//! zero initial guess, so the answers are bit-for-bit identical at any
//! worker width and any submission interleaving — only the grouping (and
//! therefore throughput) depends on timing.
//!
//! Each request is preconditioned by its snapshot's own grounded factor.
//! Under the engine's incremental factor maintenance that factor is
//! usually *patched in place* (rank-1 up/downdates at publish time) rather
//! than rebuilt, but a snapshot pins whichever numbers it was published
//! with — serving never observes a half-applied update, and a patched
//! factor preconditions exactly like a fresh one.

use crate::service::{PrecondKind, SolveConfig};
use ingrass::{PhaseTimer, SparsifierSnapshot};
use ingrass_linalg::{CgResult, CsrMatrix};
use ingrass_metrics::{LatencyHistogram, LatencySummary};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Identifies one submitted request; [`Served`] results carry it back.
/// Tickets are handed out in admission order (0, 1, 2, …) per service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ticket(pub u64);

/// One answered request of a [`DrainReport`].
#[derive(Debug, Clone)]
pub struct Served {
    /// The ticket returned by [`ConcurrentSolveService::submit`].
    pub ticket: Ticket,
    /// Epoch of the snapshot the request was answered against.
    pub epoch: u64,
    /// Version of the snapshot the request was answered against.
    pub version: u64,
    /// The (zero-mean) solution potentials.
    pub x: Vec<f64>,
    /// The PCG outcome.
    pub result: CgResult,
}

/// What one [`ConcurrentSolveService::drain`] round did.
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Answered requests, sorted by ticket (admission order).
    pub served: Vec<Served>,
    /// Admission groups (distinct snapshots) the round covered.
    pub groups: usize,
    /// Wall seconds the round spent solving.
    pub solve_seconds: f64,
    /// Per-request solve wall time (each request timed individually on
    /// its worker), as a log-scale histogram — the round's latency
    /// *distribution*, where [`DrainReport::solve_seconds`] is only the
    /// round's span.
    pub request_latency: LatencyHistogram,
}

impl DrainReport {
    /// Whether every request in the round reached its tolerance.
    pub fn all_converged(&self) -> bool {
        self.served.iter().all(|s| s.result.converged)
    }

    /// PCG iterations summed over the round.
    pub fn total_iterations(&self) -> usize {
        self.served.iter().map(|s| s.result.iterations).sum()
    }
}

/// Lifetime counters of a [`ConcurrentSolveService`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ConcurrentSolveStats {
    /// Requests admitted.
    pub submitted: usize,
    /// Requests refused at the [`SolveConfig::max_pending`] cap — these
    /// were never queued and hold no ticket.
    pub rejected_full: usize,
    /// Requests answered.
    pub served: usize,
    /// Non-empty drain rounds.
    pub drains: usize,
    /// Admission groups solved across all rounds.
    pub groups_served: usize,
    /// PCG iterations summed over all answered requests.
    pub iterations_total: usize,
    /// Per-round solve wall time.
    pub drain_latency: LatencySummary,
    /// Per-request solve wall time across all rounds (the merge of every
    /// round's [`DrainReport::request_latency`]).
    pub request_latency: LatencyHistogram,
}

/// A pending admission group: requests against one snapshot/Laplacian pair.
struct Group {
    snapshot: Arc<SparsifierSnapshot>,
    laplacian: Arc<CsrMatrix>,
    rhss: Vec<Vec<f64>>,
    tickets: Vec<u64>,
}

/// Coalescing key of an admission group: the snapshot's published identity
/// plus the system matrix it is paired with (by allocation — two `Arc`s to
/// the same Laplacian share a pointer). Keyed lookup makes `submit`
/// O(1) in the number of pending groups where the old `Arc::ptr_eq` scan
/// was O(groups) — quadratic total when readers hold many distinct
/// snapshots.
type GroupKey = (u64, u64, u64, usize);

fn group_key(snapshot: &SparsifierSnapshot, laplacian: &Arc<CsrMatrix>) -> GroupKey {
    (
        snapshot.instance_id(),
        snapshot.epoch(),
        snapshot.version(),
        Arc::as_ptr(laplacian) as usize,
    )
}

struct Inner {
    /// Pending groups in admission order (drain order must not depend on
    /// map iteration order).
    groups: Vec<Group>,
    /// `GroupKey` → index into `groups`; rebuilt empty at every drain.
    index: HashMap<GroupKey, usize>,
    /// Requests admitted and not yet drained — maintained on
    /// submit/drain so `pending()` is O(1) instead of re-summing every
    /// group under the lock.
    pending: usize,
    next_ticket: u64,
    stats: ConcurrentSolveStats,
}

/// A thread-safe solve frontend over published sparsifier snapshots:
/// submissions coalesce per snapshot, drains answer them in parallel.
///
/// All methods take `&self`; share the service by reference (or `Arc`)
/// between reader threads and whoever drives the drain loop. The service
/// never touches an engine — every request names the immutable snapshot it
/// wants answered against, which is what makes serving safe while a writer
/// churns.
///
/// # Example
///
/// ```
/// use ingrass::{SnapshotEngine, SetupConfig};
/// use ingrass_solve::{ConcurrentSolveService, SolveConfig};
/// use ingrass_graph::Graph;
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let h0 = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)])?;
/// let engine = SnapshotEngine::setup(&h0, &SetupConfig::default())?;
/// let snap = engine.snapshot();
/// // Serve against the snapshot's own Laplacian (resistance workload);
/// // production pairs the snapshot with the original graph's Laplacian.
/// let lap = snap.laplacian_arc();
///
/// let service = ConcurrentSolveService::new(SolveConfig::default());
/// let t = service.submit(&snap, &lap, vec![1.0, 0.0, 0.0, -1.0])?;
/// let round = service.drain();
/// assert_eq!(round.served.len(), 1);
/// assert_eq!(round.served[0].ticket, t);
/// assert!(round.all_converged());
/// # Ok(())
/// # }
/// ```
pub struct ConcurrentSolveService {
    cfg: SolveConfig,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for ConcurrentSolveService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (pending, stats) = {
            let inner = self.lock();
            (inner.pending, inner.stats)
        };
        f.debug_struct("ConcurrentSolveService")
            .field("cfg", &self.cfg)
            .field("pending", &pending)
            .field("stats", &stats)
            .finish()
    }
}

impl ConcurrentSolveService {
    /// A service with the given configuration. The
    /// [`SolveConfig::strategy`] field is ignored — the preconditioner is
    /// always the snapshot's own factor; `cg` and `threads` apply as in
    /// [`crate::SolveService`].
    pub fn new(cfg: SolveConfig) -> Self {
        ConcurrentSolveService {
            cfg,
            inner: Mutex::new(Inner {
                groups: Vec::new(),
                index: HashMap::new(),
                pending: 0,
                next_ticket: 0,
                stats: ConcurrentSolveStats::default(),
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // Poisoning only means another caller panicked while queueing; the
        // queue itself is still structurally sound.
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Admits one right-hand side to be solved against `snapshot`
    /// (preconditioner) and `laplacian` (the system matrix — the original
    /// graph's Laplacian matching the snapshot's version). Requests naming
    /// the same snapshot coalesce into one admission group — located by a
    /// keyed map, so submission cost does not grow with the number of
    /// distinct pending snapshots.
    ///
    /// # Errors
    /// * [`crate::SolveError::Dimension`] if the Laplacian or right-hand
    ///   side shape disagrees with the snapshot's node count.
    /// * [`crate::SolveError::QueueFull`] if [`SolveConfig::max_pending`]
    ///   is set and that many requests are already pending; the request
    ///   is counted in [`ConcurrentSolveStats::rejected_full`] and never
    ///   queued (no ticket is consumed).
    pub fn submit(
        &self,
        snapshot: &Arc<SparsifierSnapshot>,
        laplacian: &Arc<CsrMatrix>,
        rhs: Vec<f64>,
    ) -> crate::Result<Ticket> {
        crate::service::check_dims(snapshot.num_nodes(), laplacian, std::slice::from_ref(&rhs))?;
        let mut inner = self.lock();
        if let Some(cap) = self.cfg.max_pending {
            if inner.pending >= cap {
                inner.stats.rejected_full += 1;
                return Err(crate::SolveError::QueueFull { max_pending: cap });
            }
        }
        let ticket = inner.next_ticket;
        inner.next_ticket += 1;
        inner.stats.submitted += 1;
        inner.pending += 1;
        let key = group_key(snapshot, laplacian);
        match inner.index.get(&key) {
            Some(&gi) => {
                let group = &mut inner.groups[gi];
                group.rhss.push(rhs);
                group.tickets.push(ticket);
            }
            None => {
                let gi = inner.groups.len();
                inner.groups.push(Group {
                    snapshot: Arc::clone(snapshot),
                    laplacian: Arc::clone(laplacian),
                    rhss: vec![rhs],
                    tickets: vec![ticket],
                });
                inner.index.insert(key, gi);
            }
        }
        Ok(Ticket(ticket))
    }

    /// Requests admitted but not yet drained (an O(1) counter read).
    pub fn pending(&self) -> usize {
        self.lock().pending
    }

    /// Lifetime counters (copied out under the lock).
    pub fn stats(&self) -> ConcurrentSolveStats {
        self.lock().stats
    }

    /// Answers every pending request and returns the round's results in
    /// admission (ticket) order.
    ///
    /// The pending groups are taken out under the lock; the solves run
    /// with the lock *released*, distributed over the configured worker
    /// width (`SolveConfig::threads`, default the ambient `ingrass-par`
    /// width) — submitters are never blocked by a running drain. Each
    /// request gets the same treatment as [`crate::SolveService`]: `1⊥`
    /// projection, constant deflation, the snapshot's exact factor as the
    /// preconditioner. Non-convergence is reported per request, not as an
    /// error.
    ///
    /// If a solve **panics** mid-round, every taken-out group is put back
    /// at the front of the queue before the panic resumes: no admitted
    /// request is lost, [`ConcurrentSolveService::pending`] never
    /// undercounts, and the next drain serves the restored requests
    /// (still in ticket order).
    pub fn drain(&self) -> DrainReport {
        self.drain_with(|g, ri| {
            crate::service::solve_projected(
                &g.laplacian,
                &g.rhss[ri],
                g.snapshot.preconditioner(),
                &self.cfg.cg,
            )
        })
    }

    /// [`ConcurrentSolveService::drain`] with the per-request solver
    /// factored out, so tests can exercise the restore-on-panic path with
    /// an injected fault.
    fn drain_with<F>(&self, solve: F) -> DrainReport
    where
        F: Fn(&Group, usize) -> (Vec<f64>, CgResult) + Sync,
    {
        let groups: Vec<Group> = {
            let mut inner = self.lock();
            inner.index.clear();
            inner.pending = 0;
            std::mem::take(&mut inner.groups)
        };
        if groups.is_empty() {
            return DrainReport {
                served: Vec::new(),
                groups: 0,
                solve_seconds: 0.0,
                request_latency: LatencyHistogram::new(),
            };
        }

        // Flatten to (group, rhs) tasks: groups of any skew share one
        // worker pool instead of serializing per group.
        let tasks: Vec<(usize, usize)> = groups
            .iter()
            .enumerate()
            .flat_map(|(gi, g)| (0..g.rhss.len()).map(move |ri| (gi, ri)))
            .collect();
        let threads = self.cfg.threads.unwrap_or_else(ingrass_par::num_threads);
        let timer = PhaseTimer::start();
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ingrass_par::par_map_with(threads, &tasks, |&(gi, ri)| {
                let g = &groups[gi];
                let one = PhaseTimer::start();
                let (x, result) = solve(g, ri);
                (x, result, one.total().as_secs_f64())
            })
        }));
        let solved: Vec<(Vec<f64>, CgResult, f64)> = match run {
            Ok(solved) => solved,
            // A panicking solve served nobody: put every taken-out group
            // back (ahead of anything submitted meanwhile) so the queue
            // and the pending counter still account for every admitted
            // request, then let the panic continue.
            Err(payload) => {
                self.restore_groups(groups);
                std::panic::resume_unwind(payload);
            }
        };
        let solve_seconds = timer.total().as_secs_f64();

        let mut request_latency = LatencyHistogram::new();
        let mut served: Vec<Served> = tasks
            .iter()
            .zip(solved)
            .map(|(&(gi, ri), (x, result, wall))| {
                request_latency.record(wall);
                Served {
                    ticket: Ticket(groups[gi].tickets[ri]),
                    epoch: groups[gi].snapshot.epoch(),
                    version: groups[gi].snapshot.version(),
                    x,
                    result,
                }
            })
            .collect();
        served.sort_by_key(|s| s.ticket);

        let mut inner = self.lock();
        inner.stats.served += served.len();
        inner.stats.drains += 1;
        inner.stats.groups_served += groups.len();
        inner.stats.iterations_total += served.iter().map(|s| s.result.iterations).sum::<usize>();
        inner.stats.drain_latency.record(solve_seconds);
        inner.stats.request_latency.merge(&request_latency);
        drop(inner);

        DrainReport {
            served,
            groups: groups.len(),
            solve_seconds,
            request_latency,
        }
    }

    /// Puts groups a failed drain round took out back into the queue, in
    /// front of anything submitted since the take (restored tickets are
    /// older), re-coalescing any group whose key was re-created by those
    /// newer submissions and rebuilding the key index and the pending
    /// counter.
    fn restore_groups(&self, restored: Vec<Group>) {
        let restored_requests: usize = restored.iter().map(|g| g.rhss.len()).sum();
        let mut inner = self.lock();
        let newer = std::mem::take(&mut inner.groups);
        inner.index.clear();
        inner.groups = restored;
        for g in newer {
            let key = group_key(&g.snapshot, &g.laplacian);
            // The index over the restored prefix is built lazily here: a
            // linear pass over what this round took out, once per drain
            // failure — not a hot path.
            let slot = inner
                .groups
                .iter()
                .position(|r| group_key(&r.snapshot, &r.laplacian) == key);
            match slot {
                Some(gi) => {
                    let target = &mut inner.groups[gi];
                    target.rhss.extend(g.rhss);
                    target.tickets.extend(g.tickets);
                }
                None => inner.groups.push(g),
            }
        }
        let index: HashMap<GroupKey, usize> = inner
            .groups
            .iter()
            .enumerate()
            .map(|(gi, g)| (group_key(&g.snapshot, &g.laplacian), gi))
            .collect();
        inner.index = index;
        inner.pending += restored_requests;
    }
}

/// The preconditioner kind every snapshot-path solve uses (the snapshot's
/// grounded Cholesky factor). Reporting layers — including
/// [`crate::SolveService::solve_snapshot_batch`]'s report tag — reference
/// this instead of hard-coding the variant.
pub const SNAPSHOT_PRECOND: PrecondKind = PrecondKind::Cholesky;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveError;
    use ingrass::{SetupConfig, SnapshotEngine, UpdateConfig, UpdateOp};
    use ingrass_graph::Graph;

    fn ring(n: usize) -> Graph {
        let mut edges: Vec<(usize, usize, f64)> = (0..n)
            .map(|i| (i, (i + 1) % n, 1.0 + (i % 4) as f64))
            .collect();
        for i in 0..n / 2 {
            edges.push((i, i + n / 2, 0.5));
        }
        Graph::from_edges(n, &edges).unwrap()
    }

    fn pair_rhs(n: usize, u: usize, v: usize) -> Vec<f64> {
        let mut b = vec![0.0; n];
        b[u] = 1.0;
        b[v] = -1.0;
        b
    }

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn service_is_shareable_across_threads() {
        assert_send_sync::<ConcurrentSolveService>();
    }

    #[test]
    fn same_snapshot_requests_coalesce_into_one_group() {
        let engine = SnapshotEngine::setup(&ring(16), &SetupConfig::default()).unwrap();
        let snap = engine.snapshot();
        let lap = snap.laplacian_arc();
        let svc = ConcurrentSolveService::new(SolveConfig::default());
        let t0 = svc.submit(&snap, &lap, pair_rhs(16, 0, 8)).unwrap();
        let t1 = svc.submit(&snap, &lap, pair_rhs(16, 1, 9)).unwrap();
        assert_eq!((t0, t1), (Ticket(0), Ticket(1)));
        assert_eq!(svc.pending(), 2);
        let round = svc.drain();
        assert_eq!(round.groups, 1, "same snapshot must admission-batch");
        assert_eq!(round.served.len(), 2);
        assert!(round.all_converged());
        assert_eq!(svc.pending(), 0);
        let stats = svc.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.served, 2);
        assert_eq!(stats.drains, 1);
        assert_eq!(stats.groups_served, 1);
        assert_eq!(stats.drain_latency.count(), 1);
    }

    #[test]
    fn distinct_snapshots_are_grouped_apart_and_tagged() {
        let mut engine = SnapshotEngine::setup(&ring(16), &SetupConfig::default()).unwrap();
        let old = engine.snapshot();
        let old_lap = old.laplacian_arc();
        engine
            .apply_batch(
                &[UpdateOp::Insert {
                    u: 0,
                    v: 5,
                    weight: 1.5,
                }],
                &UpdateConfig::default(),
            )
            .unwrap();
        let new = engine.snapshot();
        let new_lap = new.laplacian_arc();
        assert!(new.version() > old.version());

        let svc = ConcurrentSolveService::new(SolveConfig::default());
        svc.submit(&old, &old_lap, pair_rhs(16, 0, 8)).unwrap();
        svc.submit(&new, &new_lap, pair_rhs(16, 2, 10)).unwrap();
        svc.submit(&old, &old_lap, pair_rhs(16, 3, 11)).unwrap();
        let round = svc.drain();
        assert_eq!(round.groups, 2);
        assert_eq!(round.served.len(), 3);
        // Ticket order is admission order, and each answer carries the
        // version of the snapshot it was served from.
        assert_eq!(round.served[0].version, old.version());
        assert_eq!(round.served[1].version, new.version());
        assert_eq!(round.served[2].version, old.version());
        assert!(round.all_converged());
    }

    #[test]
    fn drain_results_are_deterministic_at_any_width() {
        let engine = SnapshotEngine::setup(&ring(20), &SetupConfig::default()).unwrap();
        let snap = engine.snapshot();
        let lap = snap.laplacian_arc();
        let run = |threads: Option<usize>| {
            let svc = ConcurrentSolveService::new(SolveConfig {
                threads,
                ..Default::default()
            });
            for k in 0..5 {
                svc.submit(&snap, &lap, pair_rhs(20, k, 19 - k)).unwrap();
            }
            svc.drain()
                .served
                .into_iter()
                .map(|s| s.x)
                .collect::<Vec<_>>()
        };
        let one = run(Some(1));
        for w in [2, 4, 8] {
            assert_eq!(run(Some(w)), one, "width {w} diverged");
        }
    }

    #[test]
    fn dimension_mismatches_are_rejected_at_submission() {
        let engine = SnapshotEngine::setup(&ring(12), &SetupConfig::default()).unwrap();
        let snap = engine.snapshot();
        let lap = snap.laplacian_arc();
        let svc = ConcurrentSolveService::new(SolveConfig::default());
        assert!(matches!(
            svc.submit(&snap, &lap, vec![1.0, -1.0]),
            Err(SolveError::Dimension {
                what: "right-hand side",
                ..
            })
        ));
        let small = Arc::new(CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]));
        assert!(matches!(
            svc.submit(&snap, &small, pair_rhs(12, 0, 1)),
            Err(SolveError::Dimension {
                what: "laplacian",
                ..
            })
        ));
        assert_eq!(svc.pending(), 0, "rejected requests must not queue");
    }

    #[test]
    fn panicking_drain_restores_every_request() {
        let mut engine = SnapshotEngine::setup(&ring(16), &SetupConfig::default()).unwrap();
        let old = engine.snapshot();
        let old_lap = old.laplacian_arc();
        engine
            .apply_batch(
                &[UpdateOp::Insert {
                    u: 0,
                    v: 5,
                    weight: 1.5,
                }],
                &UpdateConfig::default(),
            )
            .unwrap();
        let new = engine.snapshot();
        let new_lap = new.laplacian_arc();

        let svc = ConcurrentSolveService::new(SolveConfig::default());
        svc.submit(&old, &old_lap, pair_rhs(16, 0, 8)).unwrap();
        svc.submit(&new, &new_lap, pair_rhs(16, 2, 10)).unwrap();
        svc.submit(&old, &old_lap, pair_rhs(16, 3, 11)).unwrap();
        assert_eq!(svc.pending(), 3);

        // A solver fault mid-round must not lose the admitted requests:
        // pre-fix, drain had already zeroed `pending` and dropped the
        // taken-out groups, so the three requests silently vanished.
        let fault = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            svc.drain_with(|_, _| panic!("injected solver fault"))
        }));
        assert!(fault.is_err(), "the injected panic must propagate");
        assert_eq!(svc.pending(), 3, "a failed round must restore the queue");
        let stats = svc.stats();
        assert_eq!((stats.served, stats.drains), (0, 0));

        // Restored groups keep coalescing: a new request for a restored
        // snapshot joins its group instead of forming a duplicate.
        svc.submit(&old, &old_lap, pair_rhs(16, 4, 12)).unwrap();
        assert_eq!(svc.pending(), 4);

        // The next healthy drain serves everything, still in ticket order.
        let round = svc.drain();
        assert_eq!(round.groups, 2, "restored + merged groups, no duplicates");
        assert_eq!(
            round.served.iter().map(|s| s.ticket).collect::<Vec<_>>(),
            vec![Ticket(0), Ticket(1), Ticket(2), Ticket(3)]
        );
        assert!(round.all_converged());
        assert_eq!(svc.pending(), 0);
    }

    #[test]
    fn panicking_drain_restores_ahead_of_newer_submissions() {
        // Width 1 keeps the injected panic on the calling thread; the
        // restore path is identical at any width because par_map_with
        // re-panics on the caller either way.
        let engine = SnapshotEngine::setup(&ring(16), &SetupConfig::default()).unwrap();
        let snap = engine.snapshot();
        let lap = snap.laplacian_arc();
        let svc = ConcurrentSolveService::new(SolveConfig {
            threads: Some(1),
            ..Default::default()
        });
        svc.submit(&snap, &lap, pair_rhs(16, 0, 8)).unwrap();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            svc.drain_with(|_, _| panic!("boom"))
        }));
        // Submissions after the failure land behind the restored ticket.
        svc.submit(&snap, &lap, pair_rhs(16, 1, 9)).unwrap();
        assert_eq!(svc.pending(), 2);
        let round = svc.drain();
        assert_eq!(round.groups, 1);
        assert_eq!(
            round.served.iter().map(|s| s.ticket).collect::<Vec<_>>(),
            vec![Ticket(0), Ticket(1)]
        );
    }

    #[test]
    fn empty_drain_is_a_cheap_noop() {
        let svc = ConcurrentSolveService::new(SolveConfig::default());
        let round = svc.drain();
        assert!(round.served.is_empty());
        assert_eq!(round.groups, 0);
        assert_eq!(svc.stats().drains, 0, "empty rounds don't count");
    }

    #[test]
    fn serving_stays_exact_on_patched_factors_across_churn() {
        // Patch-friendly policy: the cap at its domain maximum plus a
        // pinned near-leaf filtering level keeps each op's delta fan-out
        // tiny (include/merge, not a cluster-wide redistribute), so these
        // 2-op batches stay on the rank-1 patch path the test is about.
        let mut engine = SnapshotEngine::setup(&ring(24), &SetupConfig::default())
            .unwrap()
            .with_factor_policy(ingrass::FactorPolicy {
                max_patch_fraction: 1.0,
                ..ingrass::FactorPolicy::default()
            })
            .unwrap();
        let svc = ConcurrentSolveService::new(SolveConfig::default());
        let ucfg = UpdateConfig::default().with_filtering_level_override(Some(1));
        let mut patched_publishes = 0;
        for step in 0..6usize {
            let report = engine
                .apply_batch(
                    &[
                        UpdateOp::Insert {
                            u: step,
                            v: (step + 11) % 24,
                            weight: 1.0 + step as f64 * 0.25,
                        },
                        UpdateOp::Reweight {
                            u: step,
                            v: step + 1,
                            weight: 2.0,
                        },
                    ],
                    &ucfg,
                )
                .unwrap();
            let publish = report.publish.expect("non-empty batch must publish");
            patched_publishes += usize::from(publish.factor_updated);
            let snap = engine.snapshot();
            let lap = snap.laplacian_arc();
            svc.submit(&snap, &lap, pair_rhs(24, step, (step + 12) % 24))
                .unwrap();
            let round = svc.drain();
            assert!(round.all_converged());
            // The snapshot's factor is an exact factorization of this very
            // Laplacian — patched or rebuilt, PCG must land almost at once.
            for s in &round.served {
                assert!(
                    s.result.iterations <= 2,
                    "patched factor lost exactness at step {step}: {} iterations",
                    s.result.iterations
                );
            }
        }
        assert!(
            patched_publishes >= 4,
            "churn this mild should patch the factor, not refactor \
             ({patched_publishes}/6 publishes patched)"
        );
    }

    #[test]
    fn queue_cap_rejects_flood_without_queueing() {
        let engine = SnapshotEngine::setup(&ring(16), &SetupConfig::default()).unwrap();
        let snap = engine.snapshot();
        let lap = snap.laplacian_arc();
        let svc = ConcurrentSolveService::new(SolveConfig {
            max_pending: Some(8),
            ..Default::default()
        });
        let mut accepted = 0;
        let mut rejected = 0;
        for k in 0..20 {
            match svc.submit(&snap, &lap, pair_rhs(16, k % 16, (k + 8) % 16)) {
                Ok(_) => accepted += 1,
                Err(SolveError::QueueFull { max_pending: 8 }) => rejected += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!((accepted, rejected), (8, 12));
        assert_eq!(svc.pending(), 8, "rejected requests must never queue");
        let stats = svc.stats();
        assert_eq!(stats.submitted, 8);
        assert_eq!(stats.rejected_full, 12);

        // Draining frees the queue; admission resumes and rejected
        // requests consumed no tickets (the sequence stays contiguous).
        let round = svc.drain();
        assert_eq!(round.served.len(), 8);
        assert_eq!(round.served.last().unwrap().ticket, Ticket(7));
        let t = svc.submit(&snap, &lap, pair_rhs(16, 0, 8)).unwrap();
        assert_eq!(t, Ticket(8));
    }

    #[test]
    fn many_distinct_snapshots_submit_in_keyed_groups() {
        // Benchmark-shaped: readers holding many distinct snapshot
        // versions at once. The keyed index must coalesce per version
        // (old behavior preserved) without the O(groups) pointer scan.
        let mut engine = SnapshotEngine::setup(&ring(16), &SetupConfig::default()).unwrap();
        let svc = ConcurrentSolveService::new(SolveConfig::default());
        let mut snaps = Vec::new();
        for step in 0..12usize {
            engine
                .apply_batch(
                    &[UpdateOp::Insert {
                        u: step,
                        v: (step + 7) % 16,
                        weight: 1.0 + step as f64 * 0.1,
                    }],
                    &UpdateConfig::default(),
                )
                .unwrap();
            let snap = engine.snapshot();
            let lap = snap.laplacian_arc();
            snaps.push((snap, lap));
        }
        // Two submissions per snapshot, interleaved so coalescing cannot
        // rely on adjacency; plus one through a *cloned* Arc, which maps
        // to the same (instance, epoch, version) key.
        for (snap, lap) in &snaps {
            svc.submit(snap, lap, pair_rhs(16, 0, 8)).unwrap();
        }
        for (snap, lap) in &snaps {
            let snap2 = Arc::clone(snap);
            svc.submit(&snap2, lap, pair_rhs(16, 1, 9)).unwrap();
        }
        assert_eq!(svc.pending(), 24);
        let round = svc.drain();
        assert_eq!(round.groups, snaps.len(), "one group per snapshot version");
        assert_eq!(round.served.len(), 24);
        assert!(round.all_converged());
    }

    #[test]
    fn pending_counter_tracks_submit_and_drain() {
        let engine = SnapshotEngine::setup(&ring(16), &SetupConfig::default()).unwrap();
        let snap = engine.snapshot();
        let lap = snap.laplacian_arc();
        let svc = ConcurrentSolveService::new(SolveConfig::default());
        assert_eq!(svc.pending(), 0);
        for k in 1..=5 {
            svc.submit(&snap, &lap, pair_rhs(16, k, k + 8)).unwrap();
            assert_eq!(svc.pending(), k);
        }
        let round = svc.drain();
        assert_eq!(round.served.len(), 5);
        assert_eq!(svc.pending(), 0);
        // The round's per-request histogram saw exactly the served count.
        assert_eq!(round.request_latency.count(), 5);
        assert_eq!(svc.stats().request_latency.count(), 5);
        // Refills after a drain.
        svc.submit(&snap, &lap, pair_rhs(16, 2, 11)).unwrap();
        assert_eq!(svc.pending(), 1);
    }

    #[test]
    fn concurrent_submissions_all_get_answered() {
        let engine = SnapshotEngine::setup(&ring(20), &SetupConfig::default()).unwrap();
        let snap = engine.snapshot();
        let lap = snap.laplacian_arc();
        let svc = ConcurrentSolveService::new(SolveConfig::default());
        std::thread::scope(|s| {
            for t in 0..4 {
                let (svc, snap, lap) = (&svc, &snap, &lap);
                s.spawn(move || {
                    for k in 0..8 {
                        svc.submit(snap, lap, pair_rhs(20, (t + k) % 20, (t + k + 7) % 20))
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(svc.pending(), 32);
        let round = svc.drain();
        assert_eq!(round.served.len(), 32);
        assert!(round.all_converged());
        // Tickets are a permutation of 0..32, reported sorted.
        let tickets: Vec<u64> = round.served.iter().map(|s| s.ticket.0).collect();
        assert_eq!(tickets, (0..32).collect::<Vec<u64>>());
    }
}
