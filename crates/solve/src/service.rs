//! The solve service: epoch-keyed preconditioner cache + batched PCG.

use ingrass::{InGrassEngine, InGrassError, PhaseTimer, SparsifierPrecond, SparsifierSnapshot};
use ingrass_graph::{kruskal_tree, TreeObjective, TreePrecond};
use ingrass_linalg::{pcg, CgOptions, CgResult, CsrMatrix, JacobiPrecond, Preconditioner};
use std::fmt;

/// How the service turns the live sparsifier into a preconditioner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrecondStrategy {
    /// Always factor: grounded sparse Cholesky of `L_H`
    /// ([`InGrassEngine::preconditioner`]). Exact for the sparsifier —
    /// the strongest preconditioner this crate offers.
    Cholesky,
    /// Diagonal of `L_H` (weighted sparsifier degrees). Near-zero build
    /// cost, weakest preconditioner; the floor for very large graphs.
    Jacobi,
    /// Exact `O(n)` solver of a max-weight spanning tree of the sparsifier
    /// (the classic support-graph preconditioner).
    Tree,
    /// Cholesky while the sparsifier has at most `max_cholesky_nodes`
    /// nodes, spanning-tree above — the huge-case fallback the service
    /// picks automatically.
    Auto {
        /// Node-count ceiling for the Cholesky path.
        max_cholesky_nodes: usize,
    },
}

impl Default for PrecondStrategy {
    fn default() -> Self {
        PrecondStrategy::Auto {
            max_cholesky_nodes: 200_000,
        }
    }
}

/// Which preconditioner a [`SolveReport`] actually used (the resolution of
/// [`PrecondStrategy::Auto`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrecondKind {
    /// Grounded sparse Cholesky of the sparsifier Laplacian.
    Cholesky,
    /// Sparsifier diagonal.
    Jacobi,
    /// Spanning tree of the sparsifier.
    Tree,
}

impl fmt::Display for PrecondKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrecondKind::Cholesky => write!(f, "cholesky"),
            PrecondKind::Jacobi => write!(f, "jacobi"),
            PrecondKind::Tree => write!(f, "tree"),
        }
    }
}

enum PrecondImpl {
    Cholesky(SparsifierPrecond),
    Jacobi(JacobiPrecond),
    Tree(TreePrecond),
}

impl Preconditioner for PrecondImpl {
    fn dim(&self) -> usize {
        match self {
            PrecondImpl::Cholesky(p) => p.dim(),
            PrecondImpl::Jacobi(p) => p.dim(),
            PrecondImpl::Tree(p) => p.dim(),
        }
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        match self {
            PrecondImpl::Cholesky(p) => p.apply(r, z),
            PrecondImpl::Jacobi(p) => p.apply(r, z),
            PrecondImpl::Tree(p) => p.apply(r, z),
        }
    }
}

struct CachedPrecond {
    /// Which engine instance the factor was extracted from — epoch alone
    /// cannot distinguish two different engines that both sit at epoch 0.
    engine_id: u64,
    epoch: u64,
    kind: PrecondKind,
    factor_nnz: usize,
    imp: PrecondImpl,
}

/// Errors of the solve service.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// An operand's dimension disagrees with the engine's node count.
    Dimension {
        /// Expected dimension (the engine's node count).
        expected: usize,
        /// Dimension found.
        found: usize,
        /// Which operand was wrong.
        what: &'static str,
    },
    /// Extracting the preconditioner from the engine failed.
    Precondition(String),
    /// The admission queue is at its [`SolveConfig::max_pending`] cap;
    /// the request was rejected without being queued.
    QueueFull {
        /// The configured cap the queue is sitting at.
        max_pending: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Dimension {
                expected,
                found,
                what,
            } => write!(f, "{what} has dimension {found}, engine expects {expected}"),
            SolveError::Precondition(msg) => write!(f, "preconditioner extraction failed: {msg}"),
            SolveError::QueueFull { max_pending } => {
                write!(f, "admission queue full ({max_pending} pending)")
            }
        }
    }
}

impl std::error::Error for SolveError {}

impl From<InGrassError> for SolveError {
    fn from(e: InGrassError) -> Self {
        SolveError::Precondition(e.to_string())
    }
}

/// Folds solve-service errors into the workspace-level error (the impl
/// lives here, next to [`SolveError`], because of the orphan rule — see
/// [`ingrass::IngrassError`]).
impl From<SolveError> for ingrass::IngrassError {
    fn from(e: SolveError) -> Self {
        ingrass::IngrassError::Solve(e.to_string())
    }
}

/// Configuration of a [`SolveService`].
#[derive(Debug, Clone)]
pub struct SolveConfig {
    /// Preconditioner extraction strategy (default [`PrecondStrategy::Auto`]).
    pub strategy: PrecondStrategy,
    /// PCG options; the default targets `1e-8` relative residual with a
    /// 20 000-iteration budget (looser than [`CgOptions::default`] — solve
    /// traffic wants throughput, estimators want the last digits).
    pub cg: CgOptions,
    /// Worker threads for multi-RHS batches (`None` = the ambient
    /// `ingrass-par` width). Results are bit-identical at any width.
    pub threads: Option<usize>,
    /// Admission cap for [`crate::ConcurrentSolveService`]: once this many
    /// requests are pending, further submissions are rejected with
    /// [`SolveError::QueueFull`] instead of growing the queue without
    /// bound. `None` (the default, and the only mode the single-caller
    /// [`SolveService`] ever sees) admits everything.
    pub max_pending: Option<usize>,
}

impl Default for SolveConfig {
    fn default() -> Self {
        SolveConfig {
            strategy: PrecondStrategy::default(),
            cg: CgOptions::default()
                .with_rel_tol(1e-8)
                .with_max_iters(20_000),
            threads: None,
            max_pending: None,
        }
    }
}

/// Lifetime counters of a [`SolveService`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Preconditioner (re)builds performed.
    pub factorizations: usize,
    /// Batches served from the cached factorization.
    pub cache_hits: usize,
    /// `solve_batch` calls served (engine-cached and snapshot paths).
    pub batches: usize,
    /// Batches served against an immutable snapshot
    /// ([`SolveService::solve_snapshot_batch`]) — these never touch the
    /// factorization cache.
    pub snapshot_batches: usize,
    /// Individual right-hand sides solved.
    pub solves: usize,
    /// PCG iterations summed over all solves.
    pub iterations_total: usize,
}

/// What one [`SolveService::solve_batch`] call did.
#[derive(Debug, Clone)]
pub struct SolveReport {
    /// Engine epoch the serving preconditioner belongs to.
    pub epoch: u64,
    /// Whether this call had to (re)build the preconditioner (`false` =
    /// warm cache).
    pub refactorized: bool,
    /// The preconditioner kind that served the batch.
    pub precond: PrecondKind,
    /// Seconds spent building the preconditioner (0 on a warm call).
    pub factor_seconds: f64,
    /// Stored entries of the serving factor (0 for Jacobi/tree).
    pub factor_nnz: usize,
    /// Seconds spent in PCG for the whole batch.
    pub solve_seconds: f64,
    /// Per-right-hand-side PCG outcomes, in batch order.
    pub results: Vec<CgResult>,
}

impl SolveReport {
    /// Largest per-RHS iteration count in the batch.
    pub fn max_iterations(&self) -> usize {
        self.results.iter().map(|r| r.iterations).max().unwrap_or(0)
    }

    /// Iterations summed over the batch.
    pub fn total_iterations(&self) -> usize {
        self.results.iter().map(|r| r.iterations).sum()
    }

    /// Whether every right-hand side reached the tolerance.
    pub fn all_converged(&self) -> bool {
        self.results.iter().all(|r| r.converged)
    }
}

/// A Laplacian solve service preconditioned by a live inGRASS sparsifier.
///
/// The service owns a one-slot factorization cache keyed by the engine
/// instance and its ledger epoch ([`InGrassEngine::instance_id`],
/// [`InGrassEngine::epoch`]): ordinary update batches leave the epoch
/// unchanged, so consecutive solves reuse the factor; a drift-triggered
/// re-setup bumps the epoch — and handing the service a different engine
/// changes the instance — so the next solve rebuilds automatically. See
/// the [crate-level docs](crate) for the full story.
///
/// The engine is borrowed *shared* and only for the duration of a single
/// call: between solves the caller is free to read engine stats
/// ([`InGrassEngine::epoch`], [`InGrassEngine::resetups`]) or apply update
/// batches (`tests/solve_service.rs` pins this). For serving threads that
/// must not touch the engine at all,
/// [`SolveService::solve_snapshot_batch`] answers against an immutable
/// [`SparsifierSnapshot`] instead.
pub struct SolveService {
    cfg: SolveConfig,
    cache: Option<CachedPrecond>,
    stats: SolveStats,
}

impl fmt::Debug for SolveService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SolveService")
            .field("cfg", &self.cfg)
            .field("cached_epoch", &self.cache.as_ref().map(|c| c.epoch))
            .field("stats", &self.stats)
            .finish()
    }
}

impl SolveService {
    /// A service with the given configuration.
    pub fn new(cfg: SolveConfig) -> Self {
        SolveService {
            cfg,
            cache: None,
            stats: SolveStats::default(),
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }

    /// The epoch of the cached factorization, if one is live.
    pub fn cached_epoch(&self) -> Option<u64> {
        self.cache.as_ref().map(|c| c.epoch)
    }

    /// Drops the cached factorization; the next solve rebuilds.
    pub fn invalidate(&mut self) {
        self.cache = None;
    }

    /// Solves `L_G x = b` for one right-hand side. Convenience wrapper over
    /// [`SolveService::solve_batch`].
    ///
    /// # Errors
    /// As for [`SolveService::solve_batch`].
    pub fn solve(
        &mut self,
        engine: &InGrassEngine,
        laplacian: &CsrMatrix,
        b: &[f64],
    ) -> crate::Result<(Vec<f64>, SolveReport)> {
        let (mut xs, report) = self.solve_batch(engine, laplacian, &[b.to_vec()])?;
        Ok((xs.pop().expect("one rhs in, one solution out"), report))
    }

    /// Solves `L_G xᵢ = bᵢ` for a batch of right-hand sides with PCG,
    /// preconditioned by the (cached) sparsifier factorization.
    ///
    /// `laplacian` is the Laplacian of the **original** graph the engine's
    /// sparsifier approximates — the caller keeps it current as the graph
    /// churns. Right-hand sides are interpreted as node current injections
    /// and projected onto `1⊥` (a Laplacian system is only consistent for
    /// zero-sum injections); solutions are zero-mean potentials.
    ///
    /// The cache policy: if the cached factor came from this engine
    /// instance ([`InGrassEngine::instance_id`]) at its current
    /// [`InGrassEngine::epoch`], the batch is served warm (no
    /// factorization); otherwise — epoch moved, or a different engine is
    /// presented — the preconditioner is rebuilt from the live sparsifier
    /// first. Non-convergence is reported per-RHS in
    /// [`SolveReport::results`], not as an error.
    ///
    /// # Errors
    /// [`SolveError::Dimension`] on operand/engine shape mismatch;
    /// [`SolveError::Precondition`] if factorization fails.
    pub fn solve_batch(
        &mut self,
        engine: &InGrassEngine,
        laplacian: &CsrMatrix,
        rhss: &[Vec<f64>],
    ) -> crate::Result<(Vec<Vec<f64>>, SolveReport)> {
        let n = engine.sparsifier().num_nodes();
        check_dims(n, laplacian, rhss)?;

        let (refactorized, factor_seconds) = self.ensure_precond(engine)?;
        let cached = self.cache.as_ref().expect("ensure_precond populated cache");

        let threads = self.cfg.threads.unwrap_or_else(ingrass_par::num_threads);
        let (xs, results, solve_seconds) =
            pcg_batch(laplacian, rhss, &cached.imp, &self.cfg.cg, threads);
        self.stats.batches += 1;
        self.stats.solves += rhss.len();
        self.stats.iterations_total += results.iter().map(|r| r.iterations).sum::<usize>();
        let report = SolveReport {
            epoch: cached.epoch,
            refactorized,
            precond: cached.kind,
            factor_seconds,
            factor_nnz: cached.factor_nnz,
            solve_seconds,
            results,
        };
        Ok((xs, report))
    }

    /// Solves `L_G xᵢ = bᵢ` against an immutable [`SparsifierSnapshot`]:
    /// the preconditioner is the snapshot's own grounded Cholesky factor,
    /// so this path **borrows no engine at all** and never touches the
    /// factorization cache — the narrow-borrow entry point for serving
    /// threads that hold a snapshot while a writer mutates the engine
    /// elsewhere.
    ///
    /// `laplacian` is the original graph's Laplacian *as of the state the
    /// caller wants answered* — typically the graph matching the
    /// snapshot's version (the concurrent serving layer keeps the pair
    /// together). Right-hand sides are projected onto `1⊥` exactly as in
    /// [`SolveService::solve_batch`].
    ///
    /// The returned report carries the snapshot's epoch; `refactorized` is
    /// always `false` and `factor_seconds` 0 (the factor was paid for at
    /// publish time by the [`ingrass::SnapshotEngine`] — usually as a
    /// handful of rank-1 up/downdates patching the previous factor rather
    /// than a from-scratch refactorization, which is what keeps publish
    /// latency flat under sustained churn).
    ///
    /// # Errors
    /// [`SolveError::Dimension`] on operand/snapshot shape mismatch.
    pub fn solve_snapshot_batch(
        &mut self,
        snapshot: &SparsifierSnapshot,
        laplacian: &CsrMatrix,
        rhss: &[Vec<f64>],
    ) -> crate::Result<(Vec<Vec<f64>>, SolveReport)> {
        let n = snapshot.num_nodes();
        check_dims(n, laplacian, rhss)?;
        let threads = self.cfg.threads.unwrap_or_else(ingrass_par::num_threads);
        let (xs, results, solve_seconds) = pcg_batch(
            laplacian,
            rhss,
            snapshot.preconditioner(),
            &self.cfg.cg,
            threads,
        );
        self.stats.batches += 1;
        self.stats.snapshot_batches += 1;
        self.stats.solves += rhss.len();
        self.stats.iterations_total += results.iter().map(|r| r.iterations).sum::<usize>();
        let report = SolveReport {
            epoch: snapshot.epoch(),
            refactorized: false,
            precond: crate::SNAPSHOT_PRECOND,
            factor_seconds: 0.0,
            factor_nnz: snapshot.preconditioner().factor_nnz(),
            solve_seconds,
            results,
        };
        Ok((xs, report))
    }

    /// Makes the cache current for the engine's epoch. Returns
    /// `(refactorized, factor_seconds)`.
    fn ensure_precond(&mut self, engine: &InGrassEngine) -> crate::Result<(bool, f64)> {
        let epoch = engine.epoch();
        let engine_id = engine.instance_id();
        if let Some(c) = &self.cache {
            if c.engine_id == engine_id && c.epoch == epoch {
                self.stats.cache_hits += 1;
                return Ok((false, 0.0));
            }
        }
        let timer = PhaseTimer::start();
        let n = engine.sparsifier().num_nodes();
        let kind = match self.cfg.strategy {
            PrecondStrategy::Cholesky => PrecondKind::Cholesky,
            PrecondStrategy::Jacobi => PrecondKind::Jacobi,
            PrecondStrategy::Tree => PrecondKind::Tree,
            PrecondStrategy::Auto { max_cholesky_nodes } => {
                if n <= max_cholesky_nodes {
                    PrecondKind::Cholesky
                } else {
                    PrecondKind::Tree
                }
            }
        };
        let (imp, factor_nnz) = match kind {
            PrecondKind::Cholesky => {
                let p = engine.preconditioner()?;
                let nnz = p.factor_nnz();
                (PrecondImpl::Cholesky(p), nnz)
            }
            PrecondKind::Jacobi => {
                let h = engine.sparsifier();
                let mut diag = vec![0.0; n];
                for (_, e) in h.edges_iter() {
                    diag[e.u.index()] += e.weight;
                    diag[e.v.index()] += e.weight;
                }
                (PrecondImpl::Jacobi(JacobiPrecond::from_diagonal(diag)), 0)
            }
            PrecondKind::Tree => {
                let snapshot = engine.sparsifier_graph();
                let tree = kruskal_tree(&snapshot, TreeObjective::MaxWeight)
                    .map_err(|e| SolveError::Precondition(e.to_string()))?;
                (PrecondImpl::Tree(TreePrecond::new(&tree.tree)), 0)
            }
        };
        let factor_seconds = timer.total().as_secs_f64();
        self.cache = Some(CachedPrecond {
            engine_id,
            epoch,
            kind,
            factor_nnz,
            imp,
        });
        self.stats.factorizations += 1;
        Ok((true, factor_seconds))
    }
}

/// Dimension validation shared by every solve entry point (including the
/// concurrent service's admission path).
pub(crate) fn check_dims(n: usize, laplacian: &CsrMatrix, rhss: &[Vec<f64>]) -> crate::Result<()> {
    if laplacian.n_rows() != n || laplacian.n_cols() != n {
        return Err(SolveError::Dimension {
            expected: n,
            found: laplacian.n_rows().max(laplacian.n_cols()),
            what: "laplacian",
        });
    }
    for b in rhss {
        if b.len() != n {
            return Err(SolveError::Dimension {
                expected: n,
                found: b.len(),
                what: "right-hand side",
            });
        }
    }
    Ok(())
}

/// One deflated, `1⊥`-projected PCG solve from a zero initial guess
/// (b ← b − mean(b)·1 for Laplacian consistency, constant deflation every
/// iteration) — the single-solve recipe every serving path shares: the
/// cached-engine batch, the snapshot batch, and the concurrent service's
/// per-request drain.
pub(crate) fn solve_projected<M>(
    laplacian: &CsrMatrix,
    rhs: &[f64],
    precond: &M,
    cg: &CgOptions,
) -> (Vec<f64>, CgResult)
where
    M: Preconditioner + ?Sized,
{
    let n = laplacian.n_rows();
    let mean = rhs.iter().sum::<f64>() / n.max(1) as f64;
    let projected: Vec<f64> = rhs.iter().map(|v| v - mean).collect();
    let ones = vec![1.0; n];
    let mut x = vec![0.0; n];
    let result = pcg(laplacian, &projected, &mut x, precond, Some(&ones), cg);
    (x, result)
}

/// [`solve_projected`] over a batch, distributed across `threads` workers
/// (bit-identical to the serial loop at any width — see `ingrass-par`).
/// Returns the solutions, the per-RHS outcomes, and the solve wall seconds.
fn pcg_batch<M>(
    laplacian: &CsrMatrix,
    rhss: &[Vec<f64>],
    precond: &M,
    cg: &CgOptions,
    threads: usize,
) -> (Vec<Vec<f64>>, Vec<CgResult>, f64)
where
    M: Preconditioner + Sync + ?Sized,
{
    let timer = PhaseTimer::start();
    let solved = ingrass_par::par_map_with(threads, rhss, |b| {
        solve_projected(laplacian, b, precond, cg)
    });
    let solve_seconds = timer.total().as_secs_f64();
    let mut xs = Vec::with_capacity(solved.len());
    let mut results = Vec::with_capacity(solved.len());
    for (x, r) in solved {
        xs.push(x);
        results.push(r);
    }
    (xs, results, solve_seconds)
}

/// Plain (unpreconditioned) CG on a Laplacian system, with the same
/// consistency projection and constant-deflation the service applies — the
/// fair baseline the benches and acceptance tests compare
/// [`SolveService::solve_batch`] against.
pub fn unpreconditioned_cg(
    laplacian: &CsrMatrix,
    b: &[f64],
    opts: &CgOptions,
) -> (Vec<f64>, CgResult) {
    let n = laplacian.n_rows();
    assert_eq!(b.len(), n, "unpreconditioned_cg: b dimension");
    let mean = b.iter().sum::<f64>() / n.max(1) as f64;
    let projected: Vec<f64> = b.iter().map(|v| v - mean).collect();
    let ones = vec![1.0; n];
    let mut x = vec![0.0; n];
    let pre = ingrass_linalg::IdentityPrecond::new(n);
    let res = ingrass_linalg::pcg(laplacian, &projected, &mut x, &pre, Some(&ones), opts);
    (x, res)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingrass::{SetupConfig, UpdateConfig, UpdateOp};
    use ingrass_baselines::GrassSparsifier;
    use ingrass_gen::{grid_2d, WeightModel};
    use ingrass_graph::Graph;

    fn fixture(side: usize, seed: u64) -> (Graph, InGrassEngine) {
        let g = grid_2d(side, side, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, seed);
        let h0 = GrassSparsifier::default()
            .by_offtree_density(&g, 0.10)
            .unwrap()
            .graph;
        let engine = InGrassEngine::setup(&h0, &SetupConfig::default()).unwrap();
        (g, engine)
    }

    fn pair_rhs(n: usize, u: usize, v: usize) -> Vec<f64> {
        let mut b = vec![0.0; n];
        b[u] = 1.0;
        b[v] = -1.0;
        b
    }

    #[test]
    fn cold_then_warm_cache_behaviour() {
        let (g, engine) = fixture(10, 1);
        let l = g.laplacian();
        let n = g.num_nodes();
        let mut svc = SolveService::new(SolveConfig::default());
        let (_, r1) = svc.solve(&engine, &l, &pair_rhs(n, 0, n - 1)).unwrap();
        assert!(r1.refactorized);
        assert_eq!(r1.precond, PrecondKind::Cholesky);
        assert!(r1.all_converged());
        let (_, r2) = svc.solve(&engine, &l, &pair_rhs(n, 3, 77)).unwrap();
        assert!(!r2.refactorized);
        assert_eq!(r2.factor_seconds, 0.0);
        assert_eq!(svc.stats().factorizations, 1);
        assert_eq!(svc.stats().cache_hits, 1);
        assert_eq!(svc.stats().solves, 2);
    }

    #[test]
    fn batch_solutions_match_single_solves() {
        let (g, engine) = fixture(8, 2);
        let l = g.laplacian();
        let n = g.num_nodes();
        let rhss = vec![pair_rhs(n, 0, 9), pair_rhs(n, 5, 40), pair_rhs(n, 11, 62)];
        let mut svc = SolveService::new(SolveConfig::default());
        let (xs, report) = svc.solve_batch(&engine, &l, &rhss).unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(report.results.len(), 3);
        let mut svc2 = SolveService::new(SolveConfig::default());
        for (b, x_batch) in rhss.iter().zip(&xs) {
            let (x_single, _) = svc2.solve(&engine, &l, b).unwrap();
            for (a, b) in x_single.iter().zip(x_batch) {
                assert_eq!(a, b, "batch and single solves must agree bitwise");
            }
        }
    }

    #[test]
    fn solutions_satisfy_the_laplacian_equation() {
        let (g, engine) = fixture(9, 3);
        let l = g.laplacian();
        let n = g.num_nodes();
        let b = pair_rhs(n, 2, 70);
        let mut svc = SolveService::new(SolveConfig::default());
        let (x, report) = svc.solve(&engine, &l, &b).unwrap();
        assert!(report.all_converged());
        let r = l.matvec_alloc(&x);
        let err: f64 = r
            .iter()
            .zip(&b)
            .map(|(ri, bi)| (ri - bi).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-6, "residual {err}");
        // Zero-mean output (deflated solve).
        let mean: f64 = x.iter().sum::<f64>() / n as f64;
        assert!(mean.abs() < 1e-8);
    }

    #[test]
    fn a_different_engine_at_the_same_epoch_is_not_served_the_old_factor() {
        let (g, engine_a) = fixture(10, 40);
        let l = g.laplacian();
        let n = g.num_nodes();
        let mut svc = SolveService::new(SolveConfig::default());
        svc.solve(&engine_a, &l, &pair_rhs(n, 0, 9)).unwrap();
        assert_eq!(svc.stats().factorizations, 1);
        // A fresh setup over the same graph: also at epoch 0, but a
        // different engine — its sparsifier is not the cached one.
        let (_, engine_b) = fixture(10, 41);
        assert_eq!(engine_b.epoch(), 0);
        assert_ne!(engine_a.instance_id(), engine_b.instance_id());
        let (_, r) = svc.solve(&engine_b, &l, &pair_rhs(n, 0, 9)).unwrap();
        assert!(r.refactorized, "stale cross-engine cache was served");
        assert_eq!(svc.stats().factorizations, 2);
        // And going back to engine A refactorizes again (one-slot cache).
        let (_, r) = svc.solve(&engine_a, &l, &pair_rhs(n, 0, 9)).unwrap();
        assert!(r.refactorized);
    }

    #[test]
    fn epoch_bump_invalidates_the_cache() {
        let (g, mut engine) = fixture(10, 4);
        let l = g.laplacian();
        let n = g.num_nodes();
        let mut svc = SolveService::new(SolveConfig::default());
        svc.solve(&engine, &l, &pair_rhs(n, 0, 50)).unwrap();
        assert_eq!(svc.cached_epoch(), Some(0));
        // Manual re-setup bumps the epoch; next solve must refactorize.
        engine.resetup().unwrap();
        assert_eq!(engine.epoch(), 1);
        let (_, r) = svc.solve(&engine, &l, &pair_rhs(n, 0, 50)).unwrap();
        assert!(r.refactorized);
        assert_eq!(r.epoch, 1);
        assert_eq!(svc.stats().factorizations, 2);
    }

    #[test]
    fn non_resetup_update_batch_keeps_the_cache_warm() {
        let (g, mut engine) = fixture(10, 5);
        let l = g.laplacian();
        let n = g.num_nodes();
        let mut svc = SolveService::new(SolveConfig::default());
        svc.solve(&engine, &l, &pair_rhs(n, 1, 42)).unwrap();
        let r = engine
            .apply_batch(
                &[UpdateOp::Insert {
                    u: 0,
                    v: n - 1,
                    weight: 0.7,
                }],
                &UpdateConfig::default(),
            )
            .unwrap();
        assert!(r.resetup.is_none());
        let (_, warm) = svc.solve(&engine, &l, &pair_rhs(n, 1, 42)).unwrap();
        assert!(
            !warm.refactorized,
            "insert batch must not invalidate the cache"
        );
    }

    #[test]
    fn strategies_all_converge() {
        let (g, engine) = fixture(8, 6);
        let l = g.laplacian();
        let n = g.num_nodes();
        for strategy in [
            PrecondStrategy::Cholesky,
            PrecondStrategy::Jacobi,
            PrecondStrategy::Tree,
            PrecondStrategy::Auto {
                max_cholesky_nodes: 1,
            },
        ] {
            let mut svc = SolveService::new(SolveConfig {
                strategy,
                ..Default::default()
            });
            let (_, r) = svc.solve(&engine, &l, &pair_rhs(n, 0, n / 2)).unwrap();
            assert!(r.all_converged(), "{strategy:?} failed: {r:?}");
            if let PrecondStrategy::Auto { .. } = strategy {
                assert_eq!(r.precond, PrecondKind::Tree, "tiny ceiling must fall back");
            }
        }
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let (g, engine) = fixture(6, 7);
        let l = g.laplacian();
        let n = g.num_nodes();
        let mut svc = SolveService::new(SolveConfig::default());
        let small = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        assert!(matches!(
            svc.solve(&engine, &small, &pair_rhs(n, 0, 1)),
            Err(SolveError::Dimension {
                what: "laplacian",
                ..
            })
        ));
        assert!(matches!(
            svc.solve(&engine, &l, &[1.0, -1.0]),
            Err(SolveError::Dimension {
                what: "right-hand side",
                ..
            })
        ));
    }

    #[test]
    fn empty_batch_is_served() {
        let (g, engine) = fixture(6, 8);
        let l = g.laplacian();
        let mut svc = SolveService::new(SolveConfig::default());
        let (xs, report) = svc.solve_batch(&engine, &l, &[]).unwrap();
        assert!(xs.is_empty());
        assert!(report.results.is_empty());
        assert_eq!(report.max_iterations(), 0);
        // Building the preconditioner still happened (the cache is primed).
        assert_eq!(svc.stats().factorizations, 1);
    }

    #[test]
    fn inconsistent_rhs_is_projected() {
        let (g, engine) = fixture(6, 9);
        let l = g.laplacian();
        let n = g.num_nodes();
        // Constant offset on top of a valid injection pair.
        let b: Vec<f64> = pair_rhs(n, 0, n - 1).iter().map(|v| v + 3.0).collect();
        let mut svc = SolveService::new(SolveConfig::default());
        let (x, r) = svc.solve(&engine, &l, &b).unwrap();
        assert!(r.all_converged());
        let lx = l.matvec_alloc(&x);
        // The solution solves the projected system.
        assert!((lx[0] - 1.0).abs() < 1e-6 && (lx[n - 1] + 1.0).abs() < 1e-6);
    }
}
