//! Sparsifier-preconditioned Laplacian solves — where the sparsifier pays
//! rent.
//!
//! The inGRASS engine maintains a sparsifier `H` with a bounded relative
//! condition number `κ(L_G, L_H)` against the evolving original graph `G`.
//! This crate closes the loop: it extracts a preconditioner from the live
//! sparsifier (a grounded sparse Cholesky factorization of `L_H`, with
//! Jacobi/spanning-tree fallbacks for huge cases), serves **batched
//! multi-RHS PCG solves on the original Laplacian** through
//! [`SolveService::solve_batch`], and caches the factorization keyed by the
//! engine's ledger epoch — reused across update batches, invalidated
//! automatically when a drift-triggered re-setup starts a new epoch.
//!
//! Since the factor is exact for `L_H`, preconditioned CG on `L_G`
//! converges in `O(√κ(L_H⁻¹L_G))` iterations — the very quantity the
//! incremental update phase keeps small — instead of the `O(√κ(L_G))` of
//! plain CG.
//!
//! For concurrent serving, [`ConcurrentSolveService`] pairs with the
//! engine's snapshot layer (`ingrass::SnapshotEngine`): reader threads
//! submit right-hand sides tagged with the immutable snapshot they should
//! be answered against, submissions against one snapshot coalesce into a
//! multi-RHS admission group, and `drain` answers every pending group on
//! the `ingrass-par` worker pool — all without ever borrowing the engine,
//! so a writer keeps applying update batches throughout.
//! [`SolveService::solve_snapshot_batch`] is the single-caller form of the
//! same snapshot-isolated path.
//!
//! # Example
//!
//! ```
//! use ingrass::{InGrassEngine, SetupConfig, UpdateConfig};
//! use ingrass_solve::{SolveConfig, SolveService};
//! use ingrass_baselines::GrassSparsifier;
//! use ingrass_gen::{grid_2d, WeightModel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = grid_2d(12, 12, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 7);
//! let h0 = GrassSparsifier::default().by_offtree_density(&g, 0.10)?;
//! let mut engine = InGrassEngine::setup(&h0.graph, &SetupConfig::default())?;
//!
//! let mut service = SolveService::new(SolveConfig::default());
//! let l_g = g.laplacian();
//! let mut b = vec![0.0; g.num_nodes()];
//! b[0] = 1.0;
//! b[143] = -1.0;
//!
//! // Cold solve: factors the sparsifier, then runs PCG on L_G.
//! let (x, report) = service.solve(&engine, &l_g, &b)?;
//! assert!(report.refactorized);
//! assert!(report.results[0].converged);
//! assert!((x[0] - x[143]) > 0.0); // positive effective resistance
//!
//! // Warm solve: same epoch → the cached factor is reused.
//! let (_, report) = service.solve(&engine, &l_g, &b)?;
//! assert!(!report.refactorized);
//! assert_eq!(service.stats().factorizations, 1);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod concurrent;
mod service;

pub use concurrent::{
    ConcurrentSolveService, ConcurrentSolveStats, DrainReport, Served, Ticket, SNAPSHOT_PRECOND,
};
pub use service::{
    unpreconditioned_cg, PrecondKind, PrecondStrategy, SolveConfig, SolveError, SolveReport,
    SolveService, SolveStats,
};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SolveError>;
