//! Off-tree spectral-distortion statistics.

use ingrass_graph::{Graph, TreePathResistance, TreeResult};

/// Summary statistics of off-tree edge spectral distortions
/// (`w(e) · R_T(e)` — paper Lemma 3.2) for a graph w.r.t. a spanning tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistortionStats {
    /// Number of off-tree edges measured.
    pub count: usize,
    /// Largest distortion.
    pub max: f64,
    /// Mean distortion.
    pub mean: f64,
    /// Total distortion (= total off-tree stretch, the LSST quality
    /// functional).
    pub total: f64,
}

/// Computes distortion statistics for the off-tree edges of `g` w.r.t. the
/// spanning tree in `tree`.
///
/// # Panics
/// Panics if `tree.in_tree.len() != g.num_edges()`.
pub fn offtree_distortion_stats(g: &Graph, tree: &TreeResult) -> DistortionStats {
    assert_eq!(tree.in_tree.len(), g.num_edges(), "edge mask mismatch");
    let oracle = TreePathResistance::new(g, &tree.tree);
    let mut count = 0usize;
    let mut max: f64 = 0.0;
    let mut total = 0.0;
    for (i, e) in g.edges().iter().enumerate() {
        if tree.in_tree[i] {
            continue;
        }
        let d = oracle.distortion(e.u, e.v, e.weight);
        count += 1;
        total += d;
        max = max.max(d);
    }
    DistortionStats {
        count,
        max,
        mean: if count > 0 { total / count as f64 } else { 0.0 },
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingrass_gen::{grid_2d, WeightModel};
    use ingrass_graph::{kruskal_tree, low_stretch_tree, TreeObjective};

    #[test]
    fn tree_only_graph_has_no_offtree_distortion() {
        let g = grid_2d(5, 5, WeightModel::Unit, 0);
        let t = kruskal_tree(&g, TreeObjective::MaxWeight).unwrap();
        let tree_graph = g.edge_subgraph(&t.in_tree);
        let t2 = kruskal_tree(&tree_graph, TreeObjective::MaxWeight).unwrap();
        let stats = offtree_distortion_stats(&tree_graph, &t2);
        assert_eq!(stats.count, 0);
        assert_eq!(stats.total, 0.0);
        assert_eq!(stats.mean, 0.0);
    }

    #[test]
    fn distortion_stats_are_consistent() {
        let g = grid_2d(10, 10, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 1);
        let t = kruskal_tree(&g, TreeObjective::MaxWeight).unwrap();
        let stats = offtree_distortion_stats(&g, &t);
        assert_eq!(stats.count, g.num_edges() - 99);
        assert!(stats.max >= stats.mean);
        assert!((stats.mean * stats.count as f64 - stats.total).abs() < 1e-9);
        // Off-tree distortion of any edge is ≥ its own-cycle minimum … just
        // sanity: all positive.
        assert!(stats.total > 0.0);
    }

    #[test]
    fn low_stretch_tree_reduces_total_distortion_vs_bfs_like_trees() {
        let g = grid_2d(20, 20, WeightModel::Unit, 2);
        let kruskal = kruskal_tree(&g, TreeObjective::MaxWeight).unwrap();
        let lsst = low_stretch_tree(&g, 3).unwrap();
        let s_kruskal = offtree_distortion_stats(&g, &kruskal);
        let s_lsst = offtree_distortion_stats(&g, &lsst);
        // On unit grids Kruskal's tie-broken tree is comb-like (bad);
        // ball-growing should beat or at least match it.
        assert!(
            s_lsst.total <= 1.2 * s_kruskal.total,
            "lsst {} vs kruskal {}",
            s_lsst.total,
            s_kruskal.total
        );
    }
}
