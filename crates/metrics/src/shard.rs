//! Per-shard work statistics for the sharded multi-writer engine.
//!
//! A [`ShardStats`] folds the per-shard update-latency accumulators into
//! one mergeable summary and reports the load-balance figure the bench
//! gates care about: the imbalance ratio `max shard work / mean shard
//! work`, measured in routed operations so it is deterministic even on a
//! single-CPU CI container where wall-clock ratios are meaningless.

use crate::{LatencyHistogram, LatencySummary};

/// Aggregated view of how work spread across the shards of a sharded
/// engine, surfaced through `PublishReport` and the perf harness JSON.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ShardStats {
    /// Number of shards the engine is running.
    pub shards: usize,
    /// All per-shard update batch latencies merged into one summary
    /// (so `total_seconds` is the *summed* per-shard update wall).
    pub update: LatencySummary,
    /// Wall-clock span of each fenced parallel apply phase (fan-out →
    /// epoch fence), one sample per batch that routed shard work. On a
    /// multi-core host this tracks the *slowest* shard of each batch;
    /// `update.total_seconds() / parallel_update.total_seconds()` is the
    /// realized shard-parallel speedup (≈ 1 on a single-CPU runner).
    pub parallel_update: LatencySummary,
    /// The same update latencies as a log-scale histogram, so callers can
    /// read tail percentiles (`p99`) and not just min/mean/max.
    pub update_histogram: LatencyHistogram,
    /// Largest number of operations any single shard has applied.
    pub max_shard_ops: u64,
    /// Total operations routed to shards (excludes boundary ops).
    pub total_shard_ops: u64,
    /// `max_shard_ops / mean_shard_ops`; `1.0` when no work has been
    /// routed yet. Perfectly balanced work gives 1.0, all work on one
    /// of `S` shards gives `S`.
    pub imbalance_ratio: f64,
    /// Edges currently held by the coordinator's boundary graph.
    pub boundary_edges: usize,
    /// Distinct endpoints of boundary edges (excluding the ground node).
    pub boundary_nodes: usize,
}

impl ShardStats {
    /// Builds the summary from per-shard accumulators.
    ///
    /// `per_shard`, `per_shard_hist`, and `ops_per_shard` must be indexed
    /// by shard id and have the same length; the constructor merges the
    /// latency summaries with [`LatencySummary::merge`], the histograms
    /// with [`LatencyHistogram::merge`], and derives the imbalance ratio
    /// from the routed-op counts. `parallel_update` is the coordinator's
    /// per-batch fan-out→fence span accumulator, carried through as-is.
    pub fn from_shards(
        per_shard: &[LatencySummary],
        per_shard_hist: &[LatencyHistogram],
        parallel_update: &LatencySummary,
        ops_per_shard: &[u64],
        boundary_edges: usize,
        boundary_nodes: usize,
    ) -> ShardStats {
        debug_assert_eq!(per_shard.len(), ops_per_shard.len());
        debug_assert_eq!(per_shard.len(), per_shard_hist.len());
        let shards = per_shard.len();
        let mut update = LatencySummary::new();
        for s in per_shard {
            update.merge(s);
        }
        let mut update_histogram = LatencyHistogram::new();
        for h in per_shard_hist {
            update_histogram.merge(h);
        }
        let total_shard_ops: u64 = ops_per_shard.iter().sum();
        let max_shard_ops = ops_per_shard.iter().copied().max().unwrap_or(0);
        let imbalance_ratio = if shards == 0 || total_shard_ops == 0 {
            1.0
        } else {
            let mean = total_shard_ops as f64 / shards as f64;
            max_shard_ops as f64 / mean
        };
        ShardStats {
            shards,
            update,
            parallel_update: *parallel_update,
            update_histogram,
            max_shard_ops,
            total_shard_ops,
            imbalance_ratio,
            boundary_edges,
            boundary_nodes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_shards_report_unit_imbalance() {
        let stats = ShardStats::from_shards(
            &[LatencySummary::new(); 4],
            &[LatencyHistogram::new(); 4],
            &LatencySummary::new(),
            &[0; 4],
            0,
            0,
        );
        assert_eq!(stats.shards, 4);
        assert_eq!(stats.imbalance_ratio, 1.0);
        assert_eq!(stats.update.count(), 0);
        assert_eq!(stats.update_histogram.count(), 0);
        assert_eq!(stats.parallel_update.count(), 0);
    }

    #[test]
    fn imbalance_is_max_over_mean() {
        // 4 shards, ops 30/10/10/10 → mean 15, max 30 → ratio 2.0.
        let stats = ShardStats::from_shards(
            &[LatencySummary::new(); 4],
            &[LatencyHistogram::new(); 4],
            &LatencySummary::new(),
            &[30, 10, 10, 10],
            3,
            5,
        );
        assert!((stats.imbalance_ratio - 2.0).abs() < 1e-12);
        assert_eq!(stats.max_shard_ops, 30);
        assert_eq!(stats.total_shard_ops, 60);
        assert_eq!(stats.boundary_edges, 3);
        assert_eq!(stats.boundary_nodes, 5);
    }

    #[test]
    fn latencies_merge_across_shards() {
        let mut a = LatencySummary::new();
        a.record(0.25);
        a.record(0.75);
        let mut b = LatencySummary::new();
        b.record(0.5);
        let mut ha = LatencyHistogram::new();
        ha.record(0.25);
        ha.record(0.75);
        let mut hb = LatencyHistogram::new();
        hb.record(0.5);
        let mut fence = LatencySummary::new();
        fence.record(0.8);
        fence.record(0.6);
        let stats = ShardStats::from_shards(&[a, b], &[ha, hb], &fence, &[2, 1], 0, 0);
        assert_eq!(stats.update.count(), 3);
        assert!((stats.update.total_seconds() - 1.5).abs() < 1e-12);
        // The fence span accumulator is carried through untouched: one
        // sample per batch, summing to the coordinator's parallel wall.
        assert_eq!(stats.parallel_update.count(), 2);
        assert!((stats.parallel_update.total_seconds() - 1.4).abs() < 1e-12);
        assert!((stats.update.max_seconds() - 0.75).abs() < 1e-12);
        assert_eq!(stats.update_histogram.count(), 3);
        // 0.75 lands in the [0.75, 1.0) bucket; bucket interpolation may
        // report up to the bucket's upper bound.
        let p99 = stats.update_histogram.p99();
        assert!(p99 > 0.5 && p99 <= 1.0, "p99 {p99}");
    }
}
