//! Condition-number tracking across update batches and re-setups.

use crate::condition::ConditionEstimate;

/// One sample of a [`ConditionTrajectory`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryPoint {
    /// Zero-based index of the update batch the sample follows.
    pub batch: usize,
    /// Condition measure `λmax(L_H⁺ L_G)` after the batch.
    pub lambda_max: f64,
    /// Two-sided condition number `λmax/λmin` after the batch.
    pub kappa: f64,
    /// Whether this batch triggered (or included) a re-setup.
    pub resetup: bool,
}

/// Records how the sparsifier's condition number evolves over a stream of
/// update batches, marking the batches where the engine re-ran setup.
///
/// Churn workloads are the reason this exists: under pure insertion the
/// condition measure decays monotonically toward the target, but deletions
/// and reweights push it back up until the drift policy forces a re-setup —
/// the trajectory makes that sawtooth visible and summarizable (worst
/// excursion, final value, number of re-setups).
///
/// # Example
/// ```
/// use ingrass_metrics::ConditionTrajectory;
/// let mut t = ConditionTrajectory::new();
/// t.record_values(0, 120.0, 150.0, false);
/// t.record_values(1, 180.0, 230.0, true); // drift forced a re-setup
/// t.record_values(2, 95.0, 110.0, false);
/// assert_eq!(t.resetups(), 1);
/// assert_eq!(t.max_lambda_max(), Some(180.0));
/// assert_eq!(t.final_lambda_max(), Some(95.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ConditionTrajectory {
    points: Vec<TrajectoryPoint>,
}

impl ConditionTrajectory {
    /// An empty trajectory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one sample from a [`ConditionEstimate`].
    pub fn record(&mut self, batch: usize, est: &ConditionEstimate, resetup: bool) {
        self.record_values(batch, est.lambda_max, est.kappa, resetup);
    }

    /// Appends one sample from raw values.
    pub fn record_values(&mut self, batch: usize, lambda_max: f64, kappa: f64, resetup: bool) {
        self.points.push(TrajectoryPoint {
            batch,
            lambda_max,
            kappa,
            resetup,
        });
    }

    /// The recorded samples, in insertion order.
    pub fn points(&self) -> &[TrajectoryPoint] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of batches that triggered a re-setup.
    pub fn resetups(&self) -> usize {
        self.points.iter().filter(|p| p.resetup).count()
    }

    /// The worst (largest) condition measure seen.
    pub fn max_lambda_max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.lambda_max)
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.max(x))))
    }

    /// The last recorded condition measure.
    pub fn final_lambda_max(&self) -> Option<f64> {
        self.points.last().map(|p| p.lambda_max)
    }

    /// The largest condition measure recorded *between* re-setups after the
    /// given one — i.e. the worst excursion of epoch `epoch` (0 = before the
    /// first re-setup). `None` if the epoch has no samples.
    pub fn epoch_max_lambda_max(&self, epoch: usize) -> Option<f64> {
        let mut current = 0usize;
        let mut best: Option<f64> = None;
        for p in &self.points {
            if current == epoch {
                best = Some(best.map_or(p.lambda_max, |b| b.max(p.lambda_max)));
            }
            if p.resetup {
                current += 1;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summaries_over_a_sawtooth() {
        let mut t = ConditionTrajectory::new();
        assert!(t.is_empty());
        assert_eq!(t.max_lambda_max(), None);
        for (i, (lm, rs)) in [(100.0, false), (160.0, true), (90.0, false), (130.0, true)]
            .iter()
            .enumerate()
        {
            t.record_values(i, *lm, lm * 1.2, *rs);
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.resetups(), 2);
        assert_eq!(t.max_lambda_max(), Some(160.0));
        assert_eq!(t.final_lambda_max(), Some(130.0));
        // Epochs: [100,160], [90,130], then nothing.
        assert_eq!(t.epoch_max_lambda_max(0), Some(160.0));
        assert_eq!(t.epoch_max_lambda_max(1), Some(130.0));
        assert_eq!(t.epoch_max_lambda_max(2), None);
    }
}
