use std::error::Error;
use std::fmt;

/// Errors produced by the metric estimators.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricsError {
    /// Graphs disagree on the node set.
    NodeCountMismatch {
        /// Nodes in the first graph.
        left: usize,
        /// Nodes in the second graph.
        right: usize,
    },
    /// One of the graphs is disconnected — the relative condition number is
    /// unbounded.
    Disconnected {
        /// `"G"` or `"H"` — which operand is disconnected.
        which: &'static str,
    },
    /// An inner linear-algebra routine failed.
    Linalg(String),
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsError::NodeCountMismatch { left, right } => {
                write!(f, "node count mismatch: {left} vs {right}")
            }
            MetricsError::Disconnected { which } => {
                write!(
                    f,
                    "graph {which} is disconnected; condition number is unbounded"
                )
            }
            MetricsError::Linalg(msg) => write!(f, "linear algebra failure: {msg}"),
        }
    }
}

impl Error for MetricsError {}

impl From<ingrass_linalg::LinalgError> for MetricsError {
    fn from(e: ingrass_linalg::LinalgError) -> Self {
        MetricsError::Linalg(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = MetricsError::NodeCountMismatch { left: 3, right: 5 };
        assert!(e.to_string().contains('3'));
        let e = MetricsError::Disconnected { which: "H" };
        assert!(e.to_string().contains('H'));
    }
}
