//! Fixed-bucket log-scale latency histograms for SLO accounting.
//!
//! [`LatencySummary`](crate::LatencySummary) answers min/mean/max; serving
//! SLOs are stated in *percentiles* (p99 under overload), which no O(1)
//! accumulator can produce. [`LatencyHistogram`] is the classic
//! fixed-memory compromise: a bank of log-spaced buckets covering
//! 1 µs … 100 s at 8 buckets per decade (≈ 33 % relative resolution per
//! bucket, i.e. a reported quantile is exact up to one bucket's width),
//! with explicit under/overflow buckets so no sample is ever lost.
//! Recording is O(1), [`merge`](LatencyHistogram::merge) is element-wise,
//! and [`quantile`](LatencyHistogram::quantile) is a deterministic
//! function of the recorded multiset — two runs that record the same
//! samples report bit-identical percentiles, which is what lets the perf
//! gate pin p50/p95/p99 at a fixed seed across worker widths.

/// Buckets per decade of the log-scale bank.
const PER_DECADE: usize = 8;
/// Lower bound of the first regular bucket (seconds).
const MIN_S: f64 = 1e-6;
/// Upper bound of the last regular bucket (seconds).
const MAX_S: f64 = 1e2;
/// Decades covered by the regular buckets.
const DECADES: usize = 8;
/// Regular (log-spaced) buckets.
const REGULAR: usize = PER_DECADE * DECADES;
/// Regular buckets plus the underflow (`< 1 µs`, index 0) and overflow
/// (`≥ 100 s`, last index) buckets.
const BUCKETS: usize = REGULAR + 2;

/// A fixed-memory log-scale histogram over wall-time samples (seconds),
/// with mergeable counts and deterministic quantiles.
///
/// # Example
/// ```
/// use ingrass_metrics::LatencyHistogram;
/// let mut h = LatencyHistogram::new();
/// for i in 1..=100u32 {
///     h.record(f64::from(i) * 1e-3); // 1 ms … 100 ms
/// }
/// assert_eq!(h.count(), 100);
/// let p50 = h.quantile(0.50);
/// let p99 = h.quantile(0.99);
/// // Bucket resolution is ~33 %: the medians land in the right bucket.
/// assert!(p50 > 0.030 && p50 < 0.075, "p50 {p50}");
/// assert!(p99 > 0.070 && p99 <= 0.135, "p99 {p99}");
/// assert!(p50 < p99);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    rejected: u64,
    total_s: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            count: 0,
            rejected: 0,
            total_s: 0.0,
        }
    }
}

/// Bucket index of a finite non-negative sample. The regular-bank bucket
/// boundaries are *defined* by [`lower_bound`] (the same values
/// [`LatencyHistogram::quantile`] interpolates between): bucket `1 + i`
/// holds exactly the samples in `[lower_bound(i), lower_bound(i + 1))`.
fn bucket_of(seconds: f64) -> usize {
    if seconds < MIN_S {
        return 0;
    }
    if seconds >= MAX_S {
        return BUCKETS - 1;
    }
    // `log10(s / MIN_S) · PER_DECADE` is only a hint: one-ulp rounding in
    // the division or the log places a sample sitting exactly on a bucket
    // boundary one bucket off (e.g. `lower_bound(1)` floors to 0).
    // Correct against the exact bounds so placement and interpolation
    // always agree.
    let mut i = (((seconds / MIN_S).log10() * PER_DECADE as f64).floor() as usize).min(REGULAR - 1);
    while i > 0 && seconds < lower_bound(i) {
        i -= 1;
    }
    while i + 1 < REGULAR && seconds >= lower_bound(i + 1) {
        i += 1;
    }
    1 + i
}

/// Lower bound (seconds) of regular bucket `i` (0-based within the
/// regular bank).
fn lower_bound(i: usize) -> f64 {
    MIN_S * 10f64.powf(i as f64 / PER_DECADE as f64)
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one sample. Negative or non-finite samples are dropped and
    /// counted in [`LatencyHistogram::rejected`], exactly as
    /// [`crate::LatencySummary::record`] treats timer anomalies.
    pub fn record(&mut self, seconds: f64) {
        if !seconds.is_finite() || seconds < 0.0 {
            self.rejected += 1;
            return;
        }
        self.counts[bucket_of(seconds)] += 1;
        self.count += 1;
        self.total_s += seconds;
    }

    /// Folds another histogram into this one (element-wise counts).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.rejected += other.rejected;
        self.total_s += other.total_s;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Anomalous samples (negative or non-finite) dropped by
    /// [`LatencyHistogram::record`].
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Sum of all samples (seconds).
    pub fn total_seconds(&self) -> f64 {
        self.total_s
    }

    /// Mean sample (0 when empty).
    pub fn mean_seconds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_s / self.count as f64
        }
    }

    /// The `q`-quantile (`q ∈ [0, 1]`) of the recorded samples, resolved
    /// to bucket precision: the sample of rank `⌈q·count⌉` is located in
    /// its bucket and the value is geometrically interpolated between the
    /// bucket's bounds by the rank's position inside it. Samples below
    /// 1 µs report 1 µs; samples at or above 100 s report 100 s (the
    /// bank's edges).
    ///
    /// An empty histogram has no samples to rank, so every quantile is
    /// **defined as 0** (never a rank-1 probe of empty buckets); use
    /// [`LatencyHistogram::try_quantile`] to distinguish "no samples"
    /// from a real zero-latency percentile.
    ///
    /// # Panics
    /// Panics if `q` is not within `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        self.try_quantile(q).unwrap_or(0.0)
    }

    /// [`LatencyHistogram::quantile`], except an empty histogram returns
    /// `None` instead of 0.
    ///
    /// # Panics
    /// Panics if `q` is not within `[0, 1]`.
    pub fn try_quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                if i == 0 {
                    return Some(MIN_S);
                }
                if i == BUCKETS - 1 {
                    return Some(MAX_S);
                }
                let lo = lower_bound(i - 1);
                let hi = lower_bound(i);
                // Geometric interpolation by the rank's position within
                // the bucket (log-spaced buckets → log-space midpoints).
                let frac = (rank - seen) as f64 / c as f64;
                return Some(lo * (hi / lo).powf(frac));
            }
            seen += c;
        }
        Some(MAX_S) // unreachable while count tracks the bucket sums
    }

    /// Median ([`quantile`](LatencyHistogram::quantile) at 0.50).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// The raw bucket counts (underflow, 64 log-spaced buckets, overflow)
    /// — for serialization into perf reports.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.p99(), 0.0);
        assert_eq!(h.mean_seconds(), 0.0);
        // The Option form tells "no samples" apart from a real zero.
        assert_eq!(h.try_quantile(0.0), None);
        assert_eq!(h.try_quantile(0.5), None);
        assert_eq!(h.try_quantile(1.0), None);
        let mut h = h;
        h.record(0.5);
        assert!(h.try_quantile(0.5).is_some());
    }

    #[test]
    fn boundary_samples_land_in_their_own_bucket() {
        // Every regular bucket boundary must open its bucket: bucket
        // `1 + k` is [lower_bound(k), lower_bound(k+1)). The log10 hint
        // alone floors lower_bound(1) = 10^(1/8) µs into bucket 1.
        for k in 0..REGULAR {
            let lb = lower_bound(k);
            assert_eq!(bucket_of(lb), 1 + k, "boundary {k} ({lb:e}) misplaced");
            // One ulp below the boundary belongs to the bucket before it.
            let below = f64::from_bits(lb.to_bits() - 1);
            let want = if k == 0 { 0 } else { k };
            assert_eq!(bucket_of(below), want, "pre-boundary {k} misplaced");
        }
    }

    #[test]
    fn edge_samples_clamp_to_the_edge_buckets() {
        // At or above the ceiling → overflow bucket, never out of range.
        assert_eq!(bucket_of(MAX_S), BUCKETS - 1);
        assert_eq!(bucket_of(f64::from_bits(MAX_S.to_bits() - 1)), REGULAR);
        assert_eq!(bucket_of(MAX_S * 10.0), BUCKETS - 1);
        assert_eq!(bucket_of(f64::MAX), BUCKETS - 1);
        // Below the floor — including subnormals — → underflow bucket.
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(f64::MIN_POSITIVE), 0);
        assert_eq!(bucket_of(f64::from_bits(1)), 0); // smallest subnormal
        assert_eq!(bucket_of(f64::from_bits(MIN_S.to_bits() - 1)), 0);
        assert_eq!(bucket_of(MIN_S), 1);
    }

    #[test]
    fn placement_and_interpolation_agree_at_boundaries() {
        // A lone boundary sample's quantile must interpolate inside the
        // bucket that holds it: within [lower_bound(k), lower_bound(k+1)].
        for k in [1usize, 2, 3, 17, 40] {
            let mut h = LatencyHistogram::new();
            let lb = lower_bound(k);
            h.record(lb);
            let q = h.quantile(1.0);
            assert!(
                q >= lb && q <= lower_bound(k + 1),
                "k={k}: sample {lb:e} reported as {q:e}"
            );
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bucket_accurate() {
        let mut h = LatencyHistogram::new();
        // 1000 samples spread over three decades.
        for i in 0..1000u32 {
            h.record(1e-4 * 1.007f64.powi(i as i32));
        }
        let (p50, p95, p99) = (h.p50(), h.p95(), h.p99());
        assert!(p50 <= p95 && p95 <= p99);
        // True p50 is 1e-4·1.007^500 ≈ 3.26e-3; one bucket is ×1.33 wide.
        let true_p50 = 1e-4 * 1.007f64.powi(500);
        assert!(p50 / true_p50 < 1.4 && true_p50 / p50 < 1.4, "p50 {p50}");
    }

    #[test]
    fn under_and_overflow_are_pinned_to_the_edges() {
        let mut h = LatencyHistogram::new();
        h.record(0.0);
        h.record(1e-9);
        h.record(1e3);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.0), 1e-6);
        assert_eq!(h.quantile(1.0), 1e2);
    }

    #[test]
    fn bogus_samples_are_dropped() {
        let mut h = LatencyHistogram::new();
        h.record(f64::NAN);
        h.record(-1.0);
        h.record(f64::INFINITY);
        h.record(0.5);
        assert_eq!(h.count(), 1);
        assert_eq!(h.rejected(), 3);
    }

    #[test]
    fn merge_equals_single_stream() {
        let samples: Vec<f64> = (1..=200).map(|i| i as f64 * 2.5e-4).collect();
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for (i, &s) in samples.iter().enumerate() {
            if i % 2 == 0 {
                a.record(s);
            } else {
                b.record(s);
            }
            whole.record(s);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.quantile(0.99), whole.quantile(0.99));
        // Merging an empty histogram is a no-op.
        let before = a;
        a.merge(&LatencyHistogram::new());
        assert_eq!(a, before);
    }

    #[test]
    fn quantile_is_deterministic_under_permutation() {
        let mut fwd = LatencyHistogram::new();
        let mut rev = LatencyHistogram::new();
        let samples: Vec<f64> = (1..=500).map(|i| 1e-5 * i as f64).collect();
        for &s in &samples {
            fwd.record(s);
        }
        for &s in samples.iter().rev() {
            rev.record(s);
        }
        assert_eq!(fwd, rev);
        for q in [0.1, 0.5, 0.9, 0.95, 0.99, 0.999] {
            assert_eq!(fwd.quantile(q), rev.quantile(q));
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_quantile_panics() {
        LatencyHistogram::new().quantile(1.5);
    }
}
