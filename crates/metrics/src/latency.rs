//! Streaming latency summaries for serving-layer instrumentation.

/// An `O(1)`-memory accumulator over a series of wall-time measurements
/// (seconds): count, total, mean, min, max.
///
/// The serving layer (snapshot publishes, solve-drain rounds) records one
/// sample per event; the perf harness and service stats report the summary.
/// Two summaries can be [`merged`](LatencySummary::merge), so per-thread
/// accumulators combine without locks.
///
/// # Example
/// ```
/// use ingrass_metrics::LatencySummary;
/// let mut lat = LatencySummary::new();
/// lat.record(0.002);
/// lat.record(0.004);
/// assert_eq!(lat.count(), 2);
/// assert!((lat.mean_seconds() - 0.003).abs() < 1e-12);
/// assert_eq!(lat.max_seconds(), 0.004);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    count: usize,
    rejected: usize,
    total_s: f64,
    min_s: f64,
    max_s: f64,
}

impl LatencySummary {
    /// An empty summary.
    pub fn new() -> Self {
        LatencySummary::default()
    }

    /// Records one sample. Negative or non-finite samples can only arise
    /// from timer anomalies and must not poison the aggregate: they are
    /// *dropped* — counted in [`LatencySummary::rejected`], but excluded
    /// from count/total/min/max. (An earlier version clamped them to zero
    /// and recorded that, silently pinning `min_seconds` to 0.)
    pub fn record(&mut self, seconds: f64) {
        if !seconds.is_finite() || seconds < 0.0 {
            self.rejected += 1;
            return;
        }
        if self.count == 0 {
            self.min_s = seconds;
            self.max_s = seconds;
        } else {
            self.min_s = self.min_s.min(seconds);
            self.max_s = self.max_s.max(seconds);
        }
        self.count += 1;
        self.total_s += seconds;
    }

    /// Folds another summary into this one.
    pub fn merge(&mut self, other: &LatencySummary) {
        self.rejected += other.rejected;
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            let rejected = self.rejected;
            *self = *other;
            self.rejected = rejected;
            return;
        }
        self.count += other.count;
        self.total_s += other.total_s;
        self.min_s = self.min_s.min(other.min_s);
        self.max_s = self.max_s.max(other.max_s);
    }

    /// Anomalous samples (negative or non-finite) dropped by
    /// [`LatencySummary::record`].
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// Samples recorded.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Sum of all samples (seconds).
    pub fn total_seconds(&self) -> f64 {
        self.total_s
    }

    /// Mean sample (0 when empty).
    pub fn mean_seconds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_s / self.count as f64
        }
    }

    /// Smallest sample (0 when empty).
    pub fn min_seconds(&self) -> f64 {
        self.min_s
    }

    /// Largest sample (0 when empty).
    pub fn max_seconds(&self) -> f64 {
        self.max_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_all_zero() {
        let lat = LatencySummary::new();
        assert_eq!(lat.count(), 0);
        assert_eq!(lat.total_seconds(), 0.0);
        assert_eq!(lat.mean_seconds(), 0.0);
        assert_eq!(lat.min_seconds(), 0.0);
        assert_eq!(lat.max_seconds(), 0.0);
    }

    #[test]
    fn records_track_min_mean_max() {
        let mut lat = LatencySummary::new();
        for s in [0.003, 0.001, 0.005] {
            lat.record(s);
        }
        assert_eq!(lat.count(), 3);
        assert!((lat.total_seconds() - 0.009).abs() < 1e-12);
        assert!((lat.mean_seconds() - 0.003).abs() < 1e-12);
        assert_eq!(lat.min_seconds(), 0.001);
        assert_eq!(lat.max_seconds(), 0.005);
    }

    #[test]
    fn bogus_samples_are_dropped_not_recorded() {
        let mut lat = LatencySummary::new();
        lat.record(f64::NAN);
        lat.record(-1.0);
        lat.record(f64::INFINITY);
        assert_eq!(lat.count(), 0);
        assert_eq!(lat.rejected(), 3);
        assert_eq!(lat.total_seconds(), 0.0);
        assert_eq!(lat.max_seconds(), 0.0);
    }

    #[test]
    fn anomalies_do_not_poison_min_seconds() {
        // Regression: clamping anomalies to 0.0 and recording them used to
        // pin min_seconds at 0 for the rest of the summary's life.
        let mut lat = LatencySummary::new();
        lat.record(f64::NAN);
        lat.record(0.005);
        lat.record(-3.0);
        lat.record(0.002);
        assert_eq!(lat.count(), 2);
        assert_eq!(lat.rejected(), 2);
        assert_eq!(lat.min_seconds(), 0.002);
        assert_eq!(lat.max_seconds(), 0.005);
        assert!((lat.mean_seconds() - 0.0035).abs() < 1e-12);

        // Merging propagates the rejected count without reviving zeros.
        let mut other = LatencySummary::new();
        other.record(f64::INFINITY);
        other.record(0.004);
        lat.merge(&other);
        assert_eq!(lat.count(), 3);
        assert_eq!(lat.rejected(), 3);
        assert_eq!(lat.min_seconds(), 0.002);

        // Merging into an empty summary keeps its rejected tally too.
        let mut empty = LatencySummary::new();
        empty.record(f64::NAN);
        empty.merge(&other);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.rejected(), 2);
        assert_eq!(empty.min_seconds(), 0.004);
    }

    #[test]
    fn merge_combines_like_a_single_stream() {
        let mut a = LatencySummary::new();
        let mut b = LatencySummary::new();
        let mut whole = LatencySummary::new();
        for (i, s) in [0.002, 0.007, 0.001, 0.004].iter().enumerate() {
            if i % 2 == 0 {
                a.record(*s);
            } else {
                b.record(*s);
            }
            whole.record(*s);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.total_seconds() - whole.total_seconds()).abs() < 1e-12);
        assert_eq!(a.min_seconds(), whole.min_seconds());
        assert_eq!(a.max_seconds(), whole.max_seconds());
        // Merging an empty summary is a no-op in both directions.
        let empty = LatencySummary::new();
        let before = a;
        a.merge(&empty);
        assert_eq!(a, before);
        let mut e = LatencySummary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }
}
