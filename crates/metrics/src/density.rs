//! Sparsifier density definitions.
//!
//! The paper defines `D := |E|/|V|` but reports percentages; following the
//! GRASS methodology (spanning tree + recovered off-tree edges) the
//! percentages correspond to **off-tree density** — the fraction of the
//! original graph's off-tree edges that the sparsifier retains. Both
//! definitions (plus the raw edge ratio) are provided; the experiment
//! harness reports off-tree density (see DESIGN.md §3.1).

use ingrass_graph::Graph;

/// Density measures of a sparsifier `H` of a base graph `G(0)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DensityReport {
    /// `|E_H| / |E_G|` — raw edge ratio.
    pub edge_ratio: f64,
    /// `(|E_H| − (N−1)) / (|E_G| − (N−1))` — off-tree density, the
    /// percentage the paper's tables report.
    pub off_tree: f64,
    /// `|E_H| / |V|` — the paper's literal `D` definition (average degree
    /// halved).
    pub edges_per_node: f64,
}

/// Computes sparsifier density measures.
///
/// # Example
/// ```
/// use ingrass_metrics::SparsifierDensity;
/// // 100 nodes: tree = 99 edges. H has 149 edges, G has 599.
/// let d = SparsifierDensity::new(100).report(149, 599);
/// assert!((d.off_tree - 0.1).abs() < 1e-12);   // 50 of 500 off-tree edges
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SparsifierDensity {
    nodes: usize,
}

impl SparsifierDensity {
    /// Density calculator for graphs over `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        SparsifierDensity { nodes }
    }

    /// Report from raw edge counts.
    pub fn report(&self, h_edges: usize, g_edges: usize) -> DensityReport {
        let tree = self.nodes.saturating_sub(1) as f64;
        let (he, ge) = (h_edges as f64, g_edges as f64);
        DensityReport {
            edge_ratio: if ge > 0.0 { he / ge } else { 0.0 },
            off_tree: if ge > tree {
                ((he - tree).max(0.0)) / (ge - tree)
            } else {
                0.0
            },
            edges_per_node: if self.nodes > 0 {
                he / self.nodes as f64
            } else {
                0.0
            },
        }
    }

    /// Report from graphs.
    ///
    /// # Panics
    /// Panics if the node counts differ.
    pub fn report_graphs(&self, h: &Graph, g: &Graph) -> DensityReport {
        assert_eq!(h.num_nodes(), g.num_nodes(), "node count mismatch");
        assert_eq!(h.num_nodes(), self.nodes, "density calculator node count");
        self.report(h.num_edges(), g.num_edges())
    }

    /// The number of sparsifier edges that yields a target off-tree density
    /// against a base graph with `g_edges` edges.
    pub fn edges_for_off_tree(&self, target: f64, g_edges: usize) -> usize {
        let tree = self.nodes.saturating_sub(1) as f64;
        let off = (g_edges as f64 - tree).max(0.0);
        (tree + target.clamp(0.0, 1.0) * off).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingrass_gen::{grid_2d, WeightModel};
    use ingrass_graph::{kruskal_tree, TreeObjective};

    #[test]
    fn tree_has_zero_off_tree_density() {
        let g = grid_2d(8, 8, WeightModel::Unit, 0);
        let t = kruskal_tree(&g, TreeObjective::MaxWeight).unwrap();
        let h = g.edge_subgraph(&t.in_tree);
        let d = SparsifierDensity::new(64).report_graphs(&h, &g);
        assert_eq!(d.off_tree, 0.0);
        assert!(d.edge_ratio > 0.0);
    }

    #[test]
    fn full_graph_has_unit_densities() {
        let g = grid_2d(6, 6, WeightModel::Unit, 0);
        let d = SparsifierDensity::new(36).report_graphs(&g, &g);
        assert!((d.off_tree - 1.0).abs() < 1e-12);
        assert!((d.edge_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edges_for_off_tree_round_trips() {
        let sd = SparsifierDensity::new(100);
        let g_edges = 599;
        for target in [0.0, 0.1, 0.25, 0.5, 1.0] {
            let h_edges = sd.edges_for_off_tree(target, g_edges);
            let d = sd.report(h_edges, g_edges);
            assert!((d.off_tree - target).abs() < 0.01, "target {target}");
        }
    }

    #[test]
    fn degenerate_inputs_do_not_divide_by_zero() {
        let d = SparsifierDensity::new(0).report(0, 0);
        assert_eq!(d.edge_ratio, 0.0);
        assert_eq!(d.off_tree, 0.0);
        assert_eq!(d.edges_per_node, 0.0);
        let d = SparsifierDensity::new(5).report(4, 4); // G itself a tree
        assert_eq!(d.off_tree, 0.0);
    }
}
