//! Evaluation metrics for the inGRASS reproduction: the relative condition
//! number `κ(L_G, L_H)` the paper reports everywhere, density definitions,
//! and distortion statistics.
//!
//! # Example
//!
//! ```
//! use ingrass_gen::{grid_2d, WeightModel};
//! use ingrass_metrics::{estimate_condition_number, ConditionOptions};
//!
//! let g = grid_2d(8, 8, WeightModel::Unit, 0);
//! // κ(L, L) = 1 for identical graphs.
//! let est = estimate_condition_number(&g, &g, &ConditionOptions::default()).unwrap();
//! assert!((est.kappa - 1.0).abs() < 1e-4);
//! ```

#![deny(missing_docs)]

mod condition;
mod density;
mod distortion;
mod error;
mod histogram;
mod latency;
mod shard;
mod trajectory;

pub use condition::{estimate_condition_number, ConditionEstimate, ConditionOptions};
pub use density::{DensityReport, SparsifierDensity};
pub use distortion::{offtree_distortion_stats, DistortionStats};
pub use error::MetricsError;
pub use histogram::LatencyHistogram;
pub use latency::LatencySummary;
pub use shard::ShardStats;
pub use trajectory::{ConditionTrajectory, TrajectoryPoint};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MetricsError>;
