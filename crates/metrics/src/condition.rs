//! Relative condition number `κ(L_G, L_H)` of two graph Laplacians.

use crate::error::MetricsError;
use crate::Result;
use ingrass_graph::{is_connected, kruskal_tree, Graph, TreeObjective, TreePrecond};
use ingrass_linalg::{generalized_lanczos, pcg, CgOptions, LanczosOptions};

/// Options controlling the condition-number estimation.
#[derive(Debug, Clone)]
pub struct ConditionOptions {
    /// Lanczos iteration cap per extreme (default 40).
    pub lanczos_iters: usize,
    /// Relative convergence tolerance on the extreme Ritz values
    /// (default `1e-4` — condition numbers are reported to ~3 digits).
    pub lanczos_tol: f64,
    /// Relative tolerance of the inner CG solves (default `1e-7`).
    pub cg_tol: f64,
    /// Iteration cap of the inner CG solves (default 2000).
    pub cg_max_iters: usize,
    /// RNG seed for the Lanczos start vectors.
    pub seed: u64,
}

impl Default for ConditionOptions {
    fn default() -> Self {
        ConditionOptions {
            lanczos_iters: 40,
            lanczos_tol: 1e-4,
            cg_tol: 1e-7,
            cg_max_iters: 2000,
            seed: 20,
        }
    }
}

impl ConditionOptions {
    /// Returns options with a faster/looser profile for use inside search
    /// loops (fewer Lanczos iterations, looser CG).
    pub fn fast() -> Self {
        ConditionOptions {
            lanczos_iters: 24,
            lanczos_tol: 1e-3,
            cg_tol: 1e-6,
            cg_max_iters: 800,
            seed: 20,
        }
    }
}

/// Result of [`estimate_condition_number`].
#[derive(Debug, Clone)]
pub struct ConditionEstimate {
    /// The relative condition number `λ_max / λ_min` of the pencil
    /// `(L_G, L_H)` restricted to the complement of the null space.
    pub kappa: f64,
    /// Largest generalised eigenvalue `λ_max(L_H⁺ L_G)`.
    pub lambda_max: f64,
    /// Smallest generalised eigenvalue `λ_min(L_H⁺ L_G)`.
    pub lambda_min: f64,
    /// Lanczos iterations spent on the forward and reverse pencils.
    pub iterations: (usize, usize),
}

/// Estimates `κ(L_G, L_H)` — the spectral-similarity measure the paper
/// reports in Tables II/III.
///
/// Method: `λ_max(L_H⁺L_G)` via Lanczos on the pencil `(L_G, L_H)` in the
/// `L_H` inner product, with spanning-tree-preconditioned CG providing the
/// `L_H` solves; `λ_min(L_H⁺L_G) = 1/λ_max(L_G⁺L_H)` via the mirrored
/// pencil. Both Laplacians share the constant null space, which is deflated
/// throughout. Because inGRASS *re-weights* sparsifier edges, `H` is not a
/// subgraph of `G` in general and `λ_min` genuinely differs from 1.
///
/// # Errors
/// [`MetricsError::NodeCountMismatch`] or [`MetricsError::Disconnected`] on
/// invalid operands; [`MetricsError::Linalg`] if Lanczos fails internally.
pub fn estimate_condition_number(
    g: &Graph,
    h: &Graph,
    opts: &ConditionOptions,
) -> Result<ConditionEstimate> {
    if g.num_nodes() != h.num_nodes() {
        return Err(MetricsError::NodeCountMismatch {
            left: g.num_nodes(),
            right: h.num_nodes(),
        });
    }
    if !is_connected(g) {
        return Err(MetricsError::Disconnected { which: "G" });
    }
    if !is_connected(h) {
        return Err(MetricsError::Disconnected { which: "H" });
    }
    let n = g.num_nodes();
    let ones = vec![1.0; n];
    let lg = g.laplacian();
    let lh = h.laplacian();
    let lanczos_opts = LanczosOptions::default()
        .with_max_iters(opts.lanczos_iters)
        .with_tol(opts.lanczos_tol)
        .with_seed(opts.seed);
    let cg_opts = CgOptions::default()
        .with_rel_tol(opts.cg_tol)
        .with_max_iters(opts.cg_max_iters);

    // Forward pencil: λ_max(L_H⁺ L_G) — solves with L_H.
    let tree_h = kruskal_tree(h, TreeObjective::MaxWeight)
        .map_err(|e| MetricsError::Linalg(e.to_string()))?;
    let pre_h = TreePrecond::new(&tree_h.tree);
    let solve_h = |rhs: &[f64], out: &mut [f64]| {
        out.iter_mut().for_each(|v| *v = 0.0);
        pcg(&lh, rhs, out, &pre_h, Some(&ones), &cg_opts);
    };
    let fwd = generalized_lanczos(&lg, &lh, solve_h, Some(&ones), &lanczos_opts)?;

    // Reverse pencil: λ_max(L_G⁺ L_H) — solves with L_G.
    let tree_g = kruskal_tree(g, TreeObjective::MaxWeight)
        .map_err(|e| MetricsError::Linalg(e.to_string()))?;
    let pre_g = TreePrecond::new(&tree_g.tree);
    let solve_g = |rhs: &[f64], out: &mut [f64]| {
        out.iter_mut().for_each(|v| *v = 0.0);
        pcg(&lg, rhs, out, &pre_g, Some(&ones), &cg_opts);
    };
    let rev = generalized_lanczos(&lh, &lg, solve_g, Some(&ones), &lanczos_opts)?;

    let lambda_max = fwd.lambda_max;
    let lambda_min = 1.0 / rev.lambda_max;
    Ok(ConditionEstimate {
        kappa: lambda_max / lambda_min,
        lambda_max,
        lambda_min,
        iterations: (fwd.iterations, rev.iterations),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingrass_gen::{grid_2d, WeightModel};
    use ingrass_graph::{kruskal_tree, TreeObjective};

    #[test]
    fn identical_graphs_have_kappa_one() {
        let g = grid_2d(10, 10, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 1);
        let est = estimate_condition_number(&g, &g, &ConditionOptions::default()).unwrap();
        assert!((est.kappa - 1.0).abs() < 1e-3, "kappa {}", est.kappa);
        assert!((est.lambda_max - 1.0).abs() < 1e-4);
        assert!((est.lambda_min - 1.0).abs() < 1e-4);
    }

    #[test]
    fn scaling_h_shifts_extremes_not_kappa() {
        let g = grid_2d(8, 8, WeightModel::Unit, 2);
        // H = G with all weights halved: λ(L_H⁺L_G) ≡ 2 ⇒ κ = 1.
        let edges: Vec<(usize, usize, f64)> = g
            .edges()
            .iter()
            .map(|e| (e.u.index(), e.v.index(), e.weight / 2.0))
            .collect();
        let h = Graph::from_edges(64, &edges).unwrap();
        let est = estimate_condition_number(&g, &h, &ConditionOptions::default()).unwrap();
        assert!((est.lambda_max - 2.0).abs() < 1e-3, "{}", est.lambda_max);
        assert!((est.kappa - 1.0).abs() < 1e-3, "{}", est.kappa);
    }

    #[test]
    fn spanning_tree_is_worse_than_tree_plus_offtree_edges() {
        let g = grid_2d(10, 10, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 3);
        let t = kruskal_tree(&g, TreeObjective::MaxWeight).unwrap();
        let tree_graph = g.edge_subgraph(&t.in_tree);
        let kappa_tree = estimate_condition_number(&g, &tree_graph, &ConditionOptions::default())
            .unwrap()
            .kappa;
        // Add half the off-tree edges back.
        let mut keep = t.in_tree.clone();
        let off: Vec<usize> = (0..g.num_edges()).filter(|&e| !t.in_tree[e]).collect();
        for &e in off.iter().step_by(2) {
            keep[e] = true;
        }
        let denser = g.edge_subgraph(&keep);
        let kappa_denser = estimate_condition_number(&g, &denser, &ConditionOptions::default())
            .unwrap()
            .kappa;
        assert!(
            kappa_denser < kappa_tree,
            "denser {kappa_denser} vs tree {kappa_tree}"
        );
        // Subgraphs of G have λ_min ≥ 1 (up to estimator slack).
        assert!(kappa_tree > 1.0);
    }

    #[test]
    fn mismatched_sizes_error() {
        let g = grid_2d(4, 4, WeightModel::Unit, 0);
        let h = grid_2d(5, 4, WeightModel::Unit, 0);
        assert!(matches!(
            estimate_condition_number(&g, &h, &ConditionOptions::default()),
            Err(MetricsError::NodeCountMismatch { .. })
        ));
    }

    #[test]
    fn disconnected_operand_errors() {
        let g = grid_2d(4, 4, WeightModel::Unit, 0);
        let h = Graph::from_edges(16, &[(0, 1, 1.0)]).unwrap();
        assert!(matches!(
            estimate_condition_number(&g, &h, &ConditionOptions::default()),
            Err(MetricsError::Disconnected { which: "H" })
        ));
    }

    #[test]
    fn estimate_is_deterministic() {
        let g = grid_2d(8, 8, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 5);
        let t = kruskal_tree(&g, TreeObjective::MaxWeight).unwrap();
        let h = g.edge_subgraph(&t.in_tree);
        let a = estimate_condition_number(&g, &h, &ConditionOptions::default()).unwrap();
        let b = estimate_condition_number(&g, &h, &ConditionOptions::default()).unwrap();
        assert_eq!(a.kappa, b.kappa);
    }
}
