//! The serving front end of the inGRASS reproduction: bounded admission,
//! per-tenant weighted-fair dequeue, deadline shedding, and p99 SLO
//! accounting over `ingrass_solve::ConcurrentSolveService`.
//!
//! The solve service underneath admits every request it is handed; under
//! sustained overload that queue grows without bound and every request's
//! latency with it. This crate adds the machinery a real service puts in
//! front of such a backend:
//!
//! * [`AdmissionQueue`] — a bounded queue ([`TrafficConfig::max_pending`])
//!   with per-tenant lanes drained by deficit round-robin
//!   ([`TrafficConfig::tenant_weights`]) and per-request deadlines:
//!   expired work is shed at dispatch, *before* it burns solver time.
//!   Both loss modes are typed ([`Rejected::Full`],
//!   [`Rejected::DeadlineExceeded`]) and counted in [`TrafficStats`].
//! * [`run_open_loop`] — the deterministic load harness: replays an
//!   `ingrass_gen::WorkloadTrace` (seeded Poisson/burst arrivals,
//!   hot-tenant skew, mixed reader solves + writer churn) on a virtual
//!   clock and reports latency percentiles from
//!   `ingrass_metrics::LatencyHistogram` that are bit-identical at any
//!   machine speed and worker width.
//!
//! # Example
//!
//! ```
//! use ingrass_traffic::{AdmissionQueue, TrafficConfig};
//!
//! let mut q = AdmissionQueue::new(TrafficConfig {
//!     max_pending: 64,
//!     deadline_s: 0.25,
//!     tenant_weights: vec![2.0, 1.0],
//! });
//! q.offer(0, 0.00, "premium query").unwrap();
//! q.offer(1, 0.01, "batch query").unwrap();
//! let round = q.dispatch(0.02, 16);
//! assert_eq!(round.len(), 2);
//! assert_eq!(q.stats().per_tenant_dispatched, vec![1, 1]);
//! ```

#![deny(missing_docs)]

mod driver;
mod queue;

pub use driver::{run_open_loop, OpenLoopConfig, ServiceModel, TrafficError, TrafficReport};
pub use queue::{AdmissionQueue, Dispatched, Rejected, TrafficConfig, TrafficStats};
