//! The open-loop drive loop: replays a [`WorkloadTrace`] against a
//! [`SnapshotEngine`] + [`ConcurrentSolveService`] pair through the
//! bounded admission queue, on a **virtual clock**.
//!
//! Arrivals happen at their trace timestamps; drains fire on a fixed
//! virtual cadence; a completed request's latency is its queue wait plus
//! a *modeled* service time that is a pure function of its PCG iteration
//! count. Because the iteration counts are bit-deterministic at any
//! worker width, every latency percentile the run reports is too — the
//! perf gate can pin `traffic_p99_s` exactly, which no wall-clock
//! measurement survives. Wall time is still recorded, as information.

use crate::queue::{AdmissionQueue, TrafficConfig, TrafficStats};
use ingrass::{SnapshotEngine, SparsifierSnapshot, UpdateConfig, UpdateOp};
use ingrass_gen::{TrafficEvent, TrafficEventKind};
use ingrass_linalg::CsrMatrix;
use ingrass_metrics::LatencyHistogram;
use ingrass_solve::{ConcurrentSolveService, ConcurrentSolveStats, SolveConfig, Ticket};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Errors of the drive loop.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficError {
    /// Applying a churn batch to the engine failed.
    Engine(String),
    /// Submitting a dispatched request to the solve service failed (a
    /// dimension bug — the front end never trips the service's own cap).
    Solve(String),
    /// The drive-loop configuration is invalid.
    Config(String),
}

impl fmt::Display for TrafficError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficError::Engine(m) => write!(f, "engine update failed: {m}"),
            TrafficError::Solve(m) => write!(f, "solve submission failed: {m}"),
            TrafficError::Config(m) => write!(f, "invalid open-loop config: {m}"),
        }
    }
}

impl std::error::Error for TrafficError {}

impl From<ingrass::InGrassError> for TrafficError {
    fn from(e: ingrass::InGrassError) -> Self {
        TrafficError::Engine(e.to_string())
    }
}

impl From<ingrass_solve::SolveError> for TrafficError {
    fn from(e: ingrass_solve::SolveError) -> Self {
        TrafficError::Solve(e.to_string())
    }
}

/// The virtual service-time model: what one solved request "costs" on
/// the virtual clock.
///
/// `service = base_s + iterations · per_iteration_s`. PCG iteration
/// counts are bit-deterministic (fixed seed, any worker width), so the
/// modeled latency distribution is too — the property the perf gate's
/// `traffic_p99_s` key relies on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceModel {
    /// Fixed per-request overhead (virtual seconds).
    pub base_s: f64,
    /// Virtual seconds per PCG iteration.
    pub per_iteration_s: f64,
}

impl Default for ServiceModel {
    fn default() -> Self {
        ServiceModel {
            base_s: 1e-3,
            per_iteration_s: 5e-4,
        }
    }
}

impl ServiceModel {
    /// Virtual service time of a request that took `iterations` PCG
    /// iterations.
    pub fn service_s(&self, iterations: usize) -> f64 {
        self.base_s + iterations as f64 * self.per_iteration_s
    }
}

/// Configuration of [`run_open_loop`].
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Admission queue parameters (cap, deadline, tenant weights).
    pub traffic: TrafficConfig,
    /// Virtual drain cadence: a dispatch+drain round fires every this
    /// many virtual seconds.
    pub drain_every_s: f64,
    /// Requests dispatched (at most) per round — together with
    /// [`OpenLoopConfig::drain_every_s`] this fixes the service capacity
    /// at `drain_budget / drain_every_s` requests per virtual second.
    pub drain_budget: usize,
    /// The virtual service-time model.
    pub service: ServiceModel,
    /// Engine update configuration for churn batches.
    pub update: UpdateConfig,
    /// Whether to keep draining past the horizon until the queue empties
    /// (sheds expired requests on the way). The bounded front end flushes
    /// a residual of at most `max_pending`; switch this off to freeze an
    /// unbounded run's backlog at the horizon instead of solving it all.
    pub flush_after_horizon: bool,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            traffic: TrafficConfig::default(),
            drain_every_s: 0.05,
            drain_budget: 4,
            service: ServiceModel::default(),
            update: UpdateConfig::default(),
            flush_after_horizon: true,
        }
    }
}

impl OpenLoopConfig {
    /// The service capacity the cadence and budget imply (requests per
    /// virtual second). Offered load above this is overload.
    pub fn capacity_hz(&self) -> f64 {
        self.drain_budget as f64 / self.drain_every_s
    }
}

/// What one [`run_open_loop`] run did.
#[derive(Debug, Clone)]
pub struct TrafficReport {
    /// Admission-queue counters (offers, rejections, sheds, per-tenant
    /// dispatch shares, queue-wait histogram).
    pub traffic: TrafficStats,
    /// The solve service's lifetime counters for the run.
    pub solve: ConcurrentSolveStats,
    /// Requests completed (dispatched *and* solved).
    pub completed: usize,
    /// Admission→completion virtual latency of completed requests
    /// (queue wait + modeled service time).
    pub accepted_latency: LatencyHistogram,
    /// Requests still queued when the trace horizon was reached — the
    /// backlog signal: bounded runs hold this at or below the cap,
    /// unbounded overload grows it linearly with the horizon.
    pub pending_at_horizon: usize,
    /// The trace horizon (virtual seconds).
    pub horizon_s: f64,
    /// Churn batches applied to the engine.
    pub churn_batches_applied: usize,
    /// Non-empty dispatch+drain rounds executed (including the
    /// post-horizon flush).
    pub drain_rounds: usize,
    /// Requests that failed to converge (should be zero — snapshots
    /// precondition their own systems exactly).
    pub non_converged: usize,
    /// Real wall time of the whole run (informational only; never gate
    /// on this across machines).
    pub wall_seconds: f64,
}

impl TrafficReport {
    /// Requests that never reached the solver, as a fraction of offers.
    pub fn shed_fraction(&self) -> f64 {
        self.traffic.shed_fraction()
    }

    /// p99 of the accepted-request latency (virtual seconds).
    pub fn p99_s(&self) -> f64 {
        self.accepted_latency.p99()
    }
}

/// A queued solve request: the RHS plus the snapshot pinned at admission.
struct SolveJob {
    snapshot: Arc<SparsifierSnapshot>,
    laplacian: Arc<CsrMatrix>,
    rhs: Vec<f64>,
}

/// Deterministic unit-dipole RHS for a workload key: `+1`/`−1` on a
/// scrambled node pair, so equal keys are identical (hot) queries.
fn rhs_for_key(n: usize, key: u64) -> Vec<f64> {
    let u = (ingrass_par::derive_seed(key, 0) % n as u64) as usize;
    let mut v = (ingrass_par::derive_seed(key, 1) % n as u64) as usize;
    if v == u {
        v = (u + 1) % n;
    }
    let mut b = vec![0.0; n];
    b[u] = 1.0;
    b[v] = -1.0;
    b
}

/// Replays `events` (a [`WorkloadTrace`]'s schedule) against `engine`
/// through a bounded admission queue and a fresh
/// [`ConcurrentSolveService`], on a virtual clock.
///
/// * Solve arrivals are offered to the queue, pinned to the snapshot
///   current at admission (snapshot isolation — exactly what a reader
///   thread would hold).
/// * Churn arrivals apply the next batch of `churn_batches` (cycled) to
///   the engine, publishing new snapshot versions mid-traffic. With no
///   batches supplied, churn arrivals are ignored.
/// * Every [`OpenLoopConfig::drain_every_s`] virtual seconds, up to
///   [`OpenLoopConfig::drain_budget`] requests are dispatched
///   weighted-fairly (expired ones shed) and solved.
///
/// Returns the run's [`TrafficReport`]. Everything in it except
/// `wall_seconds` is a deterministic function of `(events,
/// churn_batches, cfg, engine state)` — independent of machine speed and
/// worker width.
///
/// # Errors
/// [`TrafficError::Config`] for a non-positive cadence/budget/horizon;
/// [`TrafficError::Engine`] / [`TrafficError::Solve`] if a churn batch
/// or submission fails.
///
/// [`WorkloadTrace`]: ingrass_gen::WorkloadTrace
pub fn run_open_loop(
    engine: &mut SnapshotEngine,
    churn_batches: &[Vec<UpdateOp>],
    events: &[TrafficEvent],
    horizon_s: f64,
    cfg: &OpenLoopConfig,
) -> Result<TrafficReport, TrafficError> {
    if !(cfg.drain_every_s.is_finite() && cfg.drain_every_s > 0.0) {
        return Err(TrafficError::Config(
            "drain cadence must be positive".into(),
        ));
    }
    if cfg.drain_budget == 0 {
        return Err(TrafficError::Config(
            "drain budget must be at least 1".into(),
        ));
    }
    if !(horizon_s.is_finite() && horizon_s > 0.0) {
        return Err(TrafficError::Config("horizon must be positive".into()));
    }
    let wall = Instant::now();
    let n = engine.snapshot().num_nodes();
    let svc = ConcurrentSolveService::new(SolveConfig::default());
    let mut queue: AdmissionQueue<SolveJob> = AdmissionQueue::new(cfg.traffic.clone());
    let mut meta: HashMap<Ticket, (f64, f64)> = HashMap::new(); // ticket → (admitted, waited)
    let mut accepted_latency = LatencyHistogram::new();
    let mut completed = 0usize;
    let mut non_converged = 0usize;
    let mut churn_applied = 0usize;
    let mut drain_rounds = 0usize;

    // The snapshot a solve arrival pins: refreshed after every churn
    // publish, shared (same Arc) between arrivals in between — so the
    // admission groups under churn are exactly the published versions.
    let mut snap = engine.snapshot();
    let mut lap = snap.laplacian_arc();

    let do_round = |queue: &mut AdmissionQueue<SolveJob>,
                    now_s: f64,
                    meta: &mut HashMap<Ticket, (f64, f64)>,
                    accepted_latency: &mut LatencyHistogram,
                    completed: &mut usize,
                    non_converged: &mut usize,
                    drain_rounds: &mut usize|
     -> Result<(), TrafficError> {
        let dispatched = queue.dispatch(now_s, cfg.drain_budget);
        if dispatched.is_empty() {
            return Ok(());
        }
        *drain_rounds += 1;
        for d in dispatched {
            let ticket = svc.submit(&d.payload.snapshot, &d.payload.laplacian, d.payload.rhs)?;
            meta.insert(ticket, (d.admitted_at_s, d.waited_s));
        }
        let round = svc.drain();
        for s in &round.served {
            let (_admitted, waited) = meta
                .remove(&s.ticket)
                .expect("every served ticket was submitted this round");
            accepted_latency.record(waited + cfg.service.service_s(s.result.iterations));
            *completed += 1;
            if !s.result.converged {
                *non_converged += 1;
            }
        }
        Ok(())
    };

    let mut next_drain = cfg.drain_every_s;
    for e in events {
        while next_drain <= e.at_s && next_drain <= horizon_s {
            do_round(
                &mut queue,
                next_drain,
                &mut meta,
                &mut accepted_latency,
                &mut completed,
                &mut non_converged,
                &mut drain_rounds,
            )?;
            next_drain += cfg.drain_every_s;
        }
        match e.kind {
            TrafficEventKind::Solve { tenant, key } => {
                let job = SolveJob {
                    snapshot: Arc::clone(&snap),
                    laplacian: Arc::clone(&lap),
                    rhs: rhs_for_key(n, key),
                };
                // A full queue is an accounted outcome, not an error.
                let _ = queue.offer(tenant, e.at_s, job);
            }
            TrafficEventKind::Churn { batch } => {
                if !churn_batches.is_empty() {
                    let ops = &churn_batches[batch % churn_batches.len()];
                    engine.apply_batch(ops, &cfg.update)?;
                    churn_applied += 1;
                    snap = engine.snapshot();
                    lap = snap.laplacian_arc();
                }
            }
        }
    }
    while next_drain <= horizon_s {
        do_round(
            &mut queue,
            next_drain,
            &mut meta,
            &mut accepted_latency,
            &mut completed,
            &mut non_converged,
            &mut drain_rounds,
        )?;
        next_drain += cfg.drain_every_s;
    }
    let pending_at_horizon = queue.pending();

    if cfg.flush_after_horizon {
        let mut t = next_drain;
        while queue.pending() > 0 {
            do_round(
                &mut queue,
                t,
                &mut meta,
                &mut accepted_latency,
                &mut completed,
                &mut non_converged,
                &mut drain_rounds,
            )?;
            t += cfg.drain_every_s;
        }
    }

    Ok(TrafficReport {
        traffic: queue.stats().clone(),
        solve: svc.stats(),
        completed,
        accepted_latency,
        pending_at_horizon,
        horizon_s,
        churn_batches_applied: churn_applied,
        drain_rounds,
        non_converged,
        wall_seconds: wall.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingrass::SetupConfig;
    use ingrass_gen::{
        grid_2d, ArrivalProcess, ChurnOp, ChurnStream, WeightModel, WorkloadConfig, WorkloadTrace,
    };

    fn to_update_ops(batch: &[ChurnOp]) -> Vec<UpdateOp> {
        batch
            .iter()
            .map(|op| match *op {
                ChurnOp::Insert(u, v, w) => UpdateOp::Insert { u, v, weight: w },
                ChurnOp::Delete(u, v) => UpdateOp::Delete { u, v },
                ChurnOp::Reweight(u, v, w) => UpdateOp::Reweight { u, v, weight: w },
            })
            .collect()
    }

    fn setup(seed: u64) -> (SnapshotEngine, Vec<Vec<UpdateOp>>) {
        let g = grid_2d(8, 8, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, seed);
        let engine = SnapshotEngine::setup(&g, &SetupConfig::default()).unwrap();
        let churn = ChurnStream::generate(
            &g,
            &ingrass_gen::ChurnConfig {
                batches: 4,
                ops_per_batch: 3,
                seed,
                ..Default::default()
            },
        );
        let batches = churn.batches().iter().map(|b| to_update_ops(b)).collect();
        (engine, batches)
    }

    fn overload_trace(seed: u64) -> (WorkloadTrace, f64) {
        let horizon = 2.0;
        let trace = WorkloadTrace::generate(&WorkloadConfig {
            duration_s: horizon,
            arrivals: ArrivalProcess::Poisson { rate_hz: 160.0 },
            tenants: 3,
            churn_fraction: 0.03,
            seed,
            ..Default::default()
        });
        (trace, horizon)
    }

    fn bounded_cfg() -> OpenLoopConfig {
        OpenLoopConfig {
            traffic: TrafficConfig {
                max_pending: 32,
                deadline_s: 0.3,
                tenant_weights: vec![2.0, 1.0, 1.0],
            },
            drain_every_s: 0.05,
            drain_budget: 4, // capacity 80 req/s vs 160 offered → 2× overload
            ..Default::default()
        }
    }

    #[test]
    fn bounded_overload_sheds_and_keeps_latency_bounded() {
        let (mut engine, batches) = setup(11);
        let (trace, horizon) = overload_trace(11);
        let cfg = bounded_cfg();
        let report = run_open_loop(&mut engine, &batches, trace.events(), horizon, &cfg).unwrap();
        assert!(report.completed > 50, "completed {}", report.completed);
        assert_eq!(report.non_converged, 0);
        // 2× overload must shed roughly half the offered load.
        let shed = report.shed_fraction();
        assert!(shed > 0.3 && shed < 0.7, "shed fraction {shed}");
        assert!(report.pending_at_horizon <= cfg.traffic.max_pending);
        // Accepted latency is bounded by deadline + one cadence + max
        // service time — far below what the backlog would impose
        // unbounded.
        let p99 = report.p99_s();
        assert!(p99 > 0.0 && p99 < 1.0, "p99 {p99}");
        assert!(report.churn_batches_applied > 0);
        // Both rejection modes occur under sustained overload.
        assert!(report.traffic.rejected_full > 0);
        assert!(report.traffic.shed_deadline > 0);
    }

    #[test]
    fn unbounded_mode_grows_backlog_without_shedding() {
        let (mut engine, batches) = setup(11);
        let (trace, horizon) = overload_trace(11);
        let mut cfg = bounded_cfg();
        cfg.traffic.max_pending = usize::MAX;
        cfg.traffic.deadline_s = f64::INFINITY;
        cfg.flush_after_horizon = false;
        let report = run_open_loop(&mut engine, &batches, trace.events(), horizon, &cfg).unwrap();
        assert_eq!(report.traffic.rejected_full, 0);
        assert_eq!(report.traffic.shed_deadline, 0);
        // Offered ≈ 2× capacity: the backlog at the horizon is about
        // (λ − C)·T ≈ 160 requests — far above the bounded cap.
        assert!(
            report.pending_at_horizon > 3 * 32,
            "backlog {} did not grow",
            report.pending_at_horizon
        );
    }

    #[test]
    fn report_is_deterministic_at_fixed_seed_and_any_width() {
        let key = |r: &TrafficReport| {
            (
                r.completed,
                r.traffic.rejected_full,
                r.traffic.shed_deadline,
                r.pending_at_horizon,
                r.accepted_latency,
                r.traffic.per_tenant_dispatched.clone(),
            )
        };
        let run = || {
            let (mut engine, batches) = setup(23);
            let (trace, horizon) = overload_trace(23);
            run_open_loop(
                &mut engine,
                &batches,
                trace.events(),
                horizon,
                &bounded_cfg(),
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(key(&a), key(&b));
        assert_eq!(a.p99_s(), b.p99_s());
    }

    #[test]
    fn drain_tick_on_the_exact_deadline_serves_under_the_virtual_clock() {
        // The virtual clock hands its tick times straight to
        // AdmissionQueue::dispatch, so the queue's inclusive-deadline
        // choice must hold here too: a request admitted at 0.0 with a
        // 0.25 s deadline is reached by the tick at exactly 0.25 (all
        // times exactly representable) and must complete, while a
        // request whose deadline falls strictly between ticks sheds.
        let (mut engine, _) = setup(7);
        let cfg = OpenLoopConfig {
            traffic: TrafficConfig {
                max_pending: 16,
                deadline_s: 0.25,
                tenant_weights: vec![1.0],
            },
            drain_every_s: 0.25,
            drain_budget: 1,
            flush_after_horizon: true,
            ..Default::default()
        };
        let solve = |at_s: f64| TrafficEvent {
            at_s,
            kind: TrafficEventKind::Solve { tenant: 0, key: 1 },
        };
        // "A" admitted at 0.0: deadline exactly on the first tick (0.25)
        // → served there (budget 1 leaves "B" queued). "B" admitted at
        // 0.125: deadline 0.375 < second tick 0.5 → shed.
        let events = [solve(0.0), solve(0.125)];
        let report = run_open_loop(&mut engine, &[], &events, 0.5, &cfg).unwrap();
        assert_eq!(report.completed, 1, "the exact-deadline request serves");
        assert_eq!(report.traffic.shed_deadline, 1);
        assert_eq!(report.traffic.rejected_full, 0);
        // Its queue wait is the full deadline: admitted 0.0, served 0.25.
        assert_eq!(report.traffic.queue_wait.count(), 1);
        assert!((report.traffic.queue_wait.quantile(1.0) - 0.25).abs() < 0.25 * 0.4);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let (mut engine, _) = setup(3);
        let bad = OpenLoopConfig {
            drain_budget: 0,
            ..Default::default()
        };
        assert!(matches!(
            run_open_loop(&mut engine, &[], &[], 1.0, &bad),
            Err(TrafficError::Config(_))
        ));
        let bad = OpenLoopConfig {
            drain_every_s: 0.0,
            ..Default::default()
        };
        assert!(matches!(
            run_open_loop(&mut engine, &[], &[], 1.0, &bad),
            Err(TrafficError::Config(_))
        ));
    }
}
