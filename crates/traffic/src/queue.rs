//! The bounded admission queue: per-tenant FIFO lanes, deficit
//! round-robin weighted-fair dispatch, and deadline shedding.

use ingrass_metrics::LatencyHistogram;
use std::collections::VecDeque;

/// Configuration of an [`AdmissionQueue`].
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Admission cap: once this many requests are pending, further offers
    /// are rejected with [`Rejected::Full`]. Use `usize::MAX` for the
    /// legacy unbounded mode.
    pub max_pending: usize,
    /// Per-request deadline (seconds after admission). A request still
    /// queued when its deadline passes is shed at dispatch time —
    /// *before* it burns any solver time. Use `f64::INFINITY` to disable
    /// shedding.
    ///
    /// The deadline is **inclusive**: a request reached by a dispatch at
    /// *exactly* `admitted_at + deadline_s` is served; it sheds only
    /// strictly later. `run_open_loop`'s virtual drain clock inherits
    /// this fate verbatim (it passes its tick time straight to
    /// [`AdmissionQueue::dispatch`]), so a drain tick landing on a
    /// deadline serves the request under both clocks — pinned by tests
    /// at both layers, because seed-pinned shed counts would silently
    /// flip if a refactor turned the comparison into `>=`.
    pub deadline_s: f64,
    /// Weighted-fair share per tenant; a tenant with weight 2 drains
    /// twice as fast as one with weight 1 when both have backlog. The
    /// length fixes the tenant count; all weights must be positive.
    pub tenant_weights: Vec<f64>,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            max_pending: 256,
            deadline_s: 1.0,
            tenant_weights: vec![1.0; 4],
        }
    }
}

/// Why a request did not reach the solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Rejected {
    /// The queue was at [`TrafficConfig::max_pending`]; the request was
    /// turned away at admission.
    Full {
        /// Requests pending when the offer arrived.
        pending: usize,
    },
    /// The request was admitted but its deadline passed before dispatch;
    /// it was dropped from the queue without solving.
    DeadlineExceeded {
        /// How far past the deadline the dispatch attempt was (seconds).
        late_by_s: f64,
    },
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::Full { pending } => write!(f, "queue full ({pending} pending)"),
            Rejected::DeadlineExceeded { late_by_s } => {
                write!(f, "deadline exceeded ({late_by_s:.3}s late)")
            }
        }
    }
}

/// Counters of an [`AdmissionQueue`], updated on offer/dispatch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrafficStats {
    /// Requests offered (admitted + rejected).
    pub offered: usize,
    /// Requests admitted into the queue.
    pub admitted: usize,
    /// Offers rejected at the [`TrafficConfig::max_pending`] cap.
    pub rejected_full: usize,
    /// Admitted requests shed at dispatch because their deadline passed.
    pub shed_deadline: usize,
    /// Requests handed to the caller by [`AdmissionQueue::dispatch`].
    pub dispatched: usize,
    /// Dispatches per tenant (weighted-fair share audit).
    pub per_tenant_dispatched: Vec<usize>,
    /// Admission→dispatch queue wait of dispatched requests (virtual
    /// seconds, so deterministic for a deterministic drive loop).
    pub queue_wait: LatencyHistogram,
    /// High-water mark of the pending count.
    pub max_pending_seen: usize,
}

impl TrafficStats {
    /// Requests that never reached the solver, as a fraction of offers
    /// (`0` when nothing was offered).
    pub fn shed_fraction(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            (self.rejected_full + self.shed_deadline) as f64 / self.offered as f64
        }
    }
}

struct Item<T> {
    admitted_at_s: f64,
    deadline_at_s: f64,
    payload: T,
}

/// A request handed out by [`AdmissionQueue::dispatch`].
#[derive(Debug, Clone, PartialEq)]
pub struct Dispatched<T> {
    /// The tenant whose lane it came from.
    pub tenant: usize,
    /// Virtual admission timestamp.
    pub admitted_at_s: f64,
    /// Admission→dispatch wait (virtual seconds).
    pub waited_s: f64,
    /// The caller's payload.
    pub payload: T,
}

/// A bounded, deadline-aware, weighted-fair admission queue.
///
/// Admission ([`offer`](AdmissionQueue::offer)) is O(1): a full queue
/// rejects immediately. Dispatch walks the tenant lanes with **deficit
/// round-robin**: each visit tops a lane's deficit up by its weight and
/// pops requests at unit cost while the deficit lasts, so long-run
/// dispatch shares converge to the weight vector whenever lanes stay
/// backlogged — no tenant can starve another regardless of how skewed
/// the arrival mix is. Requests whose deadline has passed are shed during
/// the pop *without* consuming deficit or dispatch budget: expired work
/// never reaches the solver and never counts against its tenant's share.
///
/// The queue is single-threaded on purpose — the drive loop owns it, and
/// everything it does is a deterministic function of the offer/dispatch
/// call sequence; the concurrency lives behind it in
/// `ingrass_solve::ConcurrentSolveService`.
///
/// # Example
/// ```
/// use ingrass_traffic::{AdmissionQueue, Rejected, TrafficConfig};
/// let mut q = AdmissionQueue::new(TrafficConfig {
///     max_pending: 2,
///     deadline_s: 0.5,
///     tenant_weights: vec![1.0, 1.0],
/// });
/// q.offer(0, 0.0, "a").unwrap();
/// q.offer(1, 0.1, "b").unwrap();
/// assert!(matches!(q.offer(0, 0.2, "c"), Err(Rejected::Full { pending: 2 })));
/// // "a" expires at 0.5, "b" at 0.6: dispatching at 0.55 sheds "a".
/// let round = q.dispatch(0.55, 8);
/// assert_eq!(round.iter().map(|d| d.payload).collect::<Vec<_>>(), ["b"]);
/// assert_eq!(q.stats().shed_deadline, 1);
/// assert_eq!(q.pending(), 0);
/// ```
pub struct AdmissionQueue<T> {
    cfg: TrafficConfig,
    lanes: Vec<VecDeque<Item<T>>>,
    deficits: Vec<f64>,
    cursor: usize,
    pending: usize,
    stats: TrafficStats,
}

impl<T> AdmissionQueue<T> {
    /// An empty queue under `cfg`.
    ///
    /// # Panics
    /// Panics if `cfg` has no tenants, a non-positive weight, a
    /// non-positive deadline, or a zero cap.
    pub fn new(cfg: TrafficConfig) -> Self {
        assert!(!cfg.tenant_weights.is_empty(), "need at least one tenant");
        assert!(
            cfg.tenant_weights.iter().all(|&w| w.is_finite() && w > 0.0),
            "tenant weights must be positive"
        );
        assert!(cfg.deadline_s > 0.0, "deadline must be positive");
        assert!(cfg.max_pending > 0, "cap must admit at least one request");
        let tenants = cfg.tenant_weights.len();
        AdmissionQueue {
            cfg,
            lanes: (0..tenants).map(|_| VecDeque::new()).collect(),
            deficits: vec![0.0; tenants],
            cursor: 0,
            pending: 0,
            stats: TrafficStats {
                per_tenant_dispatched: vec![0; tenants],
                ..TrafficStats::default()
            },
        }
    }

    /// The configuration the queue runs under.
    pub fn config(&self) -> &TrafficConfig {
        &self.cfg
    }

    /// Requests currently queued (an O(1) counter).
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// The counters so far.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Offers one request from `tenant` at virtual time `now_s`.
    ///
    /// # Errors
    /// [`Rejected::Full`] if the queue is at its cap — the request is
    /// counted and dropped, never queued.
    ///
    /// # Panics
    /// Panics if `tenant` is out of range.
    pub fn offer(&mut self, tenant: usize, now_s: f64, payload: T) -> Result<(), Rejected> {
        assert!(tenant < self.lanes.len(), "tenant {tenant} out of range");
        self.stats.offered += 1;
        if self.pending >= self.cfg.max_pending {
            self.stats.rejected_full += 1;
            return Err(Rejected::Full {
                pending: self.pending,
            });
        }
        self.lanes[tenant].push_back(Item {
            admitted_at_s: now_s,
            deadline_at_s: now_s + self.cfg.deadline_s,
            payload,
        });
        self.pending += 1;
        self.stats.admitted += 1;
        self.stats.max_pending_seen = self.stats.max_pending_seen.max(self.pending);
        Ok(())
    }

    /// Dispatches up to `budget` requests at virtual time `now_s` in
    /// deficit-round-robin order, shedding expired requests along the way
    /// (shed requests cost neither deficit nor budget). Deadlines are
    /// inclusive — a request whose deadline equals `now_s` exactly is
    /// still served (see [`TrafficConfig::deadline_s`]). Returns the
    /// dispatched requests in dispatch order.
    pub fn dispatch(&mut self, now_s: f64, budget: usize) -> Vec<Dispatched<T>> {
        let tenants = self.lanes.len();
        let mut out = Vec::new();
        if budget == 0 {
            return out;
        }
        // The DRR sweep terminates: every cycle adds each backlogged
        // lane's (positive) weight to its deficit, so within ⌈1/w⌉
        // cycles the lane pops — dispatching or shedding — and the
        // pending count strictly falls.
        while self.pending > 0 && out.len() < budget {
            for _ in 0..tenants {
                let t = self.cursor;
                self.cursor = (self.cursor + 1) % tenants;
                if self.lanes[t].is_empty() {
                    // An idle lane holds no credit — deficits only
                    // accumulate against live backlog.
                    self.deficits[t] = 0.0;
                    continue;
                }
                self.deficits[t] += self.cfg.tenant_weights[t];
                while self.deficits[t] >= 1.0 && out.len() < budget {
                    let Some(item) = self.lanes[t].pop_front() else {
                        break;
                    };
                    self.pending -= 1;
                    // Strict `>`: the deadline instant itself still
                    // serves. Seed-pinned shed counts depend on this
                    // choice — don't flip it to `>=`.
                    if now_s > item.deadline_at_s {
                        self.stats.shed_deadline += 1;
                        continue;
                    }
                    self.deficits[t] -= 1.0;
                    let waited_s = now_s - item.admitted_at_s;
                    self.stats.dispatched += 1;
                    self.stats.per_tenant_dispatched[t] += 1;
                    self.stats.queue_wait.record(waited_s);
                    out.push(Dispatched {
                        tenant: t,
                        admitted_at_s: item.admitted_at_s,
                        waited_s,
                        payload: item.payload,
                    });
                }
                if self.lanes[t].is_empty() {
                    self.deficits[t] = 0.0;
                }
                if out.len() >= budget {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(max_pending: usize, deadline_s: f64, weights: &[f64]) -> TrafficConfig {
        TrafficConfig {
            max_pending,
            deadline_s,
            tenant_weights: weights.to_vec(),
        }
    }

    #[test]
    fn cap_rejects_and_counts_without_queueing() {
        let mut q = AdmissionQueue::new(cfg(3, 1.0, &[1.0]));
        for k in 0..5 {
            let r = q.offer(0, k as f64 * 0.01, k);
            if k < 3 {
                r.unwrap();
            } else {
                assert_eq!(r, Err(Rejected::Full { pending: 3 }));
            }
        }
        assert_eq!(q.pending(), 3);
        let s = q.stats();
        assert_eq!((s.offered, s.admitted, s.rejected_full), (5, 3, 2));
        assert_eq!(s.max_pending_seen, 3);
        // FIFO within a lane.
        let round = q.dispatch(0.1, 10);
        assert_eq!(
            round.iter().map(|d| d.payload).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn expired_requests_are_shed_before_dispatch() {
        let mut q = AdmissionQueue::new(cfg(16, 0.2, &[1.0]));
        q.offer(0, 0.0, "old").unwrap();
        q.offer(0, 0.5, "fresh").unwrap();
        let round = q.dispatch(0.6, 10);
        assert_eq!(round.len(), 1);
        assert_eq!(round[0].payload, "fresh");
        assert!((round[0].waited_s - 0.1).abs() < 1e-12);
        assert_eq!(q.stats().shed_deadline, 1);
        assert_eq!(q.stats().dispatched, 1);
        assert_eq!(q.stats().queue_wait.count(), 1);
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn exact_deadline_request_is_served_not_shed() {
        // 0.25 and 0.0 are exactly representable, so the item's deadline
        // is *bit-exactly* 0.25 — the boundary case, not merely near it.
        let mut q = AdmissionQueue::new(cfg(16, 0.25, &[1.0]));
        q.offer(0, 0.0, "boundary").unwrap();
        let round = q.dispatch(0.25, 10);
        assert_eq!(round.len(), 1, "deadline instant must serve, not shed");
        assert_eq!(round[0].payload, "boundary");
        assert_eq!(q.stats().shed_deadline, 0);

        // One ulp past the deadline sheds.
        q.offer(0, 0.0, "late").unwrap();
        let after = f64::from_bits(0.25f64.to_bits() + 1);
        assert!(q.dispatch(after, 10).is_empty());
        assert_eq!(q.stats().shed_deadline, 1);
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn drr_dispatch_tracks_the_weight_vector() {
        // Tenant 0 weight 2, tenants 1/2 weight 1; all lanes deeply
        // backlogged — dispatch shares must approach 50/25/25.
        let mut q = AdmissionQueue::new(cfg(usize::MAX, f64::INFINITY, &[2.0, 1.0, 1.0]));
        for k in 0..100 {
            for t in 0..3 {
                q.offer(t, k as f64 * 1e-3, (t, k)).unwrap();
            }
        }
        let round = q.dispatch(0.2, 80);
        assert_eq!(round.len(), 80);
        let mut per = [0usize; 3];
        for d in &round {
            per[d.tenant] += 1;
        }
        assert_eq!(per[0], 40, "weight-2 tenant gets half: {per:?}");
        assert_eq!(per[1], 20);
        assert_eq!(per[2], 20);
        // And the stats agree.
        assert_eq!(q.stats().per_tenant_dispatched, vec![40, 20, 20]);
    }

    #[test]
    fn no_tenant_starves_under_extreme_skew() {
        // Tenant 0 floods; tenant 1 trickles. Equal weights: tenant 1's
        // few requests must all dispatch in the first rounds.
        let mut q = AdmissionQueue::new(cfg(usize::MAX, f64::INFINITY, &[1.0, 1.0]));
        for k in 0..500 {
            q.offer(0, k as f64 * 1e-3, ()).unwrap();
        }
        for k in 0..5 {
            q.offer(1, k as f64 * 1e-3, ()).unwrap();
        }
        let round = q.dispatch(1.0, 20);
        let t1 = round.iter().filter(|d| d.tenant == 1).count();
        assert_eq!(t1, 5, "the trickle tenant drains fully in one round");
        assert_eq!(round.len(), 20);
    }

    #[test]
    fn fractional_weights_still_make_progress() {
        let mut q = AdmissionQueue::new(cfg(usize::MAX, f64::INFINITY, &[0.25]));
        for k in 0..8 {
            q.offer(0, k as f64, ()).unwrap();
        }
        // Weight 0.25 needs 4 cycles per dispatch, but the sweep loops
        // until the budget is met.
        let round = q.dispatch(10.0, 8);
        assert_eq!(round.len(), 8);
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn unbounded_mode_admits_everything() {
        let mut q = AdmissionQueue::new(cfg(usize::MAX, f64::INFINITY, &[1.0]));
        for k in 0..10_000 {
            q.offer(0, k as f64 * 1e-4, ()).unwrap();
        }
        assert_eq!(q.pending(), 10_000);
        assert_eq!(q.stats().rejected_full, 0);
        assert_eq!(q.stats().shed_deadline, 0);
        assert_eq!(q.stats().max_pending_seen, 10_000);
    }

    #[test]
    fn budget_zero_is_a_noop() {
        let mut q = AdmissionQueue::new(cfg(8, 1.0, &[1.0]));
        q.offer(0, 0.0, ()).unwrap();
        assert!(q.dispatch(0.1, 0).is_empty());
        assert_eq!(q.pending(), 1);
    }

    #[test]
    fn shed_fraction_counts_both_outcomes() {
        let mut q = AdmissionQueue::new(cfg(2, 0.1, &[1.0]));
        q.offer(0, 0.0, ()).unwrap();
        q.offer(0, 0.0, ()).unwrap();
        let _ = q.offer(0, 0.0, ()); // Full
        q.dispatch(1.0, 10); // both expired → shed
        let s = q.stats();
        assert_eq!(s.rejected_full, 1);
        assert_eq!(s.shed_deadline, 2);
        assert_eq!(s.dispatched, 0);
        assert!((s.shed_fraction() - 1.0).abs() < 1e-12);
    }
}
