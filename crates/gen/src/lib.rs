//! Workload generators for the inGRASS reproduction.
//!
//! The paper evaluates on SuiteSparse matrices (circuit grids, finite-element
//! meshes, Delaunay triangulations) that we cannot redistribute; this crate
//! generates seeded synthetic graphs of the *same structural classes* so
//! every experiment exercises the identical code paths (see DESIGN.md §4 for
//! the substitution table):
//!
//! * [`power_grid`] — multi-layer IC power-distribution grids with vias and
//!   bimodal conductances (`G2_circuit` / `G3_circuit` analogues).
//! * [`delaunay`] — true Bowyer–Watson Delaunay triangulation of seeded
//!   random points (`delaunay_n18 … n22` analogues).
//! * [`sphere_mesh`], [`ocean_mesh`], [`airfoil_mesh`] — finite-element
//!   triangulations (`fe_sphere`, `fe_ocean`, `fe_4elt2` / `NACA15` / `M6`
//!   analogues).
//! * [`rmat`], [`barabasi_albert`] — heavy-tailed "social network" graphs.
//! * [`TestCase`] — the registry mirroring the paper's 14 benchmark rows
//!   with a scale knob.
//! * [`InsertionStream`] — seeded batches of new edges for the 10-iteration
//!   incremental-update experiments (Tables II/III, Fig. 4).
//! * [`ChurnStream`] — seeded fully-dynamic batches mixing insertions,
//!   deletions, and reweights (ECO rip-up, unfollow, coarsening workloads)
//!   with a protected spanning tree so every prefix stays connected.
//! * [`WorkloadTrace`] — seeded open-loop arrival schedules (Poisson and
//!   burst processes, hot-tenant/hot-key skew) that mix reader solves
//!   with writer churn for the traffic front end.
//!
//! Every generator takes an explicit seed and is fully deterministic.
//!
//! # Example
//!
//! ```
//! use ingrass_gen::{delaunay, DelaunayConfig};
//! use ingrass_graph::is_connected;
//!
//! let g = delaunay(&DelaunayConfig { points: 200, seed: 7, ..Default::default() }).unwrap();
//! assert!(is_connected(&g));
//! // Planar triangulations have |E| ≤ 3|V| − 6.
//! assert!(g.num_edges() <= 3 * g.num_nodes() - 6);
//! ```

#![deny(missing_docs)]

mod delaunay;
mod grid;
mod mesh;
mod social;
mod stream;
mod suite;
mod workload;

pub use delaunay::{delaunay, delaunay_points, DelaunayConfig, PointDistribution};
pub use grid::{grid_2d, power_grid, PowerGridConfig, WeightModel};
pub use mesh::{airfoil_mesh, ocean_mesh, sphere_mesh, AirfoilConfig, OceanConfig, SphereConfig};
pub use social::{barabasi_albert, rmat, BaConfig, RmatConfig};
pub use stream::{ChurnConfig, ChurnOp, ChurnStream, InsertionStream, ShardSkew, StreamConfig};
pub use suite::{paper_suite, TestCase};
pub use workload::{ArrivalProcess, TrafficEvent, TrafficEventKind, WorkloadConfig, WorkloadTrace};
