//! Power-grid and lattice generators (`G2_circuit` / `G3_circuit`
//! analogues).

use ingrass_graph::{Graph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// How edge weights (conductances) are assigned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightModel {
    /// All weights 1 (pattern-only matrices like `delaunay_nXX`).
    Unit,
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Lower bound (must be positive).
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Log-uniform over `[lo, hi]` — heavy spread typical of extracted
    /// parasitic networks.
    LogUniform {
        /// Lower bound (must be positive).
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
}

impl WeightModel {
    pub(crate) fn sample(&self, rng: &mut StdRng) -> f64 {
        match *self {
            WeightModel::Unit => 1.0,
            WeightModel::Uniform { lo, hi } => lo + (hi - lo) * rng.random::<f64>(),
            WeightModel::LogUniform { lo, hi } => {
                (lo.ln() + (hi.ln() - lo.ln()) * rng.random::<f64>()).exp()
            }
        }
    }
}

/// Configuration for [`power_grid`].
///
/// Models an on-chip power-distribution network: each metal layer is a set
/// of parallel rails (alternating preferred routing direction per layer),
/// adjacent layers are stitched by vias on a coarser pitch, and upper layers
/// use wider wires (higher conductance). The resulting graph matches the
/// structure class of `G2_circuit` / `G3_circuit`: near-planar, average
/// degree ≈ 4, bimodal weights.
#[derive(Debug, Clone)]
pub struct PowerGridConfig {
    /// Rails per layer in the x direction.
    pub width: usize,
    /// Rails per layer in the y direction.
    pub height: usize,
    /// Number of metal layers (≥ 1).
    pub layers: usize,
    /// Via pitch: every `via_pitch`-th crossing gets a via to the layer
    /// above.
    pub via_pitch: usize,
    /// Conductance of a wire segment on layer 0 (scaled ×2 per layer up).
    pub segment_conductance: f64,
    /// Conductance of a via.
    pub via_conductance: f64,
    /// Cross-direction strap conductance as a fraction of the preferred
    /// direction (real PDN layers carry thin cross-straps; this also puts
    /// the |E|/|V| ratio at the G2_circuit level of ≈ 2).
    pub cross_factor: f64,
    /// Relative jitter applied to every conductance (process variation).
    pub jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PowerGridConfig {
    fn default() -> Self {
        PowerGridConfig {
            width: 64,
            height: 64,
            layers: 2,
            via_pitch: 4,
            segment_conductance: 1.0,
            via_conductance: 10.0,
            cross_factor: 0.15,
            jitter: 0.2,
            seed: 1,
        }
    }
}

/// Generates a multi-layer power-grid graph.
///
/// Nodes are grid crossings `(layer, y, x)`, numbered layer-major. Layer
/// `ℓ` routes horizontally when `ℓ` is even, vertically when odd — each
/// layer only connects crossings along its preferred direction, and vias
/// join the layers. The graph is connected for `via_pitch ≤ min(width,
/// height)` (checked by tests, not enforced).
///
/// # Panics
/// Panics if `width`, `height`, or `layers` is zero.
pub fn power_grid(cfg: &PowerGridConfig) -> Graph {
    assert!(cfg.width > 0 && cfg.height > 0 && cfg.layers > 0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let (w, h, l) = (cfg.width, cfg.height, cfg.layers);
    let nodes_per_layer = w * h;
    let n = nodes_per_layer * l;
    let id = |layer: usize, y: usize, x: usize| layer * nodes_per_layer + y * w + x;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    let jittered = |base: f64, rng: &mut StdRng| {
        let j = 1.0 + cfg.jitter * (2.0 * rng.random::<f64>() - 1.0);
        (base * j).max(1e-9)
    };
    for layer in 0..l {
        let cond = cfg.segment_conductance * (1u64 << layer.min(20)) as f64;
        let horizontal = layer % 2 == 0;
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    let base = if horizontal {
                        cond
                    } else {
                        cond * cfg.cross_factor
                    };
                    let wgt = jittered(base, &mut rng);
                    b.add_edge(id(layer, y, x), id(layer, y, x + 1), wgt)
                        .expect("grid indices valid");
                }
                if y + 1 < h {
                    let base = if horizontal {
                        cond * cfg.cross_factor
                    } else {
                        cond
                    };
                    let wgt = jittered(base, &mut rng);
                    b.add_edge(id(layer, y, x), id(layer, y + 1, x), wgt)
                        .expect("grid indices valid");
                }
                // Vias up wherever either coordinate sits on the via grid:
                // every horizontal rail reaches the x ≡ 0 column rails and
                // every vertical rail reaches the y ≡ 0 row rails, which
                // keeps the two layers globally connected at any pitch.
                if layer + 1 < l && (x % cfg.via_pitch == 0 || y % cfg.via_pitch == 0) {
                    let wgt = jittered(cfg.via_conductance, &mut rng);
                    b.add_edge(id(layer, y, x), id(layer + 1, y, x), wgt)
                        .expect("grid indices valid");
                }
            }
        }
    }
    b.build()
}

/// A plain 2-D grid graph with the given weight model — the workhorse for
/// unit tests across the workspace.
///
/// # Panics
/// Panics if `width` or `height` is zero.
pub fn grid_2d(width: usize, height: usize, weights: WeightModel, seed: u64) -> Graph {
    assert!(width > 0 && height > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = width * height;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for y in 0..height {
        for x in 0..width {
            let u = y * width + x;
            if x + 1 < width {
                b.add_edge(u, u + 1, weights.sample(&mut rng))
                    .expect("grid indices valid");
            }
            if y + 1 < height {
                b.add_edge(u, u + width, weights.sample(&mut rng))
                    .expect("grid indices valid");
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingrass_graph::is_connected;

    #[test]
    fn grid_2d_counts() {
        let g = grid_2d(5, 4, WeightModel::Unit, 0);
        assert_eq!(g.num_nodes(), 20);
        assert_eq!(g.num_edges(), 4 * 4 + 5 * 3); // horizontal + vertical
        assert!(is_connected(&g));
    }

    #[test]
    fn weight_models_produce_expected_ranges() {
        let g = grid_2d(10, 10, WeightModel::Uniform { lo: 2.0, hi: 3.0 }, 1);
        for e in g.edges() {
            assert!(e.weight >= 2.0 && e.weight <= 3.0);
        }
        let g = grid_2d(10, 10, WeightModel::LogUniform { lo: 0.1, hi: 10.0 }, 1);
        for e in g.edges() {
            assert!(e.weight >= 0.1 && e.weight <= 10.0);
        }
    }

    #[test]
    fn power_grid_is_connected_with_expected_density() {
        let g = power_grid(&PowerGridConfig::default());
        assert_eq!(g.num_nodes(), 64 * 64 * 2);
        assert!(is_connected(&g));
        // |E|/|V| close to the G2_circuit ratio (~1.9): rails + straps ≈ 2
        // per node, plus sparse vias.
        let ratio = g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(ratio > 1.6 && ratio < 2.6, "ratio {ratio}");
    }

    #[test]
    fn power_grid_single_layer_connected() {
        let g = power_grid(&PowerGridConfig {
            layers: 1,
            width: 16,
            height: 16,
            ..Default::default()
        });
        assert!(is_connected(&g));
    }

    #[test]
    fn power_grid_has_bimodal_weights() {
        let cfg = PowerGridConfig {
            jitter: 0.0,
            ..Default::default()
        };
        let g = power_grid(&cfg);
        let heavy = g.edges().iter().filter(|e| e.weight >= 5.0).count();
        let light = g.edges().iter().filter(|e| e.weight < 5.0).count();
        assert!(heavy > 0 && light > 0);
        // Cross-straps are the lightest class.
        let straps = g.edges().iter().filter(|e| e.weight < 0.5).count();
        assert!(straps > 0);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = power_grid(&PowerGridConfig::default());
        let b = power_grid(&PowerGridConfig::default());
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.edges()[0].weight, b.edges()[0].weight);
    }
}
