//! Bowyer–Watson Delaunay triangulation (`delaunay_nXX` analogues).
//!
//! A real incremental Delaunay triangulation with triangle-adjacency
//! walking point location and Morton-order insertion — expected near-linear
//! time, comfortably handling the hundreds of thousands of points the
//! scaled benchmark suite uses (and the paper-scale millions in release
//! builds, given patience).

use crate::grid::WeightModel;
use ingrass_graph::{Graph, GraphBuilder, GraphError};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

const NONE: u32 = u32::MAX;

/// How sample points are distributed in the unit square.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PointDistribution {
    /// i.i.d. uniform — the distribution behind the SuiteSparse
    /// `delaunay_nXX` matrices.
    #[default]
    Uniform,
    /// Density graded towards the centre (mesh-refinement look, like the
    /// airfoil/wing meshes `NACA15`, `M6`).
    CenterGraded,
}

/// Configuration for [`delaunay`].
#[derive(Debug, Clone)]
pub struct DelaunayConfig {
    /// Number of points (= nodes).
    pub points: usize,
    /// Spatial distribution of the points.
    pub distribution: PointDistribution,
    /// Edge weight model (defaults to unit weights, matching the pattern
    /// matrices).
    pub weights: WeightModel,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DelaunayConfig {
    fn default() -> Self {
        DelaunayConfig {
            points: 1024,
            distribution: PointDistribution::Uniform,
            weights: WeightModel::Unit,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Tri {
    /// Vertices, counter-clockwise.
    v: [u32; 3],
    /// `n[i]` is the neighbour across the edge opposite `v[i]`.
    n: [u32; 3],
    alive: bool,
}

#[inline]
fn orient(a: (f64, f64), b: (f64, f64), c: (f64, f64)) -> f64 {
    (b.0 - a.0) * (c.1 - a.1) - (b.1 - a.1) * (c.0 - a.0)
}

#[inline]
fn in_circumcircle(a: (f64, f64), b: (f64, f64), c: (f64, f64), p: (f64, f64)) -> bool {
    // For CCW (a, b, c): positive determinant ⇔ p strictly inside.
    let (ax, ay) = (a.0 - p.0, a.1 - p.1);
    let (bx, by) = (b.0 - p.0, b.1 - p.1);
    let (cx, cy) = (c.0 - p.0, c.1 - p.1);
    let det = (ax * ax + ay * ay) * (bx * cy - by * cx) - (bx * bx + by * by) * (ax * cy - ay * cx)
        + (cx * cx + cy * cy) * (ax * by - ay * bx);
    det > 0.0
}

/// Interleaves the low 16 bits of x and y (Morton code) for insertion
/// locality.
fn morton(x: u16, y: u16) -> u32 {
    fn spread(mut v: u32) -> u32 {
        v &= 0xffff;
        v = (v | (v << 8)) & 0x00ff00ff;
        v = (v | (v << 4)) & 0x0f0f0f0f;
        v = (v | (v << 2)) & 0x33333333;
        v = (v | (v << 1)) & 0x55555555;
        v
    }
    spread(x as u32) | (spread(y as u32) << 1)
}

/// Core incremental triangulation. Returns the CCW triangles over
/// `points` (indices into the slice).
///
/// Used by [`delaunay`] and by the mesh generators in
/// [`crate::airfoil_mesh`] / [`crate::ocean_mesh`] which post-filter
/// triangles against hole geometry.
pub(crate) fn triangulate(points: &[(f64, f64)]) -> Vec<[u32; 3]> {
    let n = points.len();
    if n < 3 {
        return Vec::new();
    }
    // Bounding box → generous super-triangle.
    let (mut xmin, mut ymin) = (f64::INFINITY, f64::INFINITY);
    let (mut xmax, mut ymax) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for &(x, y) in points {
        xmin = xmin.min(x);
        ymin = ymin.min(y);
        xmax = xmax.max(x);
        ymax = ymax.max(y);
    }
    let span = (xmax - xmin).max(ymax - ymin).max(1e-9);
    let (cx, cy) = (0.5 * (xmin + xmax), 0.5 * (ymin + ymax));
    let big = 64.0 * span;
    let mut pts: Vec<(f64, f64)> = points.to_vec();
    let s0 = n as u32;
    pts.push((cx - big, cy - big));
    pts.push((cx + big, cy - big));
    pts.push((cx, cy + big));

    // Insertion order: Morton-sorted for walk locality.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&i| {
        let (x, y) = points[i as usize];
        let qx = (((x - xmin) / span) * 65535.0).clamp(0.0, 65535.0) as u16;
        let qy = (((y - ymin) / span) * 65535.0).clamp(0.0, 65535.0) as u16;
        morton(qx, qy)
    });

    let mut tris: Vec<Tri> = Vec::with_capacity(2 * n + 4);
    tris.push(Tri {
        v: [s0, s0 + 1, s0 + 2],
        n: [NONE, NONE, NONE],
        alive: true,
    });
    let mut last = 0u32;

    // Scratch buffers reused across insertions.
    let mut bad: Vec<u32> = Vec::new();
    let mut stack: Vec<u32> = Vec::new();
    let mut boundary: Vec<(u32, u32, u32)> = Vec::new(); // (a, b, outer tri)
    let mut edge_map: HashMap<(u32, u32), (u32, usize)> = HashMap::new();

    for &pi in &order {
        let p = pts[pi as usize];

        // Locate: walk from `last` towards p.
        let mut cur = last;
        let mut steps = 0usize;
        let located = loop {
            let t = &tris[cur as usize];
            debug_assert!(t.alive);
            let (a, b, c) = (
                pts[t.v[0] as usize],
                pts[t.v[1] as usize],
                pts[t.v[2] as usize],
            );
            // Check each edge (v[i+1], v[i+2]); p on the right ⇒ step out.
            let mut moved = false;
            for i in 0..3 {
                let (ea, eb) = match i {
                    0 => (b, c),
                    1 => (c, a),
                    _ => (a, b),
                };
                if orient(ea, eb, p) < 0.0 {
                    let nb = t.n[i];
                    if nb != NONE {
                        cur = nb;
                        moved = true;
                        break;
                    }
                }
            }
            if !moved {
                break cur;
            }
            steps += 1;
            if steps > 4 * (tris.len() + 4) {
                // Degenerate walk — fall back to scanning (rare).
                break tris
                    .iter()
                    .enumerate()
                    .find(|(_, t)| {
                        if !t.alive {
                            return false;
                        }
                        let (a, b, c) = (
                            pts[t.v[0] as usize],
                            pts[t.v[1] as usize],
                            pts[t.v[2] as usize],
                        );
                        orient(a, b, p) >= 0.0 && orient(b, c, p) >= 0.0 && orient(c, a, p) >= 0.0
                    })
                    .map(|(i, _)| i as u32)
                    .expect("point must lie inside the super-triangle");
            }
        };

        // Grow the cavity of circumcircle-violating triangles.
        bad.clear();
        stack.clear();
        stack.push(located);
        let mut is_bad = vec![false; 0];
        // Use a small hash-free visited set via per-insert marking: store
        // flags in a HashMap for sparsity (cavities are tiny).
        let mut visited: HashMap<u32, bool> = HashMap::new();
        while let Some(ti) = stack.pop() {
            if visited.contains_key(&ti) {
                continue;
            }
            let t = tris[ti as usize];
            let inside = in_circumcircle(
                pts[t.v[0] as usize],
                pts[t.v[1] as usize],
                pts[t.v[2] as usize],
                p,
            );
            visited.insert(ti, inside);
            if inside {
                bad.push(ti);
                for i in 0..3 {
                    let nb = t.n[i];
                    if nb != NONE && !visited.contains_key(&nb) {
                        stack.push(nb);
                    }
                }
            }
        }
        is_bad.clear();
        if bad.is_empty() {
            // p coincides (numerically) with an existing vertex or sits on
            // the hull of a degenerate configuration: treat the located
            // triangle as the cavity (guarantees progress).
            bad.push(located);
            visited.insert(located, true);
        }

        // Cavity boundary.
        boundary.clear();
        for &ti in &bad {
            let t = tris[ti as usize];
            for i in 0..3 {
                let nb = t.n[i];
                let nb_bad = nb != NONE && visited.get(&nb).copied().unwrap_or(false);
                if !nb_bad {
                    let (a, b) = match i {
                        0 => (t.v[1], t.v[2]),
                        1 => (t.v[2], t.v[0]),
                        _ => (t.v[0], t.v[1]),
                    };
                    boundary.push((a, b, nb));
                }
            }
        }
        for &ti in &bad {
            tris[ti as usize].alive = false;
        }

        // Retriangulate: one new triangle (a, b, p) per boundary edge.
        edge_map.clear();
        let mut first_new = NONE;
        for &(a, b, outer) in &boundary {
            let ti = tris.len() as u32;
            tris.push(Tri {
                v: [a, b, pi],
                n: [NONE, NONE, outer],
                alive: true,
            });
            if first_new == NONE {
                first_new = ti;
            }
            // Fix the outer triangle's back-pointer.
            if outer != NONE {
                let o = &mut tris[outer as usize];
                for i in 0..3 {
                    let (oa, ob) = match i {
                        0 => (o.v[1], o.v[2]),
                        1 => (o.v[2], o.v[0]),
                        _ => (o.v[0], o.v[1]),
                    };
                    if (oa == b && ob == a) || (oa == a && ob == b) {
                        o.n[i] = ti;
                    }
                }
            }
            // Wire the two spoke edges (a, p) and (b, p) with siblings.
            for (slot, (x, y)) in [(1usize, (pi, a)), (0usize, (b, pi))] {
                let key = if x < y { (x, y) } else { (y, x) };
                match edge_map.remove(&key) {
                    Some((other_ti, other_slot)) => {
                        tris[ti as usize].n[slot] = other_ti;
                        tris[other_ti as usize].n[other_slot] = ti;
                    }
                    None => {
                        edge_map.insert(key, (ti, slot));
                    }
                }
            }
        }
        last = first_new;
    }

    // Harvest triangles not touching the super vertices.
    tris.iter()
        .filter(|t| t.alive && t.v.iter().all(|&v| v < s0))
        .map(|t| t.v)
        .collect()
}

/// Generates `cfg.points` seeded points per the configured distribution.
pub fn delaunay_points(cfg: &DelaunayConfig) -> Vec<(f64, f64)> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.points)
        .map(|_| {
            let (u, v) = (rng.random::<f64>(), rng.random::<f64>());
            match cfg.distribution {
                PointDistribution::Uniform => (u, v),
                PointDistribution::CenterGraded => {
                    // Pull points toward the centre: radius ← √2·radius²
                    // (fixes the corners, quadratically densifies the core).
                    let (du, dv) = (u - 0.5, v - 0.5);
                    let r = (du * du + dv * dv).sqrt().max(1e-12);
                    let pull = r * r * std::f64::consts::SQRT_2;
                    (0.5 + du / r * pull, 0.5 + dv / r * pull)
                }
            }
        })
        .collect()
}

/// Converts a triangle list over `points` into a graph with the requested
/// weight model (`InverseLength` semantics are provided by
/// [`WeightModel::LogUniform`]-style sampling or unit weights; for
/// FE-style length weighting see [`triangles_to_graph_fe`]).
pub(crate) fn triangles_to_graph(
    n: usize,
    triangles: &[[u32; 3]],
    weights: WeightModel,
    seed: u64,
) -> Result<Graph, GraphError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: HashMap<(u32, u32), f64> = HashMap::new();
    for t in triangles {
        for (a, b) in [(t[0], t[1]), (t[1], t[2]), (t[2], t[0])] {
            let key = if a < b { (a, b) } else { (b, a) };
            seen.entry(key).or_insert_with(|| weights.sample(&mut rng));
        }
    }
    let mut items: Vec<((u32, u32), f64)> = seen.into_iter().collect();
    items.sort_unstable_by_key(|&(k, _)| k);
    let mut b = GraphBuilder::with_capacity(n, items.len());
    for ((u, v), w) in items {
        b.add_edge(u as usize, v as usize, w)?;
    }
    Ok(b.build())
}

/// As [`triangles_to_graph`] but with finite-element style conductances
/// `w(e) = 1 / ‖p_u − p_v‖` (shorter mesh edges are stiffer).
pub(crate) fn triangles_to_graph_fe(
    points: &[(f64, f64)],
    triangles: &[[u32; 3]],
) -> Result<Graph, GraphError> {
    let mut seen: HashMap<(u32, u32), f64> = HashMap::new();
    for t in triangles {
        for (a, b) in [(t[0], t[1]), (t[1], t[2]), (t[2], t[0])] {
            let key = if a < b { (a, b) } else { (b, a) };
            seen.entry(key).or_insert_with(|| {
                let (pa, pb) = (points[a as usize], points[b as usize]);
                let len = ((pa.0 - pb.0).powi(2) + (pa.1 - pb.1).powi(2)).sqrt();
                1.0 / len.max(1e-9)
            });
        }
    }
    let mut items: Vec<((u32, u32), f64)> = seen.into_iter().collect();
    items.sort_unstable_by_key(|&(k, _)| k);
    let mut b = GraphBuilder::with_capacity(points.len(), items.len());
    for ((u, v), w) in items {
        b.add_edge(u as usize, v as usize, w)?;
    }
    Ok(b.build())
}

/// Generates the Delaunay triangulation graph of seeded random points —
/// the `delaunay_n18 … n22` substitute.
///
/// # Errors
/// Returns [`GraphError`] only on internal invariant violations (triangle
/// indices are valid by construction); fewer than 2 points give an edgeless
/// graph.
pub fn delaunay(cfg: &DelaunayConfig) -> Result<Graph, GraphError> {
    let points = delaunay_points(cfg);
    let triangles = triangulate(&points);
    triangles_to_graph(cfg.points, &triangles, cfg.weights, cfg.seed ^ 0x5eed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingrass_graph::is_connected;

    fn naive_delaunay_check(points: &[(f64, f64)], triangles: &[[u32; 3]]) {
        // Every triangle's circumcircle must be empty of all other points.
        for t in triangles {
            let (a, b, c) = (
                points[t[0] as usize],
                points[t[1] as usize],
                points[t[2] as usize],
            );
            for (i, &p) in points.iter().enumerate() {
                if t.contains(&(i as u32)) {
                    continue;
                }
                assert!(
                    !in_circumcircle(a, b, c, p),
                    "point {i} inside circumcircle of {t:?}"
                );
            }
        }
    }

    #[test]
    fn triangulation_of_square_has_two_triangles() {
        let pts = vec![(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)];
        let tris = triangulate(&pts);
        assert_eq!(tris.len(), 2);
    }

    #[test]
    fn small_triangulations_satisfy_delaunay_property() {
        for seed in 0..5 {
            let cfg = DelaunayConfig {
                points: 40,
                seed,
                ..Default::default()
            };
            let pts = delaunay_points(&cfg);
            let tris = triangulate(&pts);
            naive_delaunay_check(&pts, &tris);
        }
    }

    #[test]
    fn euler_formula_holds() {
        // For a triangulation of points in general position:
        // V - E + F = 2 (F counts the outer face).
        let cfg = DelaunayConfig {
            points: 500,
            seed: 3,
            ..Default::default()
        };
        let pts = delaunay_points(&cfg);
        let tris = triangulate(&pts);
        let g = triangles_to_graph(500, &tris, WeightModel::Unit, 0).unwrap();
        let v = g.num_nodes() as i64;
        let e = g.num_edges() as i64;
        let f = tris.len() as i64 + 1;
        assert_eq!(v - e + f, 2);
    }

    #[test]
    fn delaunay_graph_is_connected_and_planar_density() {
        let g = delaunay(&DelaunayConfig {
            points: 2000,
            seed: 9,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(g.num_nodes(), 2000);
        assert!(is_connected(&g));
        assert!(g.num_edges() <= 3 * g.num_nodes() - 6);
        // Interior-dominated triangulations sit close to the 3V bound.
        assert!(g.num_edges() as f64 >= 2.5 * g.num_nodes() as f64);
    }

    #[test]
    fn deterministic_for_seed() {
        let cfg = DelaunayConfig {
            points: 300,
            seed: 4,
            ..Default::default()
        };
        let a = delaunay(&cfg).unwrap();
        let b = delaunay(&cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn graded_distribution_is_denser_in_center() {
        let cfg = DelaunayConfig {
            points: 4000,
            distribution: PointDistribution::CenterGraded,
            seed: 5,
            ..Default::default()
        };
        let pts = delaunay_points(&cfg);
        let central = pts
            .iter()
            .filter(|p| (p.0 - 0.5).abs() < 0.25 && (p.1 - 0.5).abs() < 0.25)
            .count();
        // Central quarter-area square holds well over a quarter of points.
        assert!(central as f64 > 0.35 * pts.len() as f64);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(triangulate(&[]).is_empty());
        assert!(triangulate(&[(0.0, 0.0), (1.0, 1.0)]).is_empty());
    }
}
