//! Edge-insertion and mixed-churn stream generation for the incremental
//! experiments.

use ingrass_graph::{kruskal_tree, DynGraph, Graph, NodeId, TreeObjective};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;

/// Configuration for [`InsertionStream::generate`].
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Number of update iterations (the paper uses 10).
    pub batches: usize,
    /// New edges per batch.
    pub edges_per_batch: usize,
    /// Fraction of *local* insertions (endpoints a short walk apart — ECO
    /// rewires); the rest are uniform random pairs (long-range straps).
    pub locality: f64,
    /// Walk length used for local insertions.
    pub local_hops: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            batches: 10,
            edges_per_batch: 100,
            locality: 0.7,
            local_hops: 3,
            seed: 99,
        }
    }
}

/// A seeded stream of new-edge batches, none of which duplicate an existing
/// edge of the base graph or an earlier stream edge.
///
/// The paper's experiments insert edges over 10 iterations until the
/// sparsifier-density-if-everything-were-kept rises from ~10 % to ~32–50 %;
/// [`InsertionStream::paper_default`] reproduces that sizing from the
/// off-tree edge count of the base graph.
///
/// # Example
/// ```
/// use ingrass_gen::{grid_2d, WeightModel, InsertionStream, StreamConfig};
/// let g = grid_2d(10, 10, WeightModel::Unit, 0);
/// let stream = InsertionStream::generate(&g, &StreamConfig {
///     batches: 3, edges_per_batch: 5, ..Default::default()
/// });
/// assert_eq!(stream.batches().len(), 3);
/// for batch in stream.batches() {
///     for &(u, v, w) in batch {
///         assert!(w > 0.0);
///         assert!(g.edge_weight(u.into(), v.into()).is_none()); // genuinely new
///     }
/// }
/// ```
#[derive(Debug, Clone)]
pub struct InsertionStream {
    batches: Vec<Vec<(usize, usize, f64)>>,
}

impl InsertionStream {
    /// Generates a stream for `g` under `cfg`.
    ///
    /// # Panics
    /// Panics if `g` has fewer than 2 nodes.
    pub fn generate(g: &Graph, cfg: &StreamConfig) -> Self {
        let n = g.num_nodes();
        assert!(n >= 2, "stream needs at least two nodes");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut used: HashSet<(u32, u32)> =
            g.edges().iter().map(|e| (e.u.raw(), e.v.raw())).collect();
        // Empirical weight sampler: reuse the base graph's weight
        // distribution so inserted edges look like real wires.
        let sample_weight = |rng: &mut StdRng| -> f64 {
            if g.num_edges() == 0 {
                1.0
            } else {
                g.edges()[rng.random_range(0..g.num_edges())].weight
            }
        };
        let mut batches = Vec::with_capacity(cfg.batches);
        for _ in 0..cfg.batches {
            let mut batch = Vec::with_capacity(cfg.edges_per_batch);
            let mut guard = 0usize;
            while batch.len() < cfg.edges_per_batch && guard < 100 * cfg.edges_per_batch + 100 {
                guard += 1;
                let u = rng.random_range(0..n);
                let v = if rng.random::<f64>() < cfg.locality {
                    // Short random walk from u.
                    let mut cur = NodeId::new(u);
                    for _ in 0..cfg.local_hops {
                        let nbrs = g.neighbors(cur);
                        if nbrs.is_empty() {
                            break;
                        }
                        cur = nbrs[rng.random_range(0..nbrs.len())].to;
                    }
                    cur.index()
                } else {
                    rng.random_range(0..n)
                };
                if u == v {
                    continue;
                }
                let key = if u < v {
                    (u as u32, v as u32)
                } else {
                    (v as u32, u as u32)
                };
                if used.insert(key) {
                    batch.push((key.0 as usize, key.1 as usize, sample_weight(&mut rng)));
                }
            }
            batches.push(batch);
        }
        InsertionStream { batches }
    }

    /// The paper-shaped stream: 10 batches totalling 24 % of the base
    /// graph's off-tree edge count, 85 % local (2-hop) insertions.
    ///
    /// With an initial sparsifier at 10 % off-tree density, keeping *all*
    /// stream edges would push it to ~34 % — matching the `D → D_all`
    /// columns of Table II. The locality mix is calibrated so the stale
    /// sparsifier's condition measure degrades by ≈ 3–5×, the regime the
    /// paper's `κ → κ_perturbed` columns report (e.g. 88 → 353).
    pub fn paper_default(g: &Graph, seed: u64) -> Self {
        let off_tree = g
            .num_edges()
            .saturating_sub(g.num_nodes().saturating_sub(1));
        let total = ((off_tree as f64) * 0.24).ceil() as usize;
        let per_batch = (total / 10).max(1);
        Self::generate(
            g,
            &StreamConfig {
                batches: 10,
                edges_per_batch: per_batch,
                locality: 0.85,
                local_hops: 2,
                seed,
            },
        )
    }

    /// The generated batches.
    pub fn batches(&self) -> &[Vec<(usize, usize, f64)>] {
        &self.batches
    }

    /// Total number of stream edges.
    pub fn total_edges(&self) -> usize {
        self.batches.iter().map(|b| b.len()).sum()
    }
}

/// One operation of a [`ChurnStream`].
///
/// Mirrors the engine's `UpdateOp` (`ingrass::UpdateOp`) without depending
/// on the core crate; the `ingrass-repro` facade provides the conversion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnOp {
    /// Insert a new edge `{u, v}` with the given weight.
    Insert(usize, usize, f64),
    /// Delete the edge `{u, v}`.
    Delete(usize, usize),
    /// Set the weight of edge `{u, v}` to the given value.
    Reweight(usize, usize, f64),
}

/// Configuration for [`ChurnStream::generate`].
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Number of update batches.
    pub batches: usize,
    /// Operations per batch.
    pub ops_per_batch: usize,
    /// Fraction of operations that delete a live churnable edge.
    pub delete_fraction: f64,
    /// Fraction of operations that reweight a live churnable edge.
    pub reweight_fraction: f64,
    /// Fraction of *insertions* with endpoints a short walk apart (see
    /// [`StreamConfig::locality`]).
    pub locality: f64,
    /// Walk length used for local insertions.
    pub local_hops: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            batches: 10,
            ops_per_batch: 100,
            delete_fraction: 0.25,
            reweight_fraction: 0.15,
            locality: 0.7,
            local_hops: 3,
            seed: 99,
        }
    }
}

impl ChurnConfig {
    /// Delete share of the paper-shaped mix ([`ChurnConfig::paper_shaped`]).
    pub const PAPER_DELETE_FRACTION: f64 = 0.25;
    /// Reweight share of the paper-shaped mix.
    pub const PAPER_REWEIGHT_FRACTION: f64 = 0.15;

    /// The paper-shaped churn sizing shared by the perf harness and the
    /// parity tests: ~24 % of `g`'s off-tree edge count over 10 batches
    /// (mirroring [`InsertionStream::paper_default`]), with a quarter of
    /// the operations deleting and 15 % reweighting, 85 % local (2-hop)
    /// insertions.
    pub fn paper_shaped(g: &Graph, seed: u64) -> Self {
        let off_tree = g
            .num_edges()
            .saturating_sub(g.num_nodes().saturating_sub(1));
        ChurnConfig {
            batches: 10,
            ops_per_batch: (((off_tree as f64) * 0.24).ceil() as usize / 10).max(1),
            delete_fraction: Self::PAPER_DELETE_FRACTION,
            reweight_fraction: Self::PAPER_REWEIGHT_FRACTION,
            locality: 0.85,
            local_hops: 2,
            seed,
        }
    }
}

/// Shard-aware skew knobs for [`ChurnStream::generate_with_skew`]: a node
/// labelling (typically a sharded engine's node → shard assignment) plus
/// two biases that shape where insertions land.
///
/// The sharded-engine perf scenarios use this to stress the router: a
/// `hot_fraction` of intra-label insertions all land in `hot_label`
/// (load imbalance), and a `cross_fraction` of insertions straddle two
/// labels (boundary-graph growth). Deletes and reweights are unaffected —
/// they sample live churnable edges exactly as [`ChurnStream::generate`]
/// does.
#[derive(Debug, Clone)]
pub struct ShardSkew {
    /// Label of each node (length must equal the graph's node count).
    pub labels: Vec<u32>,
    /// Fraction of *intra-label* insertions forced into
    /// [`ShardSkew::hot_label`]; the rest pick a label by node mass.
    pub hot_fraction: f64,
    /// Fraction of insertions whose endpoints carry different labels.
    pub cross_fraction: f64,
    /// The label receiving the hot-cluster bias.
    pub hot_label: u32,
}

/// A seeded fully-dynamic stream: batches mixing edge insertions,
/// deletions, and reweights — the churn workloads (netlist ECO with
/// removals, social unfollows, mesh coarsening) the insert-only
/// [`InsertionStream`] cannot express.
///
/// Invariants, by construction:
///
/// * every prefix of the stream keeps the evolving graph **connected**: a
///   spanning tree of the base graph is protected — deletions and reweights
///   only ever touch *churnable* edges (initial off-tree edges plus edges
///   the stream itself inserted);
/// * deletions and reweights reference edges that are live at that point of
///   the stream; insertions reference pairs that are absent (a deleted pair
///   may be re-inserted later — the ECO rip-up pattern);
/// * the whole stream is a deterministic function of the seed.
///
/// # Example
/// ```
/// use ingrass_gen::{grid_2d, WeightModel, ChurnStream, ChurnConfig};
/// use ingrass_graph::is_connected;
/// let g = grid_2d(10, 10, WeightModel::Unit, 0);
/// let stream = ChurnStream::generate(&g, &ChurnConfig {
///     batches: 3, ops_per_batch: 20, ..Default::default()
/// });
/// assert_eq!(stream.batches().len(), 3);
/// assert!(stream.deletes() > 0);
/// // Replaying the ops on the base graph yields the (connected) final graph.
/// let g_final = stream.apply_to(&g).unwrap();
/// assert!(is_connected(&g_final));
/// ```
#[derive(Debug, Clone)]
pub struct ChurnStream {
    batches: Vec<Vec<ChurnOp>>,
    inserts: usize,
    deletes: usize,
    reweights: usize,
}

impl ChurnStream {
    /// Generates a churn stream for `g` under `cfg`.
    ///
    /// # Panics
    /// Panics if `g` has fewer than 2 nodes, is disconnected, or the
    /// delete/reweight fractions are invalid (negative or summing above 1).
    pub fn generate(g: &Graph, cfg: &ChurnConfig) -> Self {
        Self::generate_inner(g, cfg, None)
    }

    /// [`ChurnStream::generate`] with shard-aware insertion skew: the
    /// locality walk is replaced by [`ShardSkew`]-driven endpoint
    /// sampling (hot-cluster bias + cross-label fraction) while deletes
    /// and reweights keep their live-edge semantics. Deterministic for a
    /// fixed `(cfg.seed, skew)` like the unskewed generator.
    ///
    /// # Panics
    /// As for [`ChurnStream::generate`], plus if `skew.labels` does not
    /// cover the graph's nodes, a fraction is outside `[0, 1]`, or
    /// `skew.hot_label` labels no node.
    pub fn generate_with_skew(g: &Graph, cfg: &ChurnConfig, skew: &ShardSkew) -> Self {
        assert_eq!(
            skew.labels.len(),
            g.num_nodes(),
            "skew labels must cover every node"
        );
        assert!(
            skew.hot_fraction.is_finite()
                && (0.0..=1.0).contains(&skew.hot_fraction)
                && skew.cross_fraction.is_finite()
                && (0.0..=1.0).contains(&skew.cross_fraction),
            "skew fractions must be within [0, 1]"
        );
        assert!(
            skew.labels.contains(&skew.hot_label),
            "hot label {} labels no node",
            skew.hot_label
        );
        Self::generate_inner(g, cfg, Some(skew))
    }

    fn generate_inner(g: &Graph, cfg: &ChurnConfig, skew: Option<&ShardSkew>) -> Self {
        let n = g.num_nodes();
        assert!(n >= 2, "churn stream needs at least two nodes");
        assert!(
            cfg.delete_fraction >= 0.0
                && cfg.reweight_fraction >= 0.0
                && cfg.delete_fraction + cfg.reweight_fraction <= 1.0,
            "delete/reweight fractions must be non-negative and sum to ≤ 1"
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let tree = kruskal_tree(g, TreeObjective::MaxWeight).expect("base graph must be connected");

        // Live pair set and the churnable (non-protected) subset.
        let mut present: HashSet<(u32, u32)> =
            g.edges().iter().map(|e| (e.u.raw(), e.v.raw())).collect();
        let mut churnable: Vec<(u32, u32)> = g
            .edges()
            .iter()
            .enumerate()
            .filter(|&(i, _)| !tree.in_tree[i])
            .map(|(_, e)| (e.u.raw(), e.v.raw()))
            .collect();
        let protected: HashSet<(u32, u32)> = g
            .edges()
            .iter()
            .enumerate()
            .filter(|&(i, _)| tree.in_tree[i])
            .map(|(_, e)| (e.u.raw(), e.v.raw()))
            .collect();

        let sample_weight = |rng: &mut StdRng| -> f64 {
            if g.num_edges() == 0 {
                1.0
            } else {
                g.edges()[rng.random_range(0..g.num_edges())].weight
            }
        };

        // Label buckets for skewed endpoint sampling.
        let nodes_by_label: Option<Vec<Vec<u32>>> = skew.map(|sk| {
            let num_labels = sk
                .labels
                .iter()
                .copied()
                .max()
                .map_or(0, |m| m as usize + 1);
            let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); num_labels];
            for (u, &lab) in sk.labels.iter().enumerate() {
                buckets[lab as usize].push(u as u32);
            }
            buckets
        });

        let (mut inserts, mut deletes, mut reweights) = (0usize, 0usize, 0usize);
        let mut batches = Vec::with_capacity(cfg.batches);
        for _ in 0..cfg.batches {
            let mut batch = Vec::with_capacity(cfg.ops_per_batch);
            let mut guard = 0usize;
            while batch.len() < cfg.ops_per_batch && guard < 100 * cfg.ops_per_batch + 100 {
                guard += 1;
                let roll = rng.random::<f64>();
                if roll < cfg.delete_fraction {
                    if churnable.is_empty() {
                        continue;
                    }
                    let i = rng.random_range(0..churnable.len());
                    let (u, v) = churnable.swap_remove(i);
                    present.remove(&(u, v));
                    batch.push(ChurnOp::Delete(u as usize, v as usize));
                    deletes += 1;
                } else if roll < cfg.delete_fraction + cfg.reweight_fraction {
                    if churnable.is_empty() {
                        continue;
                    }
                    let i = rng.random_range(0..churnable.len());
                    let (u, v) = churnable[i];
                    batch.push(ChurnOp::Reweight(
                        u as usize,
                        v as usize,
                        sample_weight(&mut rng),
                    ));
                    reweights += 1;
                } else {
                    // Insertion. With a skew: cross-label or (hot-biased)
                    // intra-label endpoint sampling; otherwise the same
                    // locality mix as `InsertionStream`.
                    let (u, v) = if let (Some(sk), Some(buckets)) = (skew, &nodes_by_label) {
                        if rng.random::<f64>() < sk.cross_fraction {
                            // Cross-label pair: rejection-sample the second
                            // endpoint out of the first one's label.
                            let u = rng.random_range(0..n);
                            let mut v = usize::MAX;
                            for _ in 0..32 {
                                let cand = rng.random_range(0..n);
                                if sk.labels[cand] != sk.labels[u] {
                                    v = cand;
                                    break;
                                }
                            }
                            if v == usize::MAX {
                                continue;
                            }
                            (u, v)
                        } else {
                            let lab = if rng.random::<f64>() < sk.hot_fraction {
                                sk.hot_label as usize
                            } else {
                                // By node mass: the label of a uniform node.
                                sk.labels[rng.random_range(0..n)] as usize
                            };
                            let bucket = &buckets[lab];
                            if bucket.len() < 2 {
                                continue;
                            }
                            (
                                bucket[rng.random_range(0..bucket.len())] as usize,
                                bucket[rng.random_range(0..bucket.len())] as usize,
                            )
                        }
                    } else {
                        let u = rng.random_range(0..n);
                        let v = if rng.random::<f64>() < cfg.locality {
                            let mut cur = NodeId::new(u);
                            for _ in 0..cfg.local_hops {
                                let nbrs = g.neighbors(cur);
                                if nbrs.is_empty() {
                                    break;
                                }
                                cur = nbrs[rng.random_range(0..nbrs.len())].to;
                            }
                            cur.index()
                        } else {
                            rng.random_range(0..n)
                        };
                        (u, v)
                    };
                    if u == v {
                        continue;
                    }
                    let key = if u < v {
                        (u as u32, v as u32)
                    } else {
                        (v as u32, u as u32)
                    };
                    // Protected pairs stay whatever the base graph made
                    // them; everything else is fair game once absent.
                    if protected.contains(&key) || !present.insert(key) {
                        continue;
                    }
                    churnable.push(key);
                    batch.push(ChurnOp::Insert(
                        key.0 as usize,
                        key.1 as usize,
                        sample_weight(&mut rng),
                    ));
                    inserts += 1;
                }
            }
            batches.push(batch);
        }
        ChurnStream {
            batches,
            inserts,
            deletes,
            reweights,
        }
    }

    /// The paper-shaped stream: [`ChurnConfig::paper_shaped`] applied to
    /// `g` — the churn analogue of [`InsertionStream::paper_default`].
    ///
    /// # Panics
    /// As for [`ChurnStream::generate`].
    pub fn paper_default(g: &Graph, seed: u64) -> Self {
        Self::generate(g, &ChurnConfig::paper_shaped(g, seed))
    }

    /// The generated batches.
    pub fn batches(&self) -> &[Vec<ChurnOp>] {
        &self.batches
    }

    /// Total operations across all batches.
    pub fn total_ops(&self) -> usize {
        self.batches.iter().map(|b| b.len()).sum()
    }

    /// Insert operations in the stream.
    pub fn inserts(&self) -> usize {
        self.inserts
    }

    /// Delete operations in the stream.
    pub fn deletes(&self) -> usize {
        self.deletes
    }

    /// Reweight operations in the stream.
    pub fn reweights(&self) -> usize {
        self.reweights
    }

    /// Replays the whole stream onto `g` and returns the final graph — the
    /// ground truth that from-scratch baselines sparsify.
    ///
    /// # Errors
    /// Returns the underlying graph error if an operation is inconsistent
    /// with the evolving graph (cannot happen for generated streams).
    pub fn apply_to(&self, g: &Graph) -> Result<Graph, ingrass_graph::GraphError> {
        let mut d = DynGraph::from_graph(g);
        for batch in &self.batches {
            for op in batch {
                match *op {
                    ChurnOp::Insert(u, v, w) => {
                        d.add_edge(u.into(), v.into(), w)?;
                    }
                    ChurnOp::Delete(u, v) => {
                        d.remove_edge(u.into(), v.into());
                    }
                    ChurnOp::Reweight(u, v, w) => {
                        if let Some(id) = d.edge_id(u.into(), v.into()) {
                            d.set_weight(id, w)?;
                        }
                    }
                }
            }
        }
        Ok(d.to_graph())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{grid_2d, WeightModel};

    #[test]
    fn stream_edges_are_new_and_unique() {
        let g = grid_2d(12, 12, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 1);
        let s = InsertionStream::generate(
            &g,
            &StreamConfig {
                batches: 5,
                edges_per_batch: 30,
                ..Default::default()
            },
        );
        let mut seen = HashSet::new();
        for batch in s.batches() {
            for &(u, v, w) in batch {
                assert!(u < v);
                assert!(w > 0.0);
                assert!(g.edge_weight(u.into(), v.into()).is_none());
                assert!(seen.insert((u, v)), "duplicate stream edge ({u},{v})");
            }
        }
        assert_eq!(s.total_edges(), 150);
    }

    #[test]
    fn paper_default_sizes_to_offtree_fraction() {
        let g = grid_2d(20, 20, WeightModel::Unit, 2);
        let s = InsertionStream::paper_default(&g, 7);
        let off_tree = g.num_edges() - (g.num_nodes() - 1);
        let expect = ((off_tree as f64) * 0.24) as usize;
        assert_eq!(s.batches().len(), 10);
        let total = s.total_edges();
        assert!(
            total >= expect.saturating_sub(15) && total <= expect + 15,
            "total {total} vs expected ≈{expect}"
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let g = grid_2d(10, 10, WeightModel::Unit, 0);
        let a = InsertionStream::generate(&g, &StreamConfig::default());
        let b = InsertionStream::generate(&g, &StreamConfig::default());
        assert_eq!(a.batches()[0], b.batches()[0]);
    }

    #[test]
    fn churn_stream_ops_are_consistent_and_connected() {
        use ingrass_graph::is_connected;
        let g = grid_2d(12, 12, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 7);
        let s = ChurnStream::generate(
            &g,
            &ChurnConfig {
                batches: 6,
                ops_per_batch: 40,
                ..Default::default()
            },
        );
        assert_eq!(s.total_ops(), 240);
        assert_eq!(s.inserts() + s.deletes() + s.reweights(), s.total_ops());
        assert!(s.deletes() > 0 && s.reweights() > 0 && s.inserts() > 0);
        // Replay tracks liveness: every delete/reweight hits a live edge,
        // every insert a free pair; the graph stays connected throughout.
        let mut d = DynGraph::from_graph(&g);
        for batch in s.batches() {
            for op in batch {
                match *op {
                    ChurnOp::Insert(u, v, w) => {
                        assert!(
                            d.edge_id(u.into(), v.into()).is_none(),
                            "insert over live edge"
                        );
                        assert!(w > 0.0);
                        d.add_edge(u.into(), v.into(), w).unwrap();
                    }
                    ChurnOp::Delete(u, v) => {
                        assert!(
                            d.remove_edge(u.into(), v.into()).is_some(),
                            "delete of dead edge"
                        );
                    }
                    ChurnOp::Reweight(u, v, w) => {
                        let id = d
                            .edge_id(u.into(), v.into())
                            .expect("reweight of dead edge");
                        assert!(w > 0.0);
                        d.set_weight(id, w).unwrap();
                    }
                }
            }
            assert!(is_connected(&d.to_graph()), "prefix disconnected the graph");
        }
        let final_graph = s.apply_to(&g).unwrap();
        assert_eq!(final_graph.num_edges(), d.to_graph().num_edges());
    }

    #[test]
    fn churn_stream_is_deterministic_and_respects_mix() {
        let g = grid_2d(14, 14, WeightModel::Unit, 3);
        let cfg = ChurnConfig {
            batches: 5,
            ops_per_batch: 60,
            delete_fraction: 0.4,
            reweight_fraction: 0.2,
            ..Default::default()
        };
        let a = ChurnStream::generate(&g, &cfg);
        let b = ChurnStream::generate(&g, &cfg);
        assert_eq!(a.batches()[0], b.batches()[0]);
        assert_eq!(a.deletes(), b.deletes());
        // The realized mix tracks the configured fractions loosely (deletes
        // can be starved only when churnable edges run out).
        let total = a.total_ops() as f64;
        assert!(
            (a.deletes() as f64 / total - 0.4).abs() < 0.15,
            "{}",
            a.deletes()
        );
        assert!((a.reweights() as f64 / total - 0.2).abs() < 0.15);
    }

    #[test]
    fn churn_insert_only_matches_insertion_semantics() {
        // With zero delete/reweight fractions every op is an insert of a
        // genuinely new pair.
        let g = grid_2d(10, 10, WeightModel::Unit, 5);
        let s = ChurnStream::generate(
            &g,
            &ChurnConfig {
                batches: 4,
                ops_per_batch: 25,
                delete_fraction: 0.0,
                reweight_fraction: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(s.deletes() + s.reweights(), 0);
        let mut seen = HashSet::new();
        for batch in s.batches() {
            for op in batch {
                let ChurnOp::Insert(u, v, _) = *op else {
                    panic!("non-insert op in insert-only stream")
                };
                assert!(g.edge_weight(u.into(), v.into()).is_none());
                assert!(seen.insert((u, v)));
            }
        }
    }

    #[test]
    fn skewed_churn_is_deterministic_for_seed() {
        let g = grid_2d(12, 12, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 9);
        // Quadrant labelling: 4 labels over the 12×12 grid.
        let labels: Vec<u32> = (0..144)
            .map(|i| {
                let (x, y) = (i % 12, i / 12);
                ((y / 6) * 2 + x / 6) as u32
            })
            .collect();
        let skew = ShardSkew {
            labels,
            hot_fraction: 0.3,
            cross_fraction: 0.2,
            hot_label: 1,
        };
        let cfg = ChurnConfig {
            batches: 5,
            ops_per_batch: 50,
            ..Default::default()
        };
        let a = ChurnStream::generate_with_skew(&g, &cfg, &skew);
        let b = ChurnStream::generate_with_skew(&g, &cfg, &skew);
        assert_eq!(a.batches(), b.batches());
        assert_eq!(a.inserts(), b.inserts());
        // Still a valid churn stream: replay succeeds and stays connected.
        use ingrass_graph::is_connected;
        assert!(is_connected(&a.apply_to(&g).unwrap()));
    }

    #[test]
    fn skew_biases_hot_label_and_cross_fraction() {
        let g = grid_2d(16, 16, WeightModel::Unit, 4);
        let labels: Vec<u32> = (0..256)
            .map(|i| {
                let (x, y) = (i % 16, i / 16);
                ((y / 8) * 2 + x / 8) as u32
            })
            .collect();
        let skew = ShardSkew {
            labels: labels.clone(),
            hot_fraction: 0.6,
            cross_fraction: 0.25,
            hot_label: 2,
        };
        let s = ChurnStream::generate_with_skew(
            &g,
            &ChurnConfig {
                batches: 8,
                ops_per_batch: 80,
                delete_fraction: 0.0,
                reweight_fraction: 0.0,
                ..Default::default()
            },
            &skew,
        );
        let mut cross = 0usize;
        let mut per_label = [0usize; 4];
        let mut total = 0usize;
        for batch in s.batches() {
            for op in batch {
                let ChurnOp::Insert(u, v, _) = *op else {
                    panic!("insert-only stream")
                };
                total += 1;
                if labels[u] != labels[v] {
                    cross += 1;
                } else {
                    per_label[labels[u] as usize] += 1;
                }
            }
        }
        assert!(total > 100);
        let cross_frac = cross as f64 / total as f64;
        assert!(
            (cross_frac - 0.25).abs() < 0.12,
            "cross fraction {cross_frac}"
        );
        // The hot label dominates intra-label insertions: with a 0.6 hot
        // bias it should hold well over twice any cold label's share.
        let hot = per_label[2];
        for (lab, &cold) in per_label.iter().enumerate() {
            if lab != 2 {
                assert!(hot > 2 * cold, "hot {hot} vs label {lab} = {cold}");
            }
        }
    }

    #[test]
    fn locality_controls_edge_span() {
        // Fully local streams should have shorter grid distances than
        // fully global ones.
        let w = 30usize;
        let g = grid_2d(w, w, WeightModel::Unit, 3);
        let dist = |edges: &InsertionStream| -> f64 {
            let mut total = 0.0;
            let mut count = 0usize;
            for b in edges.batches() {
                for &(u, v, _) in b {
                    let (ux, uy) = (u % w, u / w);
                    let (vx, vy) = (v % w, v / w);
                    total += ((ux as f64 - vx as f64).abs()) + ((uy as f64 - vy as f64).abs());
                    count += 1;
                }
            }
            total / count.max(1) as f64
        };
        let local = InsertionStream::generate(
            &g,
            &StreamConfig {
                locality: 1.0,
                batches: 4,
                edges_per_batch: 50,
                ..Default::default()
            },
        );
        let global = InsertionStream::generate(
            &g,
            &StreamConfig {
                locality: 0.0,
                batches: 4,
                edges_per_batch: 50,
                ..Default::default()
            },
        );
        assert!(dist(&local) < dist(&global));
    }
}
