//! Edge-insertion stream generation for the incremental experiments.

use ingrass_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;

/// Configuration for [`InsertionStream::generate`].
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Number of update iterations (the paper uses 10).
    pub batches: usize,
    /// New edges per batch.
    pub edges_per_batch: usize,
    /// Fraction of *local* insertions (endpoints a short walk apart — ECO
    /// rewires); the rest are uniform random pairs (long-range straps).
    pub locality: f64,
    /// Walk length used for local insertions.
    pub local_hops: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            batches: 10,
            edges_per_batch: 100,
            locality: 0.7,
            local_hops: 3,
            seed: 99,
        }
    }
}

/// A seeded stream of new-edge batches, none of which duplicate an existing
/// edge of the base graph or an earlier stream edge.
///
/// The paper's experiments insert edges over 10 iterations until the
/// sparsifier-density-if-everything-were-kept rises from ~10 % to ~32–50 %;
/// [`InsertionStream::paper_default`] reproduces that sizing from the
/// off-tree edge count of the base graph.
///
/// # Example
/// ```
/// use ingrass_gen::{grid_2d, WeightModel, InsertionStream, StreamConfig};
/// let g = grid_2d(10, 10, WeightModel::Unit, 0);
/// let stream = InsertionStream::generate(&g, &StreamConfig {
///     batches: 3, edges_per_batch: 5, ..Default::default()
/// });
/// assert_eq!(stream.batches().len(), 3);
/// for batch in stream.batches() {
///     for &(u, v, w) in batch {
///         assert!(w > 0.0);
///         assert!(g.edge_weight(u.into(), v.into()).is_none()); // genuinely new
///     }
/// }
/// ```
#[derive(Debug, Clone)]
pub struct InsertionStream {
    batches: Vec<Vec<(usize, usize, f64)>>,
}

impl InsertionStream {
    /// Generates a stream for `g` under `cfg`.
    ///
    /// # Panics
    /// Panics if `g` has fewer than 2 nodes.
    pub fn generate(g: &Graph, cfg: &StreamConfig) -> Self {
        let n = g.num_nodes();
        assert!(n >= 2, "stream needs at least two nodes");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut used: HashSet<(u32, u32)> =
            g.edges().iter().map(|e| (e.u.raw(), e.v.raw())).collect();
        // Empirical weight sampler: reuse the base graph's weight
        // distribution so inserted edges look like real wires.
        let sample_weight = |rng: &mut StdRng| -> f64 {
            if g.num_edges() == 0 {
                1.0
            } else {
                g.edges()[rng.random_range(0..g.num_edges())].weight
            }
        };
        let mut batches = Vec::with_capacity(cfg.batches);
        for _ in 0..cfg.batches {
            let mut batch = Vec::with_capacity(cfg.edges_per_batch);
            let mut guard = 0usize;
            while batch.len() < cfg.edges_per_batch && guard < 100 * cfg.edges_per_batch + 100 {
                guard += 1;
                let u = rng.random_range(0..n);
                let v = if rng.random::<f64>() < cfg.locality {
                    // Short random walk from u.
                    let mut cur = NodeId::new(u);
                    for _ in 0..cfg.local_hops {
                        let nbrs = g.neighbors(cur);
                        if nbrs.is_empty() {
                            break;
                        }
                        cur = nbrs[rng.random_range(0..nbrs.len())].to;
                    }
                    cur.index()
                } else {
                    rng.random_range(0..n)
                };
                if u == v {
                    continue;
                }
                let key = if u < v {
                    (u as u32, v as u32)
                } else {
                    (v as u32, u as u32)
                };
                if used.insert(key) {
                    batch.push((key.0 as usize, key.1 as usize, sample_weight(&mut rng)));
                }
            }
            batches.push(batch);
        }
        InsertionStream { batches }
    }

    /// The paper-shaped stream: 10 batches totalling 24 % of the base
    /// graph's off-tree edge count, 85 % local (2-hop) insertions.
    ///
    /// With an initial sparsifier at 10 % off-tree density, keeping *all*
    /// stream edges would push it to ~34 % — matching the `D → D_all`
    /// columns of Table II. The locality mix is calibrated so the stale
    /// sparsifier's condition measure degrades by ≈ 3–5×, the regime the
    /// paper's `κ → κ_perturbed` columns report (e.g. 88 → 353).
    pub fn paper_default(g: &Graph, seed: u64) -> Self {
        let off_tree = g
            .num_edges()
            .saturating_sub(g.num_nodes().saturating_sub(1));
        let total = ((off_tree as f64) * 0.24).ceil() as usize;
        let per_batch = (total / 10).max(1);
        Self::generate(
            g,
            &StreamConfig {
                batches: 10,
                edges_per_batch: per_batch,
                locality: 0.85,
                local_hops: 2,
                seed,
            },
        )
    }

    /// The generated batches.
    pub fn batches(&self) -> &[Vec<(usize, usize, f64)>] {
        &self.batches
    }

    /// Total number of stream edges.
    pub fn total_edges(&self) -> usize {
        self.batches.iter().map(|b| b.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{grid_2d, WeightModel};

    #[test]
    fn stream_edges_are_new_and_unique() {
        let g = grid_2d(12, 12, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 1);
        let s = InsertionStream::generate(
            &g,
            &StreamConfig {
                batches: 5,
                edges_per_batch: 30,
                ..Default::default()
            },
        );
        let mut seen = HashSet::new();
        for batch in s.batches() {
            for &(u, v, w) in batch {
                assert!(u < v);
                assert!(w > 0.0);
                assert!(g.edge_weight(u.into(), v.into()).is_none());
                assert!(seen.insert((u, v)), "duplicate stream edge ({u},{v})");
            }
        }
        assert_eq!(s.total_edges(), 150);
    }

    #[test]
    fn paper_default_sizes_to_offtree_fraction() {
        let g = grid_2d(20, 20, WeightModel::Unit, 2);
        let s = InsertionStream::paper_default(&g, 7);
        let off_tree = g.num_edges() - (g.num_nodes() - 1);
        let expect = ((off_tree as f64) * 0.24) as usize;
        assert_eq!(s.batches().len(), 10);
        let total = s.total_edges();
        assert!(
            total >= expect.saturating_sub(15) && total <= expect + 15,
            "total {total} vs expected ≈{expect}"
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let g = grid_2d(10, 10, WeightModel::Unit, 0);
        let a = InsertionStream::generate(&g, &StreamConfig::default());
        let b = InsertionStream::generate(&g, &StreamConfig::default());
        assert_eq!(a.batches()[0], b.batches()[0]);
    }

    #[test]
    fn locality_controls_edge_span() {
        // Fully local streams should have shorter grid distances than
        // fully global ones.
        let w = 30usize;
        let g = grid_2d(w, w, WeightModel::Unit, 3);
        let dist = |edges: &InsertionStream| -> f64 {
            let mut total = 0.0;
            let mut count = 0usize;
            for b in edges.batches() {
                for &(u, v, _) in b {
                    let (ux, uy) = (u % w, u / w);
                    let (vx, vy) = (v % w, v / w);
                    total += ((ux as f64 - vx as f64).abs()) + ((uy as f64 - vy as f64).abs());
                    count += 1;
                }
            }
            total / count.max(1) as f64
        };
        let local = InsertionStream::generate(
            &g,
            &StreamConfig {
                locality: 1.0,
                batches: 4,
                edges_per_batch: 50,
                ..Default::default()
            },
        );
        let global = InsertionStream::generate(
            &g,
            &StreamConfig {
                locality: 0.0,
                batches: 4,
                edges_per_batch: 50,
                ..Default::default()
            },
        );
        assert!(dist(&local) < dist(&global));
    }
}
