//! Finite-element mesh generators (`fe_sphere`, `fe_ocean`,
//! `fe_4elt2`/`NACA15` analogues).

use crate::delaunay::{triangles_to_graph_fe, triangulate};
use ingrass_graph::{connected_components, Graph, GraphBuilder, GraphError};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`sphere_mesh`].
#[derive(Debug, Clone)]
pub struct SphereConfig {
    /// Latitude rings (≥ 2).
    pub rings: usize,
    /// Longitude segments per ring (≥ 3).
    pub segments: usize,
    /// RNG seed (perturbs vertex positions slightly, like a real FE mesh).
    pub seed: u64,
}

impl Default for SphereConfig {
    fn default() -> Self {
        SphereConfig {
            rings: 40,
            segments: 80,
            seed: 0,
        }
    }
}

/// A triangulated UV-sphere surface mesh — the `fe_sphere` substitute.
///
/// Vertices: 2 poles + `(rings − 1) × segments` ring points; each quad of
/// the UV lattice is split into two triangles and edge conductances are
/// `1/length` (FE stiffness style).
///
/// # Panics
/// Panics if `rings < 2` or `segments < 3`.
pub fn sphere_mesh(cfg: &SphereConfig) -> Graph {
    assert!(cfg.rings >= 2 && cfg.segments >= 3);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let (r, s) = (cfg.rings, cfg.segments);
    let n = 2 + (r - 1) * s;
    // 3-D positions.
    let mut pos: Vec<(f64, f64, f64)> = Vec::with_capacity(n);
    pos.push((0.0, 0.0, 1.0)); // north pole = 0
    for i in 1..r {
        let theta = std::f64::consts::PI * i as f64 / r as f64;
        for j in 0..s {
            let jitter = 0.3 * (rng.random::<f64>() - 0.5) / r as f64;
            let phi = 2.0 * std::f64::consts::PI * (j as f64 / s as f64) + jitter;
            pos.push((
                theta.sin() * phi.cos(),
                theta.sin() * phi.sin(),
                theta.cos(),
            ));
        }
    }
    pos.push((0.0, 0.0, -1.0)); // south pole = n-1
    let ring = |i: usize, j: usize| 1 + (i - 1) * s + (j % s);
    let mut b = GraphBuilder::with_capacity(n, 3 * n);
    let add = |b: &mut GraphBuilder, u: usize, v: usize| {
        let (pu, pv) = (pos[u], pos[v]);
        let len = ((pu.0 - pv.0).powi(2) + (pu.1 - pv.1).powi(2) + (pu.2 - pv.2).powi(2))
            .sqrt()
            .max(1e-9);
        b.add_edge(u, v, 1.0 / len).expect("sphere indices valid");
    };
    // Pole fans.
    for j in 0..s {
        add(&mut b, 0, ring(1, j));
        add(&mut b, n - 1, ring(r - 1, j));
    }
    // Ring quads split into triangles: ring edges, meridian edges, diagonals.
    for i in 1..r {
        for j in 0..s {
            add(&mut b, ring(i, j), ring(i, j + 1));
            if i + 1 < r {
                add(&mut b, ring(i, j), ring(i + 1, j));
                add(&mut b, ring(i, j), ring(i + 1, j + 1)); // diagonal
            }
        }
    }
    b.build()
}

/// Configuration for [`ocean_mesh`].
#[derive(Debug, Clone)]
pub struct OceanConfig {
    /// Target number of mesh points before land masking.
    pub points: usize,
    /// Number of elliptical land masses removed from the domain.
    pub islands: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OceanConfig {
    fn default() -> Self {
        OceanConfig {
            points: 4000,
            islands: 6,
            seed: 0,
        }
    }
}

/// A triangulated 2-D "ocean" domain with island holes — the `fe_ocean`
/// substitute (irregular boundary, non-convex domain, FE weights).
///
/// Points are sampled uniformly, points falling on land are rejected, the
/// remainder is Delaunay-triangulated, triangles whose centroid lies on
/// land are removed, and the largest connected component is returned with
/// dense node ids.
///
/// # Errors
/// Propagates graph construction errors (none expected for valid configs).
pub fn ocean_mesh(cfg: &OceanConfig) -> Result<Graph, GraphError> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Random elliptical islands.
    let islands: Vec<(f64, f64, f64, f64)> = (0..cfg.islands)
        .map(|_| {
            (
                0.15 + 0.7 * rng.random::<f64>(), // cx
                0.15 + 0.7 * rng.random::<f64>(), // cy
                0.03 + 0.1 * rng.random::<f64>(), // rx
                0.03 + 0.1 * rng.random::<f64>(), // ry
            )
        })
        .collect();
    let on_land = |x: f64, y: f64| {
        islands
            .iter()
            .any(|&(cx, cy, rx, ry)| ((x - cx) / rx).powi(2) + ((y - cy) / ry).powi(2) < 1.0)
    };
    let mut pts: Vec<(f64, f64)> = Vec::with_capacity(cfg.points);
    let mut attempts = 0usize;
    while pts.len() < cfg.points && attempts < 20 * cfg.points {
        attempts += 1;
        let (x, y) = (rng.random::<f64>(), rng.random::<f64>());
        if !on_land(x, y) {
            pts.push((x, y));
        }
    }
    let tris = triangulate(&pts);
    let water_tris: Vec<[u32; 3]> = tris
        .into_iter()
        .filter(|t| {
            let cx = (pts[t[0] as usize].0 + pts[t[1] as usize].0 + pts[t[2] as usize].0) / 3.0;
            let cy = (pts[t[0] as usize].1 + pts[t[1] as usize].1 + pts[t[2] as usize].1) / 3.0;
            !on_land(cx, cy)
        })
        .collect();
    let g = triangles_to_graph_fe(&pts, &water_tris)?;
    Ok(largest_component(&g))
}

/// Configuration for [`airfoil_mesh`].
#[derive(Debug, Clone)]
pub struct AirfoilConfig {
    /// Target number of mesh points.
    pub points: usize,
    /// NACA 4-digit maximum thickness (e.g. 0.15 for NACA 0015 — the
    /// namesake of the paper's `NACA15` case).
    pub thickness: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AirfoilConfig {
    fn default() -> Self {
        AirfoilConfig {
            points: 4000,
            thickness: 0.15,
            seed: 0,
        }
    }
}

/// NACA 00xx half-thickness at chord position `x ∈ [0, 1]`.
fn naca_half_thickness(t: f64, x: f64) -> f64 {
    5.0 * t
        * (0.2969 * x.sqrt() - 0.1260 * x - 0.3516 * x * x + 0.2843 * x * x * x
            - 0.1015 * x * x * x * x)
}

/// A 2-D CFD-style airfoil mesh — the `fe_4elt2` / `NACA15` / `M6`
/// substitute: point density graded towards a NACA profile, the profile
/// interior removed, FE conductances `1/length`.
///
/// # Errors
/// Propagates graph construction errors (none expected for valid configs).
pub fn airfoil_mesh(cfg: &AirfoilConfig) -> Result<Graph, GraphError> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Airfoil chord spans x ∈ [0.3, 0.7] at mid-height of the unit square.
    let inside_foil = |x: f64, y: f64| {
        let cx = (x - 0.3) / 0.4;
        if !(0.0..=1.0).contains(&cx) {
            return false;
        }
        let half = 0.4 * naca_half_thickness(cfg.thickness, cx);
        (y - 0.5).abs() < half
    };
    let mut pts: Vec<(f64, f64)> = Vec::with_capacity(cfg.points);
    let mut attempts = 0usize;
    while pts.len() < cfg.points && attempts < 40 * cfg.points {
        attempts += 1;
        // Graded sampling: with probability 1/2 sample near the foil.
        let (x, y) = if rng.random::<bool>() {
            (
                0.25 + 0.5 * rng.random::<f64>(),
                0.5 + 0.22 * (rng.random::<f64>() - 0.5),
            )
        } else {
            (rng.random::<f64>(), rng.random::<f64>())
        };
        if !inside_foil(x, y) {
            pts.push((x, y));
        }
    }
    let tris = triangulate(&pts);
    let air_tris: Vec<[u32; 3]> = tris
        .into_iter()
        .filter(|t| {
            let cx = (pts[t[0] as usize].0 + pts[t[1] as usize].0 + pts[t[2] as usize].0) / 3.0;
            let cy = (pts[t[0] as usize].1 + pts[t[1] as usize].1 + pts[t[2] as usize].1) / 3.0;
            !inside_foil(cx, cy)
        })
        .collect();
    let g = triangles_to_graph_fe(&pts, &air_tris)?;
    Ok(largest_component(&g))
}

/// Restriction of `g` to its largest connected component, with nodes
/// relabelled densely (used by the hole-cutting mesh generators).
fn largest_component(g: &Graph) -> Graph {
    let (count, labels) = connected_components(g);
    if count <= 1 {
        return g.clone();
    }
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    let keep = sizes
        .iter()
        .enumerate()
        .max_by_key(|(_, &s)| s)
        .map(|(i, _)| i as u32)
        .expect("at least one component");
    let mut remap = vec![u32::MAX; g.num_nodes()];
    let mut next = 0u32;
    for (u, &l) in labels.iter().enumerate() {
        if l == keep {
            remap[u] = next;
            next += 1;
        }
    }
    let mut b = GraphBuilder::with_capacity(next as usize, g.num_edges());
    for e in g.edges() {
        let (ru, rv) = (remap[e.u.index()], remap[e.v.index()]);
        if ru != u32::MAX && rv != u32::MAX {
            b.add_edge(ru as usize, rv as usize, e.weight)
                .expect("remapped indices valid");
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingrass_graph::is_connected;

    #[test]
    fn sphere_is_connected_with_fe_density() {
        let g = sphere_mesh(&SphereConfig {
            rings: 16,
            segments: 24,
            seed: 1,
        });
        assert!(is_connected(&g));
        let ratio = g.num_edges() as f64 / g.num_nodes() as f64;
        // fe_sphere has |E|/|V| ≈ 3.
        assert!(ratio > 2.5 && ratio < 3.2, "ratio {ratio}");
    }

    #[test]
    fn ocean_mesh_is_connected_and_has_holes() {
        let g = ocean_mesh(&OceanConfig {
            points: 1500,
            islands: 5,
            seed: 2,
        })
        .unwrap();
        assert!(is_connected(&g));
        // Holes + boundary keep it well under the 3V−6 planar bound but it
        // stays a 2-D triangulation.
        let ratio = g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(ratio > 2.2 && ratio < 3.0, "ratio {ratio}");
    }

    #[test]
    fn airfoil_mesh_connected_and_graded() {
        let g = airfoil_mesh(&AirfoilConfig {
            points: 1500,
            thickness: 0.15,
            seed: 3,
        })
        .unwrap();
        assert!(is_connected(&g));
        assert!(g.num_nodes() > 1300);
    }

    #[test]
    fn meshes_are_deterministic() {
        let a = ocean_mesh(&OceanConfig::default()).unwrap();
        let b = ocean_mesh(&OceanConfig::default()).unwrap();
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn naca_profile_shape_is_sane() {
        // Thickest near 30% chord, closed at both ends.
        assert!(naca_half_thickness(0.15, 0.0).abs() < 1e-12);
        let t30 = naca_half_thickness(0.15, 0.3);
        let t90 = naca_half_thickness(0.15, 0.9);
        assert!(t30 > t90);
        assert!(t30 > 0.07 && t30 < 0.08); // ~half of 15 % thickness
    }
}
