//! The paper's 14-case benchmark suite, backed by the synthetic generators.

use crate::delaunay::{delaunay, DelaunayConfig, PointDistribution};
use crate::grid::{power_grid, PowerGridConfig};
use crate::mesh::{
    airfoil_mesh, ocean_mesh, sphere_mesh, AirfoilConfig, OceanConfig, SphereConfig,
};
use ingrass_graph::Graph;

/// One row of the paper's benchmark tables (Tables I/II), mapped onto the
/// synthetic generator of the same structural class.
///
/// `build(scale, seed)` produces a graph with roughly
/// `paper_nodes() × scale` nodes; `scale = 1.0` reproduces paper-size
/// graphs (millions of nodes — release builds only), the benchmark
/// harness defaults to `scale = 1/80`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestCase {
    /// `G3_circuit` — 1.5 M-node power grid.
    G3Circuit,
    /// `G2_circuit` — 150 k-node power grid.
    G2Circuit,
    /// `fe_4elt2` — 11 k-node airfoil FE mesh.
    Fe4elt2,
    /// `fe_ocean` — 143 k-node ocean FE mesh.
    FeOcean,
    /// `fe_sphere` — 16 k-node sphere FE mesh.
    FeSphere,
    /// `delaunay_n18` — 2¹⁸ random points.
    DelaunayN18,
    /// `delaunay_n19` — 2¹⁹ random points.
    DelaunayN19,
    /// `delaunay_n20` — 2²⁰ random points.
    DelaunayN20,
    /// `delaunay_n21` — 2²¹ random points.
    DelaunayN21,
    /// `delaunay_n22` — 2²² random points.
    DelaunayN22,
    /// `M6` — 3.5 M-node wing mesh.
    M6,
    /// `333SP` — 3.7 M-node 2-D FE mesh.
    Sp333,
    /// `AS365` — 3.8 M-node 2-D FE mesh.
    As365,
    /// `NACA015` — 1 M-node airfoil mesh.
    Naca15,
}

/// All 14 cases in the order of the paper's Table I.
pub fn paper_suite() -> Vec<TestCase> {
    use TestCase::*;
    vec![
        G3Circuit,
        G2Circuit,
        Fe4elt2,
        FeOcean,
        FeSphere,
        DelaunayN18,
        DelaunayN19,
        DelaunayN20,
        DelaunayN21,
        DelaunayN22,
        M6,
        Sp333,
        As365,
        Naca15,
    ]
}

impl TestCase {
    /// The paper's name for this case.
    pub fn name(self) -> &'static str {
        match self {
            TestCase::G3Circuit => "G3_circuit",
            TestCase::G2Circuit => "G2_circuit",
            TestCase::Fe4elt2 => "fe_4elt2",
            TestCase::FeOcean => "fe_ocean",
            TestCase::FeSphere => "fe_sphere",
            TestCase::DelaunayN18 => "delaunay_n18",
            TestCase::DelaunayN19 => "delaunay_n19",
            TestCase::DelaunayN20 => "delaunay_n20",
            TestCase::DelaunayN21 => "delaunay_n21",
            TestCase::DelaunayN22 => "delaunay_n22",
            TestCase::M6 => "M6",
            TestCase::Sp333 => "333SP",
            TestCase::As365 => "AS365",
            TestCase::Naca15 => "NACA15",
        }
    }

    /// `|V|` of the original SuiteSparse matrix (paper Table I).
    pub fn paper_nodes(self) -> usize {
        match self {
            TestCase::G3Circuit => 1_500_000,
            TestCase::G2Circuit => 150_000,
            TestCase::Fe4elt2 => 11_000,
            TestCase::FeOcean => 140_000,
            TestCase::FeSphere => 16_000,
            TestCase::DelaunayN18 => 260_000,
            TestCase::DelaunayN19 => 520_000,
            TestCase::DelaunayN20 => 1_000_000,
            TestCase::DelaunayN21 => 2_100_000,
            TestCase::DelaunayN22 => 4_200_000,
            TestCase::M6 => 3_500_000,
            TestCase::Sp333 => 3_700_000,
            TestCase::As365 => 3_800_000,
            TestCase::Naca15 => 1_000_000,
        }
    }

    /// `|E|` of the original SuiteSparse matrix (paper Table I).
    pub fn paper_edges(self) -> usize {
        match self {
            TestCase::G3Circuit => 3_000_000,
            TestCase::G2Circuit => 290_000,
            TestCase::Fe4elt2 => 33_000,
            TestCase::FeOcean => 410_000,
            TestCase::FeSphere => 49_000,
            TestCase::DelaunayN18 => 650_000,
            TestCase::DelaunayN19 => 1_600_000,
            TestCase::DelaunayN20 => 3_100_000,
            TestCase::DelaunayN21 => 6_300_000,
            TestCase::DelaunayN22 => 13_000_000,
            TestCase::M6 => 11_000_000,
            TestCase::Sp333 => 11_000_000,
            TestCase::As365 => 11_000_000,
            TestCase::Naca15 => 3_100_000,
        }
    }

    /// GRASS runtime reported in paper Table I (seconds) — for the
    /// paper-vs-measured comparison in EXPERIMENTS.md.
    pub fn paper_grass_seconds(self) -> f64 {
        match self {
            TestCase::G3Circuit => 18.7,
            TestCase::G2Circuit => 0.75,
            TestCase::Fe4elt2 => 0.053,
            TestCase::FeOcean => 1.12,
            TestCase::FeSphere => 0.08,
            TestCase::DelaunayN18 => 2.2,
            TestCase::DelaunayN19 => 6.2,
            TestCase::DelaunayN20 => 14.1,
            TestCase::DelaunayN21 => 28.5,
            TestCase::DelaunayN22 => 62.0,
            TestCase::M6 => 83.0,
            TestCase::Sp333 => 84.0,
            TestCase::As365 => 84.0,
            TestCase::Naca15 => 13.8,
        }
    }

    /// inGRASS setup time reported in paper Table I (seconds).
    pub fn paper_setup_seconds(self) -> f64 {
        match self {
            TestCase::G3Circuit => 13.7,
            TestCase::G2Circuit => 0.9,
            TestCase::Fe4elt2 => 0.06,
            TestCase::FeOcean => 1.01,
            TestCase::FeSphere => 0.17,
            TestCase::DelaunayN18 => 1.9,
            TestCase::DelaunayN19 => 4.0,
            TestCase::DelaunayN20 => 9.5,
            TestCase::DelaunayN21 => 19.0,
            TestCase::DelaunayN22 => 38.6,
            TestCase::M6 => 45.0,
            TestCase::Sp333 => 46.0,
            TestCase::As365 => 48.0,
            TestCase::Naca15 => 8.0,
        }
    }

    /// Speedup `GRASS-T / inGRASS-T` reported in paper Table II.
    pub fn paper_speedup(self) -> f64 {
        match self {
            TestCase::G3Circuit => 115.0,
            TestCase::G2Circuit => 71.0,
            TestCase::Fe4elt2 => 70.0,
            TestCase::FeOcean => 91.0,
            TestCase::FeSphere => 93.0,
            TestCase::DelaunayN18 => 122.0,
            TestCase::DelaunayN19 => 159.0,
            TestCase::DelaunayN20 => 164.0,
            TestCase::DelaunayN21 => 142.0,
            TestCase::DelaunayN22 => 151.0,
            TestCase::M6 => 218.0,
            TestCase::Sp333 => 210.0,
            TestCase::As365 => 197.0,
            TestCase::Naca15 => 145.0,
        }
    }

    /// Builds the synthetic stand-in graph with about
    /// `paper_nodes() × scale` nodes.
    ///
    /// # Panics
    /// Panics if `scale` is not positive and finite.
    pub fn build(self, scale: f64, seed: u64) -> Graph {
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
        let target = ((self.paper_nodes() as f64 * scale) as usize).max(256);
        match self {
            TestCase::G3Circuit | TestCase::G2Circuit => {
                let layers = 2usize;
                let side = ((target / layers) as f64).sqrt().ceil() as usize;
                power_grid(&PowerGridConfig {
                    width: side.max(4),
                    height: side.max(4),
                    layers,
                    seed,
                    ..Default::default()
                })
            }
            TestCase::Fe4elt2 | TestCase::Naca15 => airfoil_mesh(&AirfoilConfig {
                points: target,
                thickness: 0.15,
                seed,
            })
            .expect("airfoil generator produces valid graphs"),
            TestCase::FeOcean => ocean_mesh(&OceanConfig {
                points: target,
                islands: 6,
                seed,
            })
            .expect("ocean generator produces valid graphs"),
            TestCase::FeSphere => {
                let rings = ((target / 2) as f64).sqrt().ceil() as usize;
                sphere_mesh(&SphereConfig {
                    rings: rings.max(4),
                    segments: (2 * rings).max(6),
                    seed,
                })
            }
            TestCase::DelaunayN18
            | TestCase::DelaunayN19
            | TestCase::DelaunayN20
            | TestCase::DelaunayN21
            | TestCase::DelaunayN22 => delaunay(&DelaunayConfig {
                points: target,
                distribution: PointDistribution::Uniform,
                seed,
                ..Default::default()
            })
            .expect("delaunay generator produces valid graphs"),
            TestCase::M6 | TestCase::Sp333 | TestCase::As365 => delaunay(&DelaunayConfig {
                points: target,
                distribution: PointDistribution::CenterGraded,
                seed,
                ..Default::default()
            })
            .expect("delaunay generator produces valid graphs"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingrass_graph::is_connected;

    #[test]
    fn suite_has_fourteen_cases_in_table_order() {
        let suite = paper_suite();
        assert_eq!(suite.len(), 14);
        assert_eq!(suite[0].name(), "G3_circuit");
        assert_eq!(suite[13].name(), "NACA15");
    }

    #[test]
    fn all_cases_build_connected_graphs_at_small_scale() {
        for case in paper_suite() {
            // Tiny scale keeps this test fast; every generator must still
            // deliver a connected graph of roughly the right size.
            let g = case.build(0.002, 42);
            assert!(is_connected(&g), "{} disconnected", case.name());
            assert!(g.num_nodes() >= 200, "{} too small", case.name());
            let ratio = g.num_edges() as f64 / g.num_nodes() as f64;
            let paper_ratio = case.paper_edges() as f64 / case.paper_nodes() as f64;
            assert!(
                (ratio - paper_ratio).abs() / paper_ratio < 0.6,
                "{}: ratio {ratio:.2} vs paper {paper_ratio:.2}",
                case.name()
            );
        }
    }

    #[test]
    fn scaled_sizes_track_targets() {
        let g = TestCase::FeSphere.build(0.05, 1);
        let target = (16_000.0f64 * 0.05) as usize;
        let n = g.num_nodes();
        assert!(
            n as f64 > 0.5 * target as f64 && (n as f64) < 2.0 * target as f64,
            "n={n} target={target}"
        );
    }

    #[test]
    fn paper_metadata_is_positive() {
        for case in paper_suite() {
            assert!(case.paper_nodes() > 0);
            assert!(case.paper_edges() > case.paper_nodes());
            assert!(case.paper_grass_seconds() > 0.0);
            assert!(case.paper_setup_seconds() > 0.0);
            assert!(case.paper_speedup() > 1.0);
        }
    }
}
