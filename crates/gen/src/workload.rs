//! Open-loop traffic generation for the serving front end.
//!
//! The churn/insertion streams in [`crate::ChurnStream`] say *what* the
//! updates are; a [`WorkloadTrace`] says *when* requests arrive and *who*
//! sends them. It is an open-loop arrival schedule — clients do not wait
//! for responses, which is exactly the regime where an unbounded admission
//! queue grows without limit and a bounded one must shed — over a virtual
//! clock, so the same trace replays bit-identically on any machine at any
//! worker width.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// When requests arrive: the inter-arrival sampler of a
/// [`WorkloadTrace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant mean rate — exponential
    /// inter-arrival gaps.
    Poisson {
        /// Mean arrival rate (requests per virtual second).
        rate_hz: f64,
    },
    /// Square-wave bursts: within each period the first `duty` fraction
    /// arrives at `burst_hz`, the rest at `base_hz` (both memoryless
    /// within their phase). Models diurnal spikes and thundering herds.
    Burst {
        /// Off-burst mean arrival rate (requests per virtual second).
        base_hz: f64,
        /// In-burst mean arrival rate (requests per virtual second).
        burst_hz: f64,
        /// Length of one burst cycle (virtual seconds).
        period_s: f64,
        /// Fraction of each period spent bursting, in `(0, 1)`.
        duty: f64,
    },
}

impl ArrivalProcess {
    /// Mean arrival rate of the process (requests per virtual second).
    pub fn mean_rate_hz(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_hz } => rate_hz,
            ArrivalProcess::Burst {
                base_hz,
                burst_hz,
                duty,
                ..
            } => duty * burst_hz + (1.0 - duty) * base_hz,
        }
    }

    /// Instantaneous rate at virtual time `t`.
    fn rate_at(&self, t: f64) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_hz } => rate_hz,
            ArrivalProcess::Burst {
                base_hz,
                burst_hz,
                period_s,
                duty,
            } => {
                let phase = (t / period_s).fract();
                if phase < duty {
                    burst_hz
                } else {
                    base_hz
                }
            }
        }
    }
}

/// Configuration of [`WorkloadTrace::generate`].
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Virtual length of the trace (seconds).
    pub duration_s: f64,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Number of tenants issuing solve requests.
    pub tenants: usize,
    /// The tenant receiving the hot-tenant bias.
    pub hot_tenant: usize,
    /// Fraction of solve requests issued by [`WorkloadConfig::hot_tenant`];
    /// the rest pick a tenant uniformly.
    pub hot_tenant_fraction: f64,
    /// Distinct right-hand-side keys (a key seeds the request's RHS, so
    /// equal keys mean identical requests — a cacheable/hot query).
    pub keys: u64,
    /// Size of the hot-key subset (`keys` prefix `0..hot_keys`).
    pub hot_keys: u64,
    /// Fraction of solve requests drawn from the hot-key subset; the rest
    /// pick a key uniformly over all keys.
    pub hot_key_fraction: f64,
    /// Fraction of arrivals that are *writer churn* events instead of
    /// reader solves — the mixed read/write traffic the snapshot engine
    /// serves in production.
    pub churn_fraction: f64,
    /// RNG seed; the whole trace is a deterministic function of it.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            duration_s: 10.0,
            arrivals: ArrivalProcess::Poisson { rate_hz: 50.0 },
            tenants: 3,
            hot_tenant: 0,
            hot_tenant_fraction: 0.5,
            keys: 64,
            hot_keys: 4,
            hot_key_fraction: 0.7,
            churn_fraction: 0.05,
            seed: 42,
        }
    }
}

/// One arrival of a [`WorkloadTrace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficEvent {
    /// Virtual arrival time (seconds from trace start, strictly
    /// increasing across the trace).
    pub at_s: f64,
    /// What arrived.
    pub kind: TrafficEventKind,
}

/// The payload of a [`TrafficEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficEventKind {
    /// A reader solve request.
    Solve {
        /// Issuing tenant (`0..tenants`).
        tenant: usize,
        /// Right-hand-side key (`0..keys`).
        key: u64,
    },
    /// A writer churn step: the driver applies the next batch of its
    /// churn stream (`batch` is the running churn-step index).
    Churn {
        /// 0-based index of this churn step within the trace.
        batch: usize,
    },
}

/// A replayable open-loop arrival schedule: virtual timestamps plus
/// tenant/key labels for solves and step indices for churn.
///
/// # Example
/// ```
/// use ingrass_gen::{WorkloadConfig, WorkloadTrace, TrafficEventKind};
/// let trace = WorkloadTrace::generate(&WorkloadConfig::default());
/// assert!(trace.solves() > 0);
/// // Deterministic: the same config replays the same trace.
/// let again = WorkloadTrace::generate(&WorkloadConfig::default());
/// assert_eq!(trace.events(), again.events());
/// // Timestamps are strictly increasing and within the duration.
/// for w in trace.events().windows(2) {
///     assert!(w[0].at_s < w[1].at_s);
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadTrace {
    events: Vec<TrafficEvent>,
    solves: usize,
    churns: usize,
}

impl WorkloadTrace {
    /// Generates the trace for `cfg`.
    ///
    /// # Panics
    /// Panics if the duration or a rate is not positive, a fraction is
    /// outside `[0, 1]`, `hot_tenant` does not name a tenant, or the
    /// hot-key subset exceeds the key space.
    pub fn generate(cfg: &WorkloadConfig) -> Self {
        assert!(
            cfg.duration_s.is_finite() && cfg.duration_s > 0.0,
            "duration must be positive"
        );
        match cfg.arrivals {
            ArrivalProcess::Poisson { rate_hz } => {
                assert!(
                    rate_hz.is_finite() && rate_hz > 0.0,
                    "rate must be positive"
                );
            }
            ArrivalProcess::Burst {
                base_hz,
                burst_hz,
                period_s,
                duty,
            } => {
                assert!(
                    base_hz.is_finite() && base_hz > 0.0 && burst_hz.is_finite() && burst_hz > 0.0,
                    "rates must be positive"
                );
                assert!(
                    period_s.is_finite() && period_s > 0.0,
                    "period must be positive"
                );
                assert!(duty > 0.0 && duty < 1.0, "duty must be in (0, 1)");
            }
        }
        for (name, f) in [
            ("hot_tenant_fraction", cfg.hot_tenant_fraction),
            ("hot_key_fraction", cfg.hot_key_fraction),
            ("churn_fraction", cfg.churn_fraction),
        ] {
            assert!(
                f.is_finite() && (0.0..=1.0).contains(&f),
                "{name} must be within [0, 1]"
            );
        }
        assert!(cfg.tenants >= 1, "need at least one tenant");
        assert!(cfg.hot_tenant < cfg.tenants, "hot tenant out of range");
        assert!(cfg.keys >= 1, "need at least one key");
        assert!(cfg.hot_keys <= cfg.keys, "hot-key subset exceeds key space");

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut events = Vec::new();
        let (mut solves, mut churns) = (0usize, 0usize);
        let mut t = 0.0f64;
        loop {
            // Exponential gap at the instantaneous rate. For the burst
            // process this approximates the non-homogeneous Poisson by
            // freezing the rate over one gap — gaps are short against the
            // burst period, and the schedule stays a pure function of the
            // seed either way.
            let rate = cfg.arrivals.rate_at(t);
            let u: f64 = rng.random();
            t += -(1.0 - u).ln() / rate;
            if t >= cfg.duration_s {
                break;
            }
            let kind = if rng.random::<f64>() < cfg.churn_fraction {
                let batch = churns;
                churns += 1;
                TrafficEventKind::Churn { batch }
            } else {
                let tenant = if rng.random::<f64>() < cfg.hot_tenant_fraction {
                    cfg.hot_tenant
                } else {
                    rng.random_range(0..cfg.tenants)
                };
                let key = if cfg.hot_keys > 0 && rng.random::<f64>() < cfg.hot_key_fraction {
                    rng.random_range(0..cfg.hot_keys)
                } else {
                    rng.random_range(0..cfg.keys)
                };
                solves += 1;
                TrafficEventKind::Solve { tenant, key }
            };
            events.push(TrafficEvent { at_s: t, kind });
        }
        WorkloadTrace {
            events,
            solves,
            churns,
        }
    }

    /// The arrivals, in strictly increasing virtual time.
    pub fn events(&self) -> &[TrafficEvent] {
        &self.events
    }

    /// Solve arrivals in the trace.
    pub fn solves(&self) -> usize {
        self.solves
    }

    /// Churn arrivals in the trace.
    pub fn churns(&self) -> usize {
        self.churns
    }

    /// Solve arrivals per tenant (length = max tenant index + 1 observed,
    /// padded to at least `tenants` entries when passed).
    pub fn solves_per_tenant(&self, tenants: usize) -> Vec<usize> {
        let mut per = vec![0usize; tenants];
        for e in &self.events {
            if let TrafficEventKind::Solve { tenant, .. } = e.kind {
                if tenant >= per.len() {
                    per.resize(tenant + 1, 0);
                }
                per[tenant] += 1;
            }
        }
        per
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_for_seed_and_differs_across_seeds() {
        let cfg = WorkloadConfig::default();
        let a = WorkloadTrace::generate(&cfg);
        let b = WorkloadTrace::generate(&cfg);
        assert_eq!(a, b);
        let c = WorkloadTrace::generate(&WorkloadConfig { seed: 7, ..cfg });
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn poisson_arrival_count_tracks_the_rate() {
        let cfg = WorkloadConfig {
            duration_s: 50.0,
            arrivals: ArrivalProcess::Poisson { rate_hz: 40.0 },
            churn_fraction: 0.0,
            ..Default::default()
        };
        let trace = WorkloadTrace::generate(&cfg);
        // E[N] = 2000, sd ≈ 45; allow ±5 sd.
        let n = trace.events().len() as f64;
        assert!((n - 2000.0).abs() < 225.0, "count {n}");
        assert_eq!(trace.solves(), trace.events().len());
        for w in trace.events().windows(2) {
            assert!(w[0].at_s < w[1].at_s, "timestamps must increase");
        }
        assert!(trace.events().last().unwrap().at_s < cfg.duration_s);
    }

    #[test]
    fn burst_process_clusters_arrivals_into_the_duty_window() {
        let period = 2.0;
        let duty = 0.25;
        let cfg = WorkloadConfig {
            duration_s: 40.0,
            arrivals: ArrivalProcess::Burst {
                base_hz: 10.0,
                burst_hz: 200.0,
                period_s: period,
                duty,
            },
            churn_fraction: 0.0,
            ..Default::default()
        };
        let trace = WorkloadTrace::generate(&cfg);
        let in_burst = trace
            .events()
            .iter()
            .filter(|e| (e.at_s / period).fract() < duty)
            .count();
        let frac = in_burst as f64 / trace.events().len() as f64;
        // Burst window carries 200·0.25 / (200·0.25 + 10·0.75) ≈ 87 % of
        // arrivals.
        assert!(frac > 0.75, "burst fraction {frac}");
        let mean = cfg.arrivals.mean_rate_hz();
        assert!((mean - 57.5).abs() < 1e-12);
    }

    #[test]
    fn hot_tenant_and_hot_keys_dominate_the_mix() {
        let cfg = WorkloadConfig {
            duration_s: 30.0,
            arrivals: ArrivalProcess::Poisson { rate_hz: 100.0 },
            tenants: 4,
            hot_tenant: 2,
            hot_tenant_fraction: 0.6,
            keys: 100,
            hot_keys: 5,
            hot_key_fraction: 0.8,
            churn_fraction: 0.0,
            seed: 9,
        };
        let trace = WorkloadTrace::generate(&cfg);
        let per = trace.solves_per_tenant(cfg.tenants);
        assert_eq!(per.iter().sum::<usize>(), trace.solves());
        // Hot tenant draws 0.6 + 0.4/4 = 70 % of requests.
        let hot_share = per[2] as f64 / trace.solves() as f64;
        assert!((hot_share - 0.7).abs() < 0.06, "hot share {hot_share}");
        let hot_key_hits = trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, TrafficEventKind::Solve { key, .. } if key < 5))
            .count();
        let key_share = hot_key_hits as f64 / trace.solves() as f64;
        // 0.8 + 0.2·(5/100) = 81 %.
        assert!(key_share > 0.7, "hot-key share {key_share}");
    }

    #[test]
    fn churn_fraction_mixes_writer_events_with_running_indices() {
        let cfg = WorkloadConfig {
            duration_s: 20.0,
            arrivals: ArrivalProcess::Poisson { rate_hz: 50.0 },
            churn_fraction: 0.2,
            ..Default::default()
        };
        let trace = WorkloadTrace::generate(&cfg);
        assert!(trace.churns() > 0 && trace.solves() > 0);
        assert_eq!(trace.churns() + trace.solves(), trace.events().len());
        let share = trace.churns() as f64 / trace.events().len() as f64;
        assert!((share - 0.2).abs() < 0.06, "churn share {share}");
        // Churn batch indices are the sequence 0, 1, 2, … in time order.
        let batches: Vec<usize> = trace
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                TrafficEventKind::Churn { batch } => Some(batch),
                _ => None,
            })
            .collect();
        assert_eq!(batches, (0..trace.churns()).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "hot tenant out of range")]
    fn invalid_hot_tenant_is_rejected() {
        WorkloadTrace::generate(&WorkloadConfig {
            tenants: 2,
            hot_tenant: 5,
            ..Default::default()
        });
    }
}
