//! Heavy-tailed graph generators — the "social networks" of the paper's
//! abstract.

use crate::grid::WeightModel;
use ingrass_graph::{connected_components, Graph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`rmat`].
#[derive(Debug, Clone)]
pub struct RmatConfig {
    /// log₂ of the node count.
    pub scale: u32,
    /// Average edges per node to attempt.
    pub edge_factor: usize,
    /// RMAT quadrant probabilities `(a, b, c)`; `d = 1 − a − b − c`.
    pub probabilities: (f64, f64, f64),
    /// Edge weight model.
    pub weights: WeightModel,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RmatConfig {
    fn default() -> Self {
        RmatConfig {
            scale: 10,
            edge_factor: 8,
            probabilities: (0.57, 0.19, 0.19),
            weights: WeightModel::Unit,
            seed: 0,
        }
    }
}

/// Recursive-matrix (R-MAT/Graph500 style) generator.
///
/// Duplicate edges coalesce (weights sum), self-loops are dropped, and a
/// random Hamiltonian backbone path is added so the graph is always
/// connected (isolated vertices would otherwise make sparsification
/// experiments ill-posed).
///
/// # Panics
/// Panics if the probabilities are outside `[0, 1]` or sum above 1.
pub fn rmat(cfg: &RmatConfig) -> Graph {
    let (a, b, c) = cfg.probabilities;
    assert!(a >= 0.0 && b >= 0.0 && c >= 0.0 && a + b + c <= 1.0 + 1e-12);
    let n = 1usize << cfg.scale;
    let m = n * cfg.edge_factor;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut builder = GraphBuilder::with_capacity(n, m + n);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for bit in (0..cfg.scale).rev() {
            let r: f64 = rng.random();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u |= du << bit;
            v |= dv << bit;
        }
        if u != v {
            builder
                .add_edge(u, v, cfg.weights.sample(&mut rng))
                .expect("rmat indices valid");
        }
    }
    // Connectivity backbone: a random permutation path with light weights.
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        perm.swap(i, j);
    }
    for w in perm.windows(2) {
        builder
            .add_edge(w[0], w[1], 0.25 * cfg.weights.sample(&mut rng))
            .expect("backbone indices valid");
    }
    let g = builder.build();
    debug_assert_eq!(connected_components(&g).0, 1);
    g
}

/// Configuration for [`barabasi_albert`].
#[derive(Debug, Clone)]
pub struct BaConfig {
    /// Total number of nodes.
    pub nodes: usize,
    /// Edges attached from each new node (preferential attachment).
    pub attach: usize,
    /// Edge weight model.
    pub weights: WeightModel,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BaConfig {
    fn default() -> Self {
        BaConfig {
            nodes: 1000,
            attach: 4,
            weights: WeightModel::Unit,
            seed: 0,
        }
    }
}

/// Barabási–Albert preferential attachment — connected by construction,
/// power-law degrees.
///
/// # Panics
/// Panics if `attach == 0` or `nodes <= attach`.
pub fn barabasi_albert(cfg: &BaConfig) -> Graph {
    assert!(cfg.attach > 0 && cfg.nodes > cfg.attach);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Repeated-endpoint list implements preferential attachment in O(1).
    let mut endpoints: Vec<usize> = Vec::with_capacity(2 * cfg.nodes * cfg.attach);
    let mut builder = GraphBuilder::with_capacity(cfg.nodes, cfg.nodes * cfg.attach);
    // Seed clique over the first attach+1 nodes.
    for u in 0..=cfg.attach {
        for v in (u + 1)..=cfg.attach {
            builder
                .add_edge(u, v, cfg.weights.sample(&mut rng))
                .expect("seed clique indices valid");
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for u in (cfg.attach + 1)..cfg.nodes {
        let mut picked = std::collections::HashSet::new();
        let mut guard = 0usize;
        while picked.len() < cfg.attach && guard < 50 * cfg.attach {
            guard += 1;
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if t != u {
                picked.insert(t);
            }
        }
        for &v in &picked {
            builder
                .add_edge(u, v, cfg.weights.sample(&mut rng))
                .expect("attachment indices valid");
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingrass_graph::{is_connected, NodeId};

    #[test]
    fn rmat_is_connected_and_skewed() {
        let g = rmat(&RmatConfig {
            scale: 9,
            edge_factor: 8,
            ..Default::default()
        });
        assert_eq!(g.num_nodes(), 512);
        assert!(is_connected(&g));
        // Degree skew: max degree far above average.
        let max_deg = (0..g.num_nodes())
            .map(|u| g.degree(NodeId::new(u)))
            .max()
            .unwrap();
        let avg = 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(max_deg as f64 > 3.0 * avg, "max {max_deg} avg {avg}");
    }

    #[test]
    fn ba_is_connected_with_powerlaw_tail() {
        let g = barabasi_albert(&BaConfig {
            nodes: 800,
            attach: 3,
            ..Default::default()
        });
        assert_eq!(g.num_nodes(), 800);
        assert!(is_connected(&g));
        let max_deg = (0..g.num_nodes())
            .map(|u| g.degree(NodeId::new(u)))
            .max()
            .unwrap();
        assert!(max_deg > 20, "hub degree {max_deg}");
    }

    #[test]
    fn generators_are_deterministic() {
        let a = rmat(&RmatConfig::default());
        let b = rmat(&RmatConfig::default());
        assert_eq!(a.num_edges(), b.num_edges());
        let a = barabasi_albert(&BaConfig::default());
        let b = barabasi_albert(&BaConfig::default());
        assert_eq!(a.num_edges(), b.num_edges());
    }
}
