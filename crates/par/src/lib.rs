//! Deterministic parallel primitives for the inGRASS workspace.
//!
//! Every hot path in this workspace — Krylov probe smoothing, JL probe
//! solves, batched CG right-hand sides, per-edge distortion scoring — is an
//! *index-parallel* map: item `i` is computed from `i` (and shared read-only
//! state) alone. This crate runs such maps across threads while keeping the
//! output **bit-for-bit identical to the serial loop at any thread count**:
//!
//! * work is distributed dynamically (an atomic cursor), but every result is
//!   placed back at its own index, so the output order never depends on
//!   scheduling;
//! * nothing is reduced across threads in non-deterministic order — callers
//!   that need randomness derive an independent seed per index with
//!   [`derive_seed`] instead of sharing one RNG stream.
//!
//! The thread count comes from [`num_threads`]: the `INGRASS_THREADS`
//! environment variable when set (and ≥ 1), otherwise
//! [`std::thread::available_parallelism`]. `INGRASS_THREADS=1` disables
//! threading entirely (no pool, no spawn — the exact serial loop).
//!
//! # Example
//!
//! ```
//! // Squares of 0..8, computed on however many threads the host has.
//! let sq = ingrass_par::par_map_range(8, |i| (i * i) as u64);
//! assert_eq!(sq, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![deny(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

pub use scoped_threadpool::{Pool, Scope};

/// Environment variable overriding the worker thread count.
pub const THREADS_ENV: &str = "INGRASS_THREADS";

/// The parallel width to use: `INGRASS_THREADS` if set to an integer ≥ 1,
/// otherwise the host's available parallelism (1 if that is unknown).
///
/// Unparsable or zero values of the variable are ignored (falling back to
/// the host default) rather than panicking: the variable is an operator
/// knob, not an API.
pub fn num_threads() -> usize {
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Derives an independent RNG seed for stream `stream` of a master seed.
///
/// SplitMix64 finalizer over `master ^ (stream + φ·(stream+1))` — streams of
/// the same master are decorrelated, and the mapping is stable across
/// platforms (it feeds the deterministic vendored `rand::StdRng`). Giving
/// each parallel probe its *own* seeded RNG (instead of sharing one stream)
/// is what makes parallel and serial execution bit-for-bit identical.
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)))
        ^ stream.rotate_left(32);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps `f` over `0..n` on `threads` workers; `out[i] = f(i)` exactly as the
/// serial loop would produce it.
///
/// `threads <= 1`, `n <= 1`, or a single available worker short-circuits to
/// the plain serial loop (no pool, no channel). Otherwise
/// `min(threads, n)` workers pull indices from an atomic cursor (dynamic
/// load balancing — CG solves converge in wildly different iteration
/// counts) and send `(index, value)` pairs back for in-order placement.
///
/// # Panics
/// Re-panics if `f` panics on any index (after all workers have stopped).
pub fn par_map_range_with<U, F>(threads: usize, n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let width = threads.min(n).max(1);
    if width == 1 {
        return (0..n).map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, U)>();
    let pool = Pool::new(width);
    let mut out: Vec<Option<U>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    pool.scoped(|scope| {
        for _ in 0..width {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.execute(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // A closed channel means the drain side unwound; stop.
                if tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
        // Drain on the caller thread *while* the workers produce: channel
        // occupancy stays transient instead of buffering all n results
        // (which would double peak memory for vector-valued maps), and the
        // loop ends when the last worker drops its sender.
        drop(tx);
        for (i, v) in rx {
            out[i] = Some(v);
        }
    });
    out.into_iter()
        .map(|v| v.expect("every index was computed exactly once"))
        .collect()
}

/// [`par_map_range_with`] at the ambient [`num_threads`] width.
pub fn par_map_range<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_map_range_with(num_threads(), n, f)
}

/// Maps `f` over a slice on `threads` workers, preserving order.
pub fn par_map_with<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_range_with(threads, items.len(), |i| f(&items[i]))
}

/// Maps `f` over a slice at the ambient [`num_threads`] width, preserving
/// order.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_with(num_threads(), items, f)
}

/// Below this many items, [`par_map_auto`] stays serial: its call sites do
/// microseconds of work per item (an O(dim) embedding distance, an
/// O(levels) hierarchy read), and spawning a worker costs tens of
/// microseconds — fanning out a small cheap map is a net loss.
pub const PAR_AUTO_THRESHOLD: usize = 8192;

/// [`par_map`] for *cheap* per-item maps: serial below
/// [`PAR_AUTO_THRESHOLD`] items, the ambient [`num_threads`] width above.
/// One shared threshold keeps every such call site's dispatch policy in
/// sync. The output is identical either way.
pub fn par_map_auto<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if items.len() < PAR_AUTO_THRESHOLD {
        items.iter().map(f).collect()
    } else {
        par_map(items, f)
    }
}

/// Runs `f` with a scope that can spawn borrowing jobs at the ambient
/// [`num_threads`] width; all jobs join before this returns.
///
/// For irregular fork–join shapes that [`par_map`] does not fit. The scope's
/// pool width is advisory (see `scoped_threadpool`): submit at most
/// [`Pool::thread_count`] jobs and split finer work inside them.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    scope_with(num_threads(), f)
}

/// [`scope`] at an explicit worker width (clamped to ≥ 1): the fork–join
/// companion to [`par_map_with`] for irregular job shapes whose caller
/// carries its own thread knob instead of the ambient `INGRASS_THREADS`
/// width.
pub fn scope_with<'env, F, R>(threads: usize, f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Pool::new(threads.max(1)).scoped(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// `INGRASS_THREADS` is process-global, and concurrent `setenv`/`getenv`
    /// is undefined behavior on glibc. Every test that *writes* the variable
    /// AND every test that *reads* it (anything going through the ambient
    /// [`num_threads`] width) must hold this lock, so the cargo test
    /// harness's own threading cannot interleave a write with a read.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn par_map_matches_serial_at_every_width() {
        let serial: Vec<u64> = (0..257)
            .map(|i| (i as u64).wrapping_mul(2654435761))
            .collect();
        for threads in [1, 2, 3, 4, 8, 300] {
            let par = par_map_range_with(threads, 257, |i| (i as u64).wrapping_mul(2654435761));
            assert_eq!(par, serial, "width {threads} diverged");
        }
    }

    #[test]
    fn zero_sized_input_yields_empty_vec() {
        let v: Vec<u32> = par_map_range_with(8, 0, |_| unreachable!("no items"));
        assert!(v.is_empty());
        let empty: [u8; 0] = [];
        let v: Vec<u32> = par_map_with(4, &empty, |_| unreachable!("no items"));
        assert!(v.is_empty());
    }

    #[test]
    fn slice_map_borrows_items() {
        let words = ["a", "bb", "ccc"];
        assert_eq!(par_map_with(2, &words, |w| w.len()), vec![1, 2, 3]);
    }

    #[test]
    fn panic_in_one_item_propagates() {
        let result = std::panic::catch_unwind(|| {
            par_map_range_with(4, 64, |i| {
                if i == 13 {
                    panic!("unlucky index");
                }
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn derive_seed_decorrelates_streams() {
        let s: Vec<u64> = (0..64).map(|i| derive_seed(42, i)).collect();
        let mut uniq = s.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), s.len(), "seed collision across streams");
        // Different masters give different streams.
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
        // Stable mapping (guards against accidental reshuffles breaking
        // recorded baselines).
        assert_eq!(derive_seed(42, 0), derive_seed(42, 0));
    }

    #[test]
    fn env_override_forces_single_thread() {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var(THREADS_ENV, "1");
        assert_eq!(num_threads(), 1);
        std::env::set_var(THREADS_ENV, "6");
        assert_eq!(num_threads(), 6);
        std::env::remove_var(THREADS_ENV);
    }

    #[test]
    fn env_garbage_falls_back_to_host_width() {
        let _guard = ENV_LOCK.lock().unwrap();
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        for bad in ["0", "-3", "lots", ""] {
            std::env::set_var(THREADS_ENV, bad);
            assert_eq!(num_threads(), host, "value {bad:?} must be ignored");
        }
        std::env::remove_var(THREADS_ENV);
    }

    #[test]
    fn scope_with_explicit_width_joins_all_jobs() {
        // No ENV_LOCK needed: the width is explicit, nothing reads the env.
        for width in [1, 2, 4] {
            let mut parts = vec![0usize; 4];
            scope_with(width, |s| {
                for (i, p) in parts.iter_mut().enumerate() {
                    s.execute(move || *p = i + 1);
                }
            });
            assert_eq!(parts, vec![1, 2, 3, 4], "width {width}");
        }
        // Zero clamps to one worker instead of panicking.
        let mut one = 0usize;
        scope_with(0, |s| s.execute(|| one = 7));
        assert_eq!(one, 7);
    }

    #[test]
    fn scope_joins_all_jobs() {
        let _guard = ENV_LOCK.lock().unwrap(); // scope() reads INGRASS_THREADS
        let mut parts = vec![0usize; 4];
        scope(|s| {
            for (i, p) in parts.iter_mut().enumerate() {
                s.execute(move || *p = i + 1);
            }
        });
        assert_eq!(parts, vec![1, 2, 3, 4]);
    }
}
