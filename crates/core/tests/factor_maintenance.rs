//! Incremental factor maintenance, pinned end to end: a snapshot factor
//! patched with rank-1 up/downdates must behave exactly like a factor
//! rebuilt from scratch — across fill-budget fallbacks, the refactor
//! backstop, and drift-triggered re-setups — and the LRD nested-dissection
//! ordering that makes the patches cheap must actually produce less fill
//! than the AMD-lite minimum-degree default on a churned Delaunay mesh.

use ingrass::{
    lrd_nested_dissection_order, DriftPolicy, FactorPolicy, SetupConfig, SnapshotEngine,
    UpdateConfig, UpdateOp,
};
use ingrass_gen::{delaunay, grid_2d, ChurnConfig, ChurnStream, DelaunayConfig, WeightModel};
use ingrass_graph::Graph;
use ingrass_linalg::{CsrMatrix, Preconditioner, SparseCholesky};
use proptest::prelude::*;

/// The patched snapshot factor and a from-scratch rebuild are both exact
/// solves of the same grounded sparsifier Laplacian, so their
/// `Preconditioner::apply` must agree on any right-hand side up to
/// rounding — regardless of elimination ordering or update history.
fn assert_factor_parity(engine: &SnapshotEngine, context: &str) {
    let snap = engine.snapshot();
    let fresh = engine.engine().preconditioner().expect("fresh factor");
    let n = snap.num_nodes();
    let mut r = vec![0.0; n];
    // A deterministic, dense-ish probe: e_1 − e_{n−1} plus a ramp.
    for (i, ri) in r.iter_mut().enumerate() {
        *ri = ((i * 7 + 3) % 11) as f64 / 11.0 - 0.5;
    }
    r[1] += 1.0;
    r[n - 1] -= 1.0;
    let mut z_patched = vec![0.0; n];
    let mut z_fresh = vec![0.0; n];
    snap.preconditioner().apply(&r, &mut z_patched);
    fresh.apply(&r, &mut z_fresh);
    let scale = z_fresh.iter().fold(1.0f64, |m, &v| m.max(v.abs()));
    let err = z_patched
        .iter()
        .zip(&z_fresh)
        .fold(0.0f64, |m, (&a, &b)| m.max((a - b).abs()));
    assert!(
        err <= 1e-7 * scale,
        "{context}: patched factor drifted from refactorization \
         (max abs diff {err:.3e}, scale {scale:.3e})"
    );
}

/// Turns a proptest pick into an update op against the *live* sparsifier:
/// deletions and reweights index into the current edge list so they always
/// name a real edge, insertions draw fresh endpoints.
fn pick_to_op(
    engine: &SnapshotEngine,
    kind: usize,
    a: usize,
    b: usize,
    w: f64,
) -> Option<UpdateOp> {
    let h = engine.engine().sparsifier();
    let n = h.num_nodes();
    match kind {
        0 => {
            let (u, v) = (a % n, b % n);
            if u == v {
                None
            } else {
                Some(UpdateOp::Insert { u, v, weight: w })
            }
        }
        1 => {
            let edges: Vec<_> = h.edges_iter().collect();
            let (_, e) = edges[a % edges.len()];
            Some(UpdateOp::Reweight {
                u: e.u.index(),
                v: e.v.index(),
                weight: w,
            })
        }
        _ => {
            let edges: Vec<_> = h.edges_iter().collect();
            let (_, e) = edges[a % edges.len()];
            Some(UpdateOp::Delete {
                u: e.u.index(),
                v: e.v.index(),
            })
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random mixed batches through the snapshot engine: after every
    /// publish the served (patched) factor matches a from-scratch
    /// refactorization — under the default policy *and* under a
    /// pathological one (no fill headroom, refactor backstop every other
    /// publish) that forces the fallback paths to fire.
    #[test]
    fn patched_factor_matches_refactorization_at_every_publish(
        picks in proptest::collection::vec(
            (0usize..3, 0usize..1024, 0usize..1024, 0.2f64..2.0),
            4..28,
        ),
        batch_len in 2usize..6,
    ) {
        let g = grid_2d(8, 8, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 7);
        let policies = [
            // Patch-friendly: the cap at its domain maximum routes every
            // batch with at most n deltas through the rank-1 path, so
            // parity covers the patched factor at most publishes. The cap
            // is per-delta, not per-op — a redistributed insert fans out
            // to every intra-cluster edge — so the occasional wide batch
            // takes the (equally exact) numeric tier instead.
            FactorPolicy {
                max_patch_fraction: 1.0,
                ..FactorPolicy::default()
            },
            // No fill headroom and an aggressive backstop: patches that
            // need any fill fall back to refactorization, and even clean
            // runs refactor every other publish.
            FactorPolicy {
                incremental: true,
                fill_growth: 1.0,
                max_updates_between_refactors: 2,
                ..FactorPolicy::default()
            },
        ];
        for (pi, policy) in policies.iter().enumerate() {
            let mut engine = SnapshotEngine::setup(&g, &SetupConfig::default())
                .unwrap()
                .with_factor_policy(*policy)
                .unwrap();
            let ucfg = UpdateConfig::default();
            for chunk in picks.chunks(batch_len) {
                let ops: Vec<UpdateOp> = chunk
                    .iter()
                    .filter_map(|&(k, a, b, w)| pick_to_op(&engine, k, a, b, w))
                    .collect();
                if ops.is_empty() {
                    continue;
                }
                engine.apply_batch(&ops, &ucfg).unwrap();
                assert_factor_parity(&engine, &format!("policy {pi}"));
            }
            // Both maintenance paths stay live: something was published,
            // and the counters account for every publish.
            prop_assert!(engine.factor_updates() + engine.factor_refactors() >= 1);
        }
    }
}

/// Crossing a drift-triggered re-setup (epoch move) must refactor — and
/// the very next ordinary batch must resume patching, still in parity.
#[test]
fn parity_holds_across_a_drift_resetup_boundary() {
    let g = grid_2d(10, 10, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 3);
    let cfg = SetupConfig::default().with_drift(DriftPolicy {
        max_deleted_weight_fraction: 0.02,
        ..DriftPolicy::default()
    });
    // Patch cap at its domain maximum so the single-op batches below take
    // the rank-1 path, and a pinned near-leaf filtering level so an insert
    // includes/merges (one delta) instead of fanning out across a whole
    // cluster's intra edges past the cap.
    let mut engine = SnapshotEngine::setup(&g, &cfg)
        .unwrap()
        .with_factor_policy(FactorPolicy {
            max_patch_fraction: 1.0,
            ..FactorPolicy::default()
        })
        .unwrap();
    let ucfg = UpdateConfig::default().with_filtering_level_override(Some(1));

    // An ordinary batch patches in place.
    let r1 = engine
        .apply_batch(
            &[UpdateOp::Insert {
                u: 0,
                v: 55,
                weight: 1.0,
            }],
            &ucfg,
        )
        .unwrap();
    let p1 = r1.publish.expect("insert publishes");
    assert!(p1.factor_updated, "ordinary batch should patch the factor");
    assert_factor_parity(&engine, "pre-resetup patch");

    // Delete non-tree weight until the 2% drift threshold trips.
    let mut resetup_seen = false;
    for _ in 0..40 {
        let edges: Vec<(usize, usize)> = engine
            .engine()
            .sparsifier()
            .edges_iter()
            .map(|(_, e)| (e.u.index(), e.v.index()))
            .collect();
        // Deleting a fixed-position edge each round; bridges re-link, so
        // connectivity (and factorability) is preserved by the engine.
        let (u, v) = edges[edges.len() / 2];
        let rep = engine
            .apply_batch(&[UpdateOp::Delete { u, v }], &ucfg)
            .unwrap();
        assert_factor_parity(&engine, "churn toward resetup");
        if rep.update.resetup.is_some() {
            let pub_report = rep.publish.expect("resetup publishes");
            assert!(
                !pub_report.factor_updated,
                "an epoch move must refactor, not patch"
            );
            resetup_seen = true;
            break;
        }
    }
    assert!(resetup_seen, "drift policy at 2% never tripped");

    // Post-resetup: ordinary batches patch again, against the new epoch.
    let refactors_before = engine.factor_refactors();
    let r2 = engine
        .apply_batch(
            &[UpdateOp::Insert {
                u: 1,
                v: 77,
                weight: 0.8,
            }],
            &ucfg,
        )
        .unwrap();
    let p2 = r2.publish.expect("insert publishes");
    assert!(p2.factor_updated, "patching should resume after re-setup");
    assert_eq!(engine.factor_refactors(), refactors_before);
    assert_factor_parity(&engine, "post-resetup patch");
}

/// Grounded Laplacian (node 0 dropped) of a graph, as the solver builds it.
fn grounded_laplacian(g: &Graph) -> CsrMatrix {
    let n = g.num_nodes();
    let shift = |x: usize| x - 1;
    let mut trip = Vec::with_capacity(4 * g.num_edges());
    for e in g.edges() {
        let (u, v, w) = (e.u.index(), e.v.index(), e.weight);
        if u != 0 {
            trip.push((shift(u), shift(u), w));
        }
        if v != 0 {
            trip.push((shift(v), shift(v), w));
        }
        if u != 0 && v != 0 {
            trip.push((shift(u), shift(v), -w));
            trip.push((shift(v), shift(u), -w));
        }
    }
    CsrMatrix::from_triplets(n - 1, n - 1, &trip)
}

/// The point of deriving the elimination ordering from the LRD cluster
/// tree: on a churned Delaunay graph — where the update stream has laced
/// the mesh with long random chords — the hierarchy-guided ordering must
/// give a *valid permutation* and strictly less fill `nnz(L)` than the
/// AMD-lite minimum-degree ordering the factorization defaults to.
/// Engine-free on purpose: the hierarchy is built directly from the
/// churned graph with r = 1/w, so the test pins the ordering itself, not
/// the sparsification pipeline around it.
#[test]
fn lrd_nested_dissection_beats_min_degree_on_churned_delaunay_fill() {
    use ingrass::LrdHierarchy;

    let g = delaunay(&DelaunayConfig {
        points: 1000,
        weights: WeightModel::Uniform { lo: 0.5, hi: 2.0 },
        seed: 42,
        ..DelaunayConfig::default()
    })
    .expect("delaunay generation");
    // The serve-benchmark's churn mix, replayed straight onto the mesh:
    // inserts are mostly non-local, so the surviving graph carries the
    // cross-cluster chords that inflate min-degree fill.
    let churn = ChurnStream::generate(
        &g,
        &ChurnConfig {
            batches: 4,
            ops_per_batch: 200,
            delete_fraction: 0.25,
            reweight_fraction: 0.15,
            seed: 42,
            ..ChurnConfig::default()
        },
    );
    let h = churn.apply_to(&g).expect("churn replay");

    let resistances: Vec<f64> = h.edges().iter().map(|e| 1.0 / e.weight).collect();
    let hierarchy = LrdHierarchy::build(&h, &resistances, None, 4.0, 64).expect("hierarchy");
    let order = lrd_nested_dissection_order(
        &hierarchy,
        h.edges().iter().map(|e| (e.u.index(), e.v.index())),
        Some(0),
    );

    // Validity: a permutation of the grounded index range.
    let m = h.num_nodes() - 1;
    assert_eq!(order.len(), m);
    let mut seen = vec![false; m];
    for &p in &order {
        assert!(p < m, "ordering index {p} out of range {m}");
        assert!(!seen[p], "ordering repeats index {p}");
        seen[p] = true;
    }

    let grounded = grounded_laplacian(&h);
    let amd = SparseCholesky::factor(&grounded).expect("min-degree factor");
    let nd = SparseCholesky::factor_with_order(&grounded, &order).expect("guided factor");
    assert!(
        nd.nnz() < amd.nnz(),
        "LRD-guided ordering should beat min-degree on fill: nd {} vs amd {}",
        nd.nnz(),
        amd.nnz()
    );
}
