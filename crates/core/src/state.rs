//! Exact, serializable engine state — the contract between the core crate
//! and the persistence layer (`ingrass-store`).
//!
//! Recovery must be *bit-exact*: the parity proptests pin that an engine
//! restored from a snapshot plus a replayed WAL tail produces the same
//! sparsifier edges, factor values, and ledger decisions as an engine that
//! ran straight through. That rules out "rebuild from the graph" shortcuts
//! for two structures:
//!
//! * the [`crate::ClusterConnectivity`] index is maintained
//!   *incrementally* — a deletion drops a cluster-pair entry only when its
//!   representative edge died, without re-indexing other live crossing
//!   edges, so a fresh `build()` over the restored graph can disagree with
//!   the maintained index and change later merge/redistribute decisions;
//! * the serving layer's live Cholesky factor accumulates rank-1 patches,
//!   so a factor refactorized at load time differs in rounding from the
//!   continuously patched one.
//!
//! Hence every structure exports its exact fields. Two kinds of state are
//! deliberately *not* persisted because they are unobservable: the
//! engine's probe-mark scratch (each connectivity probe stamps two fresh
//! marks) restores to zeros, and the process-unique `instance_id` is
//! regenerated so external caches never confuse a restored engine with the
//! original.
//!
//! Determinism caveats encoded here: the connectivity maps' outer HashMap
//! keys are sorted for deterministic bytes, but the *inner* intra-edge
//! lists are kept verbatim — the redistribute path accumulates weight
//! shares in list order, so reordering them would perturb floating-point
//! sums.

use crate::config::SetupConfig;
use crate::report::SetupReport;
use crate::snapshot::FactorPolicy;
use ingrass_linalg::CholeskyState;

/// Exact state of a [`crate::ClusterConnectivity`] index.
///
/// Outer maps are flattened to key-sorted vectors (deterministic bytes);
/// inner intra-edge lists keep their maintained order verbatim (the
/// redistribute path is order-sensitive in floating point).
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectivityState {
    /// Per level: sorted `(cluster_a, cluster_b, representative edge id)`.
    pub pair_maps: Vec<Vec<(u32, u32, u32)>>,
    /// Per level: sorted by cluster, each with its intra-edge id list in
    /// maintained order (possibly containing dead ids — lazily compacted).
    pub intra_maps: Vec<Vec<(u32, Vec<u32>)>>,
    /// Per level: sorted `(cluster, dead entry count)` for the lazy
    /// compaction bookkeeping.
    pub intra_dead: Vec<Vec<(u32, u32)>>,
}

/// Exact state of an [`crate::UpdateLedger`], including the drift tracker
/// whose running sums decide future re-setup points.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerState {
    /// Lifetime insert count.
    pub inserts: usize,
    /// Lifetime delete count.
    pub deletes: usize,
    /// Lifetime reweight count.
    pub reweights: usize,
    /// Lifetime re-link count.
    pub relinks: usize,
    /// Lifetime vacuous-operation count.
    pub vacuous: usize,
    /// Re-setups performed (the engine epoch).
    pub resetups: usize,
    /// Drift tracker: sparsifier weight at the current epoch's setup.
    pub drift_initial_weight: f64,
    /// Drift tracker: node count at the current epoch's setup.
    pub drift_nodes: usize,
    /// Drift tracker: weight deleted since the current epoch began.
    pub drift_deleted_weight: f64,
    /// Drift tracker: accumulated churn distortion `Σ w·R̂`.
    pub drift_accumulated_distortion: f64,
    /// Drift tracker: stale operations since the current epoch began.
    pub drift_stale_ops: usize,
    /// Per-level, per-cluster staleness counters.
    pub staleness_counts: Vec<Vec<u32>>,
    /// Largest staleness count seen this epoch.
    pub staleness_max: u32,
}

/// Exact state of one [`crate::LrdLevel`] — mirrors its public fields so
/// the store crate can encode a hierarchy without new accessors.
#[derive(Debug, Clone, PartialEq)]
pub struct LrdLevelState {
    /// Cluster index of every node.
    pub cluster_of: Vec<u32>,
    /// Resistance-diameter upper bound per cluster.
    pub diameter: Vec<f64>,
    /// Node count per cluster.
    pub size: Vec<u32>,
    /// Number of clusters at this level.
    pub num_clusters: usize,
    /// Diameter budget that formed this level.
    pub threshold: f64,
}

/// Exact state of an [`crate::InGrassEngine`].
///
/// Produced by [`crate::InGrassEngine::export_state`]; consumed (with
/// validation) by [`crate::InGrassEngine::from_state`].
#[derive(Debug, Clone, PartialEq)]
pub struct EngineState {
    /// Node count of the sparsifier.
    pub num_nodes: usize,
    /// The LRD hierarchy, level by level.
    pub levels: Vec<LrdLevelState>,
    /// The cluster-connectivity index, exactly as maintained.
    pub connectivity: ConnectivityState,
    /// The sparsifier's edge-slot array including tombstones
    /// ([`ingrass_graph::DynGraph::edge_slots`]) — positions are edge ids.
    pub edge_slots: Vec<Option<(u32, u32, f64)>>,
    /// Per-edge merged surplus, indexed by edge id.
    pub surplus: Vec<f64>,
    /// Setup-phase statistics (timings are those of the original setup).
    pub setup_report: SetupReport,
    /// The retained setup configuration (drift policy included).
    pub setup_cfg: SetupConfig,
    /// Undrained edge-weight delta journal.
    pub deltas: Vec<(u32, u32, f64)>,
    /// The operation ledger.
    pub ledger: LedgerState,
    /// Stream operations processed so far.
    pub updates_applied: usize,
    /// Monotone engine state version.
    pub version: u64,
}

/// Exact state of a [`crate::SparsifierPrecond`] (grounded factor).
///
/// Carries `built_nnz` / `order_base_nnz` explicitly: a patched factor's
/// current nnz differs from its nnz at the last rebuild, and recomputing
/// either at restore time would shift the fill-budget and
/// ordering-staleness decisions away from the original engine's.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecondState {
    /// Full sparsifier dimension (including the grounded node).
    pub n: usize,
    /// The grounded-out node.
    pub ground: usize,
    /// Engine epoch the factor was built at.
    pub epoch: u64,
    /// Stored factor entries at the last (re)build.
    pub built_nnz: usize,
    /// Stored factor entries when the elimination ordering was computed.
    pub order_base_nnz: usize,
    /// The exact Cholesky factor state.
    pub chol: CholeskyState,
}

/// Exact state of a [`crate::SnapshotEngine`]: the wrapped engine plus the
/// serving layer's incrementally maintained factor and its policy
/// counters.
///
/// Produced by [`crate::SnapshotEngine::export_state`]; consumed by
/// [`crate::SnapshotEngine::from_state`]. This is the payload the store
/// crate serializes into durable snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingState {
    /// The wrapped engine's state.
    pub engine: EngineState,
    /// The live factor, with accumulated rank-1 patches intact.
    pub factor: PrecondState,
    /// Whether the live factor is numerically usable.
    pub factor_valid: bool,
    /// Publish sequence number (snapshots published so far).
    pub sequence: u64,
    /// The factor-maintenance policy.
    pub factor_policy: FactorPolicy,
    /// Consecutive incremental publishes since the last rebuild.
    pub updates_since_refactor: u64,
    /// Lifetime incremental factor patches.
    pub factor_updates: u64,
    /// Lifetime factor rebuilds.
    pub factor_refactors: u64,
}

/// Exact state of a [`crate::ShardedEngine`]: every shard engine, the
/// routing assignment, the boundary edge list, the global hierarchy, and
/// the coordinator's drift counters.
///
/// Produced by [`crate::ShardedEngine::export_state`]; consumed by
/// [`crate::ShardedEngine::from_state`]. Per-shard latency summaries are
/// process-local wall-clock measurements and are deliberately not
/// persisted (they restart empty); per-shard *op* counters are, so
/// imbalance statistics survive a restore.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedState {
    /// Each shard engine's state, by shard index.
    pub shards: Vec<EngineState>,
    /// Node → shard assignment (the persisted form of the routing table;
    /// local index maps are reconstructed from it).
    pub shard_of: Vec<u32>,
    /// The hierarchy level whose clusters seeded the partition.
    pub routing_level: usize,
    /// Cross-shard boundary edges `(u, v, w)` in canonical order.
    pub boundary_edges: Vec<(u32, u32, f64)>,
    /// The global LRD hierarchy's levels (per-level cluster labels).
    pub levels: Vec<LrdLevelState>,
    /// The coordinator's setup configuration (the user's drift policy —
    /// shard engines persist their own drift-disabled copies).
    pub setup_cfg: SetupConfig,
    /// Requested shard count ([`crate::ShardedConfig::shards`]).
    pub shard_count: usize,
    /// Thread override ([`crate::ShardedConfig::threads`]).
    pub threads: Option<usize>,
    /// Publish sequence number (snapshots published so far).
    pub sequence: u64,
    /// Coordinator epoch (global re-setups so far).
    pub epoch: u64,
    /// Coordinator state version.
    pub version: u64,
    /// Operations routed through the coordinator so far.
    pub updates_applied: usize,
    /// Boundary deletions converted into re-link edges so far.
    pub boundary_relinks: u64,
    /// Boundary weight baseline of the current epoch (drift denominator).
    pub boundary_epoch_weight: f64,
    /// Boundary weight deleted in the current epoch (drift numerator).
    pub boundary_deleted_weight: f64,
    /// Lifetime operations applied per shard.
    pub per_shard_ops: Vec<u64>,
}
