//! **inGRASS** — incremental graph spectral sparsification via
//! low-resistance-diameter decomposition (Aghdaei & Feng, DAC 2024).
//!
//! Given an initial graph `G(0)` and its spectral sparsifier `H(0)`,
//! inGRASS maintains the sparsifier under streams of edge insertions in
//! `O(log N)` time per edge instead of re-running sparsification from
//! scratch:
//!
//! * **Setup phase** ([`InGrassEngine::setup`], once, `O(N log N)`):
//!   1. estimate the effective resistance of every sparsifier edge with a
//!      solve-free Krylov embedding (`ingrass-resistance`, paper eq. (3));
//!   2. run the multilevel **low-resistance-diameter (LRD) decomposition**
//!      ([`LrdHierarchy`]) — contract low-resistance edges into clusters
//!      with geometrically growing resistance-diameter budgets; the
//!      per-level cluster indices are the `O(log N)`-dimensional node
//!      embedding of paper Fig. 2;
//!   3. index which sparsifier edge connects every cluster pair at every
//!      level ([`ClusterConnectivity`]).
//! * **Update phase** ([`InGrassEngine::apply_batch`], `O(log N)` per
//!   insertion; deletions add an early-exit connectivity probe that is
//!   local unless the edge was a bridge): every mutation flows through
//!   the operation log as an
//!   [`UpdateOp`]. Insertions follow the paper — estimate the edge's
//!   spectral distortion `w·R̂` from the hierarchy, process in decreasing
//!   distortion order, and at the *filtering level* chosen from the target
//!   condition number either **include** the edge, **merge** its weight
//!   onto the existing edge between the two clusters, or **redistribute**
//!   its weight inside the cluster (paper Fig. 3). Deletions and reweights
//!   (beyond the paper) update the sparsifier in place, re-link bridge
//!   deletions, and feed the [`UpdateLedger`]'s drift tracker, which
//!   re-runs setup automatically once the configured [`DriftPolicy`] is
//!   crossed. [`InGrassEngine::insert_batch`] remains as the insert-only
//!   compatibility wrapper.
//! * **Serving** ([`SnapshotEngine`], beyond the paper): a single-writer /
//!   many-readers split over the engine. Each state-changing batch
//!   publishes an immutable, epoch-tagged [`SparsifierSnapshot`]
//!   (`Arc`-shared sparsifier + Laplacian CSR + grounded Cholesky factor +
//!   resistance summary) that any number of reader threads solve and query
//!   against while the writer keeps mutating — see the
//!   [`snapshot`](SnapshotEngine) module docs for the concurrency model.
//!
//! # Quickstart
//!
//! ```
//! use ingrass::{InGrassEngine, IngrassError, SetupConfig, UpdateConfig};
//! use ingrass_baselines::GrassSparsifier;
//! use ingrass_gen::{grid_2d, WeightModel};
//!
//! # fn main() -> Result<(), IngrassError> {
//! // The original graph and its initial sparsifier.
//! let g0 = grid_2d(16, 16, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 1);
//! let h0 = GrassSparsifier::default().by_offtree_density(&g0, 0.10)?;
//!
//! // One-time setup: resistance embedding + LRD decomposition.
//! let mut engine = InGrassEngine::setup(&h0.graph, &SetupConfig::default())?;
//!
//! // Stream in new edges; the engine updates the sparsifier in place.
//! let report = engine.insert_batch(
//!     &[(0, 255, 1.0), (3, 40, 0.8)],
//!     &UpdateConfig { target_condition: 64.0, ..Default::default() },
//! )?;
//! assert_eq!(report.batch_size, 2);
//! let h1 = engine.sparsifier_graph();
//! assert!(h1.num_edges() >= h0.graph.num_edges());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod config;
mod connectivity;
mod engine;
mod error;
mod ledger;
mod lrd;
mod ordering;
mod precond;
mod report;
mod shard;
mod snapshot;
pub mod state;

pub use config::{DriftPolicy, ResistanceBackend, SetupConfig, UpdateConfig};
pub use connectivity::ClusterConnectivity;
pub use engine::InGrassEngine;
pub use error::{InGrassError, IngrassError};
pub use ledger::{
    replay_ops, DriftTracker, ResetupReason, StalenessTracker, UpdateLedger, UpdateOp,
};
pub use lrd::{LrdHierarchy, LrdLevel};
pub use ordering::lrd_nested_dissection_order;
pub use precond::SparsifierPrecond;
pub use report::{EdgeOutcome, PhaseTimer, SetupReport, UpdateReport};
pub use shard::{
    BoundaryGraph, ShardRouting, ShardedBatchReport, ShardedConfig, ShardedEngine, StitchedPrecond,
};
pub use snapshot::{
    BatchPublishReport, FactorPolicy, PublishReport, ResistanceSummary, SnapshotEngine,
    SnapshotPrecond, SnapshotReader, SparsifierSnapshot,
};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, InGrassError>;
