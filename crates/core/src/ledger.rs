//! The operation log every sparsifier mutation flows through.
//!
//! inGRASS as published is insert-only: the setup phase is a hard-coded
//! lifecycle boundary and the update phase only ever grows the sparsifier.
//! This module turns that split into a *policy*: all mutations are expressed
//! as [`UpdateOp`]s, applied through [`crate::InGrassEngine::apply_batch`],
//! and accounted in an [`UpdateLedger`] whose drift tracker decides — via
//! the configured [`crate::DriftPolicy`] — when the cached LRD embedding has
//! gone stale enough that a re-setup pays for itself.

use crate::lrd::LrdHierarchy;
use ingrass_graph::NodeId;
use std::fmt;

/// One mutation of the underlying graph, streamed to the engine.
///
/// Node indices refer to the sparsifier's node space (nodes are fixed; the
/// engine neither adds nor removes vertices).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UpdateOp {
    /// A new edge `{u, v}` with weight `weight` entered the graph.
    Insert {
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
        /// Positive finite edge weight.
        weight: f64,
    },
    /// The edge `{u, v}` left the graph.
    Delete {
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
    },
    /// The edge `{u, v}` changed weight to `weight` (absolute, not a delta).
    Reweight {
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
        /// New positive finite edge weight.
        weight: f64,
    },
}

impl UpdateOp {
    /// The operation's endpoints `(u, v)`.
    pub fn endpoints(&self) -> (usize, usize) {
        match *self {
            UpdateOp::Insert { u, v, .. }
            | UpdateOp::Delete { u, v }
            | UpdateOp::Reweight { u, v, .. } => (u, v),
        }
    }

    /// The weight payload, if the variant carries one.
    pub fn weight(&self) -> Option<f64> {
        match *self {
            UpdateOp::Insert { weight, .. } | UpdateOp::Reweight { weight, .. } => Some(weight),
            UpdateOp::Delete { .. } => None,
        }
    }
}

/// Replays update operations onto a plain [`ingrass_graph::DynGraph`] —
/// the ground-truth mirror of a stream: inserts add (or merge onto) the
/// edge, deletes and reweights of edges the graph does not carry are
/// silently skipped (the vacuous-op contract, matching the churn
/// generator's whole-stream `apply_to`). This is how benches, examples,
/// and tests keep the *original* graph in lockstep with the ops they feed
/// [`crate::InGrassEngine::apply_batch`].
///
/// # Errors
/// [`crate::InGrassError::Graph`] if an insert is invalid for the graph
/// (out-of-bounds endpoint, self-loop, non-positive weight).
pub fn replay_ops(graph: &mut ingrass_graph::DynGraph, ops: &[UpdateOp]) -> crate::Result<()> {
    for op in ops {
        match *op {
            UpdateOp::Insert { u, v, weight } => {
                graph.add_edge(u.into(), v.into(), weight)?;
            }
            UpdateOp::Delete { u, v } => {
                graph.remove_edge(u.into(), v.into());
            }
            UpdateOp::Reweight { u, v, weight } => {
                if let Some(id) = graph.edge_id(u.into(), v.into()) {
                    graph.set_weight(id, weight)?;
                }
            }
        }
    }
    Ok(())
}

/// Why the drift tracker asked for a re-setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResetupReason {
    /// Deleted weight exceeded the configured fraction of the sparsifier
    /// weight at the last (re)setup.
    DeletedWeight,
    /// Accumulated churn distortion exceeded the leverage budget.
    Distortion,
    /// A single cluster absorbed more stale operations than allowed.
    ClusterStaleness,
}

impl fmt::Display for ResetupReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResetupReason::DeletedWeight => write!(f, "deleted-weight fraction"),
            ResetupReason::Distortion => write!(f, "accumulated distortion"),
            ResetupReason::ClusterStaleness => write!(f, "cluster staleness"),
        }
    }
}

/// Accumulated spectral drift since the last (re)setup.
///
/// Two signals: the *weight* the sparsifier has lost (deletions and
/// down-weights, as a fraction of the weight at setup) and the *leverage*
/// the churn has touched — `Σ w·R̂` over deleted/reweighted edges, measured
/// against the total leverage `Σ_{e∈H} w(e)·R(e) ≈ n−1` of the whole
/// sparsifier. Both are cheap running sums; neither needs a solve.
#[derive(Debug, Clone)]
pub struct DriftTracker {
    initial_weight: f64,
    nodes: usize,
    deleted_weight: f64,
    accumulated_distortion: f64,
    stale_ops: usize,
}

impl DriftTracker {
    fn new(initial_weight: f64, nodes: usize) -> Self {
        DriftTracker {
            initial_weight: initial_weight.max(0.0),
            nodes,
            deleted_weight: 0.0,
            accumulated_distortion: 0.0,
            stale_ops: 0,
        }
    }

    fn record(&mut self, removed_weight: f64, rhat: f64) {
        self.deleted_weight += removed_weight.max(0.0);
        if rhat.is_finite() {
            self.accumulated_distortion += removed_weight.max(0.0) * rhat;
        }
        self.stale_ops += 1;
    }

    /// Weight removed since setup as a fraction of the weight at setup.
    ///
    /// Guarded against a degenerate baseline: an engine set up from a
    /// zero-weight/empty sparsifier (a single-node graph) has
    /// `initial_weight == 0`, and an unguarded division would yield `NaN`
    /// (or, with a clamped denominator, an absurdly huge fraction) — either
    /// of which breaks `should_resetup` comparisons. With nothing deleted
    /// the fraction is 0; weight somehow removed from a zero-weight start
    /// counts as total loss (1.0 per unit, saturating the policy).
    pub fn deleted_weight_fraction(&self) -> f64 {
        if self.deleted_weight <= 0.0 {
            0.0
        } else if self.initial_weight <= 0.0 {
            f64::MAX
        } else {
            self.deleted_weight / self.initial_weight
        }
    }

    /// Accumulated `Σ w·R̂` over churn operations since setup.
    pub fn accumulated_distortion(&self) -> f64 {
        self.accumulated_distortion
    }

    /// Accumulated distortion relative to the sparsifier's total leverage
    /// (`Σ_{e∈H} w·R = n−1` with exact resistances).
    pub fn distortion_fraction(&self) -> f64 {
        self.accumulated_distortion / ((self.nodes.saturating_sub(1)).max(1) as f64)
    }

    /// Deletions/reweights recorded since setup.
    pub fn stale_ops(&self) -> usize {
        self.stale_ops
    }
}

/// Per-cluster staleness counters at every LRD level.
///
/// A delete or reweight of `{u, v}` invalidates the resistance-diameter
/// bound of the *first* cluster containing both endpoints — that diameter
/// was certified by paths that may have used the churned edge. The tracker
/// counts invalidations per cluster; the maximum feeds the drift policy.
#[derive(Debug, Clone)]
pub struct StalenessTracker {
    counts: Vec<Vec<u32>>,
    max: u32,
}

impl StalenessTracker {
    fn new(hierarchy: &LrdHierarchy) -> Self {
        StalenessTracker {
            counts: hierarchy
                .levels()
                .iter()
                .map(|l| vec![0u32; l.num_clusters])
                .collect(),
            max: 0,
        }
    }

    fn touch(&mut self, hierarchy: &LrdHierarchy, u: NodeId, v: NodeId) {
        if let Some(level) = hierarchy.first_common_level(u, v) {
            let c = hierarchy.level(level).cluster_of[u.index()] as usize;
            let slot = &mut self.counts[level][c];
            *slot = slot.saturating_add(1);
            self.max = self.max.max(*slot);
        }
    }

    /// The largest per-cluster staleness count.
    pub fn max_staleness(&self) -> u32 {
        self.max
    }

    /// Staleness count of cluster `c` at `level`.
    ///
    /// # Panics
    /// Panics if `level` or `c` is out of bounds.
    pub fn staleness(&self, level: usize, c: u32) -> u32 {
        self.counts[level][c as usize]
    }
}

/// The ledger all mutations flow through: operation counters, the drift
/// tracker, and the per-cluster staleness counters, reset at every
/// (re)setup epoch.
#[derive(Debug, Clone)]
pub struct UpdateLedger {
    inserts: usize,
    deletes: usize,
    reweights: usize,
    relinks: usize,
    vacuous: usize,
    resetups: usize,
    drift: DriftTracker,
    staleness: StalenessTracker,
}

impl UpdateLedger {
    pub(crate) fn new(initial_weight: f64, hierarchy: &LrdHierarchy) -> Self {
        UpdateLedger {
            inserts: 0,
            deletes: 0,
            reweights: 0,
            relinks: 0,
            vacuous: 0,
            resetups: 0,
            drift: DriftTracker::new(initial_weight, hierarchy.num_nodes()),
            staleness: StalenessTracker::new(hierarchy),
        }
    }

    /// Starts a new epoch after a re-setup: drift and staleness reset, the
    /// lifetime operation counters and the re-setup count survive.
    pub(crate) fn begin_epoch(&mut self, initial_weight: f64, hierarchy: &LrdHierarchy) {
        self.resetups += 1;
        self.drift = DriftTracker::new(initial_weight, hierarchy.num_nodes());
        self.staleness = StalenessTracker::new(hierarchy);
    }

    pub(crate) fn note_insert(&mut self) {
        self.inserts += 1;
    }

    pub(crate) fn note_delete(
        &mut self,
        hierarchy: &LrdHierarchy,
        u: NodeId,
        v: NodeId,
        removed_weight: f64,
        rhat: f64,
        relinked: bool,
    ) {
        self.deletes += 1;
        if relinked {
            self.relinks += 1;
        }
        self.drift.record(removed_weight, rhat);
        self.staleness.touch(hierarchy, u, v);
    }

    pub(crate) fn note_reweight(
        &mut self,
        hierarchy: &LrdHierarchy,
        u: NodeId,
        v: NodeId,
        removed_weight: f64,
        rhat: f64,
    ) {
        self.reweights += 1;
        self.drift.record(removed_weight, rhat);
        self.staleness.touch(hierarchy, u, v);
    }

    pub(crate) fn note_vacuous(&mut self, hierarchy: &LrdHierarchy, u: NodeId, v: NodeId) {
        self.vacuous += 1;
        // The underlying graph changed in a way the sparsifier never
        // represented; the containing cluster's bound is still weakened.
        self.drift.stale_ops += 1;
        self.staleness.touch(hierarchy, u, v);
    }

    /// Evaluates the drift policy; `Some(reason)` means a re-setup is due.
    pub(crate) fn should_resetup(&self, policy: &crate::DriftPolicy) -> Option<ResetupReason> {
        if !policy.auto_resetup {
            return None;
        }
        if self.drift.deleted_weight_fraction() > policy.max_deleted_weight_fraction {
            return Some(ResetupReason::DeletedWeight);
        }
        if self.drift.distortion_fraction() > policy.max_distortion_fraction {
            return Some(ResetupReason::Distortion);
        }
        if self.staleness.max_staleness() > policy.max_cluster_staleness {
            return Some(ResetupReason::ClusterStaleness);
        }
        None
    }

    /// Insert operations applied over the engine's lifetime.
    pub fn inserts(&self) -> usize {
        self.inserts
    }

    /// Delete operations applied over the engine's lifetime.
    pub fn deletes(&self) -> usize {
        self.deletes
    }

    /// Reweight operations applied over the engine's lifetime.
    pub fn reweights(&self) -> usize {
        self.reweights
    }

    /// Bridge deletions converted into re-links (subset of `deletes`).
    pub fn relinks(&self) -> usize {
        self.relinks
    }

    /// Deletes/reweights of edges the sparsifier never carried.
    pub fn vacuous(&self) -> usize {
        self.vacuous
    }

    /// Automatic re-setups performed so far.
    pub fn resetups(&self) -> usize {
        self.resetups
    }

    /// The current epoch's drift tracker.
    pub fn drift(&self) -> &DriftTracker {
        &self.drift
    }

    /// The current epoch's staleness counters.
    pub fn staleness(&self) -> &StalenessTracker {
        &self.staleness
    }

    /// Exports the exact ledger state for persistence — including the
    /// drift tracker's running sums, which decide *future* re-setup
    /// points and therefore must survive a restart bit-for-bit.
    pub(crate) fn export_state(&self) -> crate::state::LedgerState {
        crate::state::LedgerState {
            inserts: self.inserts,
            deletes: self.deletes,
            reweights: self.reweights,
            relinks: self.relinks,
            vacuous: self.vacuous,
            resetups: self.resetups,
            drift_initial_weight: self.drift.initial_weight,
            drift_nodes: self.drift.nodes,
            drift_deleted_weight: self.drift.deleted_weight,
            drift_accumulated_distortion: self.drift.accumulated_distortion,
            drift_stale_ops: self.drift.stale_ops,
            staleness_counts: self.staleness.counts.clone(),
            staleness_max: self.staleness.max,
        }
    }

    /// Rebuilds a ledger from persisted state (the inverse of
    /// [`UpdateLedger::export_state`]).
    pub(crate) fn from_state(state: &crate::state::LedgerState) -> Self {
        UpdateLedger {
            inserts: state.inserts,
            deletes: state.deletes,
            reweights: state.reweights,
            relinks: state.relinks,
            vacuous: state.vacuous,
            resetups: state.resetups,
            drift: DriftTracker {
                initial_weight: state.drift_initial_weight,
                nodes: state.drift_nodes,
                deleted_weight: state.drift_deleted_weight,
                accumulated_distortion: state.drift_accumulated_distortion,
                stale_ops: state.drift_stale_ops,
            },
            staleness: StalenessTracker {
                counts: state.staleness_counts.clone(),
                max: state.staleness_max,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DriftPolicy;
    use ingrass_graph::Graph;

    fn tiny_hierarchy() -> LrdHierarchy {
        // A 4-path with unit resistances: levels singleton → coarser → root.
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let r = vec![1.0; 3];
        LrdHierarchy::build(&g, &r, Some(1.0), 4.0, 64).unwrap()
    }

    #[test]
    fn drift_fractions_accumulate() {
        let h = tiny_hierarchy();
        let mut ledger = UpdateLedger::new(10.0, &h);
        ledger.note_delete(&h, 0.into(), 1.into(), 2.0, 1.5, false);
        ledger.note_reweight(&h, 1.into(), 2.into(), 1.0, 2.0);
        assert_eq!(ledger.deletes(), 1);
        assert_eq!(ledger.reweights(), 1);
        assert!((ledger.drift().deleted_weight_fraction() - 0.3).abs() < 1e-12);
        assert!((ledger.drift().accumulated_distortion() - 5.0).abs() < 1e-12);
        assert_eq!(ledger.drift().stale_ops(), 2);
    }

    #[test]
    fn zero_weight_baseline_never_yields_nan_and_resetup_stays_decidable() {
        // Regression: dividing by an (effectively) zero initial weight made
        // the deleted-weight fraction NaN/absurd, so `should_resetup`
        // either never fired or fired on the first vacuous deletion.
        let h = tiny_hierarchy();
        let ledger = UpdateLedger::new(0.0, &h);
        let f = ledger.drift().deleted_weight_fraction();
        assert_eq!(f, 0.0, "nothing deleted: fraction must be exactly 0");
        assert!(f.is_finite());
        assert!(ledger.should_resetup(&DriftPolicy::default()).is_none());

        // Weight actually removed against a zero baseline counts as total
        // loss and saturates the policy (finite, not NaN).
        let mut ledger = UpdateLedger::new(0.0, &h);
        ledger.note_delete(&h, 0.into(), 1.into(), 0.5, 1.0, false);
        let f = ledger.drift().deleted_weight_fraction();
        assert!(!f.is_nan() && f > 1.0);
        assert_eq!(
            ledger.should_resetup(&DriftPolicy::default()),
            Some(ResetupReason::DeletedWeight)
        );
    }

    #[test]
    fn staleness_counts_first_common_cluster() {
        let h = tiny_hierarchy();
        let mut ledger = UpdateLedger::new(1.0, &h);
        assert_eq!(ledger.staleness().max_staleness(), 0);
        ledger.note_delete(&h, 0.into(), 1.into(), 0.1, 1.0, false);
        ledger.note_delete(&h, 0.into(), 1.into(), 0.1, 1.0, false);
        assert_eq!(ledger.staleness().max_staleness(), 2);
        let level = h.first_common_level(0.into(), 1.into()).unwrap();
        let c = h.level(level).cluster_of[0];
        assert_eq!(ledger.staleness().staleness(level, c), 2);
    }

    #[test]
    fn policy_thresholds_trigger_in_order() {
        let h = tiny_hierarchy();
        let mut ledger = UpdateLedger::new(1.0, &h);
        let policy = DriftPolicy {
            max_deleted_weight_fraction: 0.5,
            max_distortion_fraction: 1e9,
            max_cluster_staleness: u32::MAX,
            auto_resetup: true,
        };
        assert_eq!(ledger.should_resetup(&policy), None);
        ledger.note_delete(&h, 0.into(), 1.into(), 0.6, 1.0, false);
        assert_eq!(
            ledger.should_resetup(&policy),
            Some(ResetupReason::DeletedWeight)
        );
        // Master switch wins over every threshold.
        let off = DriftPolicy {
            auto_resetup: false,
            ..policy
        };
        assert_eq!(ledger.should_resetup(&off), None);
    }

    #[test]
    fn epoch_reset_preserves_lifetime_counters() {
        let h = tiny_hierarchy();
        let mut ledger = UpdateLedger::new(1.0, &h);
        ledger.note_insert();
        ledger.note_delete(&h, 0.into(), 1.into(), 0.5, 1.0, true);
        ledger.note_vacuous(&h, 2.into(), 3.into());
        ledger.begin_epoch(2.0, &h);
        assert_eq!(ledger.resetups(), 1);
        assert_eq!(ledger.inserts(), 1);
        assert_eq!(ledger.deletes(), 1);
        assert_eq!(ledger.relinks(), 1);
        assert_eq!(ledger.vacuous(), 1);
        assert_eq!(ledger.drift().stale_ops(), 0);
        assert_eq!(ledger.staleness().max_staleness(), 0);
    }

    #[test]
    fn update_op_accessors() {
        let ops = [
            UpdateOp::Insert {
                u: 1,
                v: 2,
                weight: 0.5,
            },
            UpdateOp::Delete { u: 3, v: 4 },
            UpdateOp::Reweight {
                u: 5,
                v: 6,
                weight: 2.0,
            },
        ];
        assert_eq!(ops[0].endpoints(), (1, 2));
        assert_eq!(ops[1].endpoints(), (3, 4));
        assert_eq!(ops[2].endpoints(), (5, 6));
        assert_eq!(ops[0].weight(), Some(0.5));
        assert_eq!(ops[1].weight(), None);
        assert_eq!(ops[2].weight(), Some(2.0));
    }
}
