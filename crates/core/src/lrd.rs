//! Multilevel low-resistance-diameter (LRD) decomposition — the heart of
//! the inGRASS setup phase (paper Section III-B-2, Fig. 2).

use crate::error::InGrassError;
use crate::Result;
use ingrass_graph::{DisjointSets, Graph, NodeId};

/// One level of the LRD hierarchy: a partition of the nodes into clusters
/// whose effective-resistance diameter (upper bound) stays within the
/// level's budget.
#[derive(Debug, Clone, PartialEq)]
pub struct LrdLevel {
    /// Cluster index of every node (dense labels `0..num_clusters`).
    pub cluster_of: Vec<u32>,
    /// Resistance-diameter upper bound per cluster.
    pub diameter: Vec<f64>,
    /// Node count per cluster.
    pub size: Vec<u32>,
    /// Number of clusters at this level.
    pub num_clusters: usize,
    /// Diameter budget `δ_ℓ` that formed this level (0 for level 0).
    pub threshold: f64,
}

impl LrdLevel {
    /// The largest cluster size at this level.
    pub fn max_cluster_size(&self) -> usize {
        self.size.iter().copied().max().unwrap_or(0) as usize
    }
}

/// The multilevel LRD decomposition of a sparsifier.
///
/// Level 0 is the singleton partition; each subsequent level contracts
/// inter-cluster edges in increasing estimated-resistance order as long as
/// the merged cluster's diameter bound `diam(A) + diam(B) + r(e)` stays
/// within the level budget `δ_ℓ = δ₀·γ^{ℓ−1}`. Parallel inter-cluster edges
/// combine by the parallel-conductance law (`1/r = Σ 1/rᵢ`).
///
/// The per-level cluster indices of a node form its `O(log N)`-dimensional
/// embedding vector ([`LrdHierarchy::embedding_vector`], paper Fig. 2); the
/// resistance between two nodes is bounded by the diameter of the first
/// cluster that contains both ([`LrdHierarchy::resistance_bound`]).
#[derive(Debug, Clone)]
pub struct LrdHierarchy {
    levels: Vec<LrdLevel>,
}

impl LrdHierarchy {
    /// Rebuilds a hierarchy from persisted levels (the persistence layer's
    /// inverse of [`LrdHierarchy::levels`]).
    ///
    /// # Errors
    /// [`InGrassError::BadSparsifier`] for an empty level list;
    /// [`InGrassError::InvalidConfig`] if the levels disagree on node
    /// count or a level's arrays disagree with its cluster count.
    pub(crate) fn from_levels(levels: Vec<LrdLevel>) -> Result<Self> {
        let Some(first) = levels.first() else {
            return Err(InGrassError::BadSparsifier(
                "hierarchy has no levels".into(),
            ));
        };
        let n = first.cluster_of.len();
        for (i, lvl) in levels.iter().enumerate() {
            if lvl.cluster_of.len() != n {
                return Err(InGrassError::InvalidConfig(format!(
                    "level {i} labels {} nodes, level 0 labels {n}",
                    lvl.cluster_of.len()
                )));
            }
            if lvl.diameter.len() != lvl.num_clusters || lvl.size.len() != lvl.num_clusters {
                return Err(InGrassError::InvalidConfig(format!(
                    "level {i} arrays disagree with its {} clusters",
                    lvl.num_clusters
                )));
            }
            if lvl
                .cluster_of
                .iter()
                .any(|&c| c as usize >= lvl.num_clusters)
            {
                return Err(InGrassError::InvalidConfig(format!(
                    "level {i} has a cluster label out of range"
                )));
            }
        }
        Ok(LrdHierarchy { levels })
    }

    /// Builds the hierarchy for `h0` given estimated per-edge resistances
    /// (indexed by `h0`'s edge ids).
    ///
    /// `initial_diameter = None` defaults to 4× the median edge resistance;
    /// `growth` is the per-level budget multiplier `γ > 1`.
    ///
    /// # Errors
    /// [`InGrassError::BadSparsifier`] for an empty graph;
    /// [`InGrassError::InvalidConfig`] for a non-finite growth ≤ 1 or
    /// resistance array of the wrong length.
    pub fn build(
        h0: &Graph,
        edge_resistance: &[f64],
        initial_diameter: Option<f64>,
        growth: f64,
        max_levels: usize,
    ) -> Result<Self> {
        let n = h0.num_nodes();
        if n == 0 {
            return Err(InGrassError::BadSparsifier("graph has no nodes".into()));
        }
        if edge_resistance.len() != h0.num_edges() {
            return Err(InGrassError::InvalidConfig(format!(
                "edge resistance array has {} entries for {} edges",
                edge_resistance.len(),
                h0.num_edges()
            )));
        }
        if growth <= 1.0 || !growth.is_finite() {
            return Err(InGrassError::InvalidConfig(format!(
                "diameter growth must be a finite number > 1, got {growth}"
            )));
        }

        // Clip estimates with the provable per-edge upper bound R ≤ 1/w —
        // any estimate above the edge's own resistance is certainly wrong.
        let mut redge: Vec<f64> = edge_resistance
            .iter()
            .zip(h0.edges())
            .map(|(&r, e)| r.max(1e-15).min(1.0 / e.weight))
            .collect();
        // Degenerate estimators (all zeros) still need an ordering.
        for (r, e) in redge.iter_mut().zip(h0.edges()) {
            if !r.is_finite() {
                *r = 1.0 / e.weight;
            }
        }

        let delta0 = initial_diameter.unwrap_or_else(|| {
            let mut sorted = redge.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            let median = sorted.get(sorted.len() / 2).copied().unwrap_or(1.0);
            4.0 * median.max(1e-12)
        });

        // Level 0: singletons.
        let mut levels = vec![LrdLevel {
            cluster_of: (0..n as u32).collect(),
            diameter: vec![0.0; n],
            size: vec![1; n],
            num_clusters: n,
            threshold: 0.0,
        }];

        // Working inter-cluster multigraph: (cluster_u, cluster_v, r).
        let mut inter: Vec<(u32, u32, f64)> = h0
            .edges()
            .iter()
            .enumerate()
            .map(|(i, e)| (e.u.raw(), e.v.raw(), redge[i]))
            .collect();
        let mut cluster_of: Vec<u32> = (0..n as u32).collect();
        let mut diameter: Vec<f64> = vec![0.0; n];
        let mut num_clusters = n;
        let mut delta = delta0;

        while levels.len() < max_levels && num_clusters > 1 && !inter.is_empty() {
            // Contract edges in increasing resistance order under the
            // diameter budget.
            inter.sort_by(|a, b| a.2.total_cmp(&b.2));
            let mut dsu = DisjointSets::new(num_clusters);
            let mut diam = diameter.clone();
            for &(a, b, r) in &inter {
                let (ra, rb) = (dsu.find(a as usize), dsu.find(b as usize));
                if ra == rb {
                    continue;
                }
                let merged = diam[ra] + diam[rb] + r;
                if merged <= delta {
                    dsu.union(ra, rb);
                    let root = dsu.find(ra);
                    diam[root] = merged;
                }
            }
            let labels = dsu.labels();
            let new_count = dsu.num_sets();
            if new_count == num_clusters {
                // Nothing merged at this budget — grow and retry (no level
                // recorded for a no-op).
                delta *= growth;
                // Safety: if the budget overflows to infinity something is
                // pathological; bail out with the current hierarchy.
                if !delta.is_finite() {
                    break;
                }
                continue;
            }

            // New per-cluster diameter and size.
            let mut new_diam = vec![0.0f64; new_count];
            let mut new_size = vec![0u32; new_count];
            for old in 0..num_clusters {
                let nl = labels[old] as usize;
                new_diam[nl] = new_diam[nl].max(diam[dsu.find(old)]);
            }
            // Node-level assignment.
            let mut node_cluster = vec![0u32; n];
            for u in 0..n {
                let nl = labels[cluster_of[u] as usize];
                node_cluster[u] = nl;
                new_size[nl as usize] += 1;
            }

            // Contract the inter-cluster multigraph, combining parallel
            // edges in parallel (conductances add).
            let mut acc: std::collections::HashMap<(u32, u32), f64> =
                std::collections::HashMap::with_capacity(inter.len());
            for &(a, b, r) in &inter {
                let (mut ca, mut cb) = (labels[a as usize], labels[b as usize]);
                if ca == cb {
                    continue;
                }
                if ca > cb {
                    std::mem::swap(&mut ca, &mut cb);
                }
                *acc.entry((ca, cb)).or_insert(0.0) += 1.0 / r;
            }
            inter = acc
                .into_iter()
                .map(|((a, b), cond)| (a, b, 1.0 / cond))
                .collect();
            inter.sort_unstable_by_key(|x| (x.0, x.1));

            cluster_of = node_cluster.clone();
            diameter = new_diam.clone();
            num_clusters = new_count;
            levels.push(LrdLevel {
                cluster_of: node_cluster,
                diameter: new_diam,
                size: new_size,
                num_clusters: new_count,
                threshold: delta,
            });
            delta *= growth;
        }

        Ok(LrdHierarchy { levels })
    }

    /// Number of levels (including the singleton level 0).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The levels, finest (singletons) first.
    pub fn levels(&self) -> &[LrdLevel] {
        &self.levels
    }

    /// A single level.
    ///
    /// # Panics
    /// Panics if `level` is out of bounds.
    pub fn level(&self, level: usize) -> &LrdLevel {
        &self.levels[level]
    }

    /// Number of nodes covered by the hierarchy.
    pub fn num_nodes(&self) -> usize {
        self.levels[0].cluster_of.len()
    }

    /// The node's embedding vector: its cluster index at every level
    /// (paper Fig. 2).
    pub fn embedding_vector(&self, u: NodeId) -> Vec<u32> {
        self.levels
            .iter()
            .map(|l| l.cluster_of[u.index()])
            .collect()
    }

    /// The first (finest) level at which `u` and `v` share a cluster, or
    /// `None` if they never merge (disconnected sparsifier).
    pub fn first_common_level(&self, u: NodeId, v: NodeId) -> Option<usize> {
        self.levels
            .iter()
            .position(|l| l.cluster_of[u.index()] == l.cluster_of[v.index()])
    }

    /// Upper bound on the effective resistance between `u` and `v`: the
    /// diameter of the first cluster containing both. Returns `f64::MAX`
    /// if they never share a cluster.
    pub fn resistance_bound(&self, u: NodeId, v: NodeId) -> f64 {
        match self.first_common_level(u, v) {
            Some(l) => {
                let lvl = &self.levels[l];
                let d = lvl.diameter[lvl.cluster_of[u.index()] as usize];
                // Two distinct nodes are at least one edge apart; level-0
                // "diameter 0" only applies to u == v.
                if u == v {
                    0.0
                } else {
                    d.max(f64::MIN_POSITIVE)
                }
            }
            None => f64::MAX,
        }
    }

    /// The *filtering level* for a target condition number `C`: the deepest
    /// level whose largest cluster holds at most `C/2` nodes (paper Section
    /// III-C-2). Level 0 always qualifies.
    pub fn filtering_level(&self, target_condition: f64) -> usize {
        let cap = (target_condition / 2.0).max(1.0);
        let mut best = 0usize;
        for (i, l) in self.levels.iter().enumerate() {
            if (l.max_cluster_size() as f64) <= cap {
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ingrass_gen::{grid_2d, WeightModel};
    use ingrass_resistance::ExactResistance;
    use ingrass_resistance::ResistanceEstimator;
    use proptest::prelude::*;

    fn build_default(g: &Graph) -> LrdHierarchy {
        let r: Vec<f64> = g.edges().iter().map(|e| 1.0 / e.weight).collect();
        LrdHierarchy::build(g, &r, None, 4.0, 64).unwrap()
    }

    #[test]
    fn hierarchy_terminates_in_one_cluster_on_connected_graphs() {
        let g = grid_2d(8, 8, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 1);
        let h = build_default(&g);
        assert!(h.num_levels() >= 2);
        assert_eq!(h.levels().last().unwrap().num_clusters, 1);
        // O(log N) levels: generously bounded.
        assert!(h.num_levels() <= 20, "levels {}", h.num_levels());
    }

    #[test]
    fn levels_partition_and_nest() {
        let g = grid_2d(10, 6, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 2);
        let h = build_default(&g);
        let n = g.num_nodes();
        for l in h.levels() {
            // Partition: labels dense, sizes consistent.
            let mut count = vec![0u32; l.num_clusters];
            for &c in &l.cluster_of {
                assert!((c as usize) < l.num_clusters);
                count[c as usize] += 1;
            }
            assert_eq!(count, l.size);
            assert_eq!(count.iter().sum::<u32>() as usize, n);
        }
        // Nesting: same cluster at level ℓ ⇒ same cluster at ℓ+1.
        for w in h.levels().windows(2) {
            let (fine, coarse) = (&w[0], &w[1]);
            let mut map = vec![u32::MAX; fine.num_clusters];
            for u in 0..n {
                let (fc, cc) = (fine.cluster_of[u] as usize, coarse.cluster_of[u]);
                if map[fc] == u32::MAX {
                    map[fc] = cc;
                } else {
                    assert_eq!(map[fc], cc, "cluster split across coarse level");
                }
            }
        }
        // Cluster counts strictly decrease across recorded levels.
        for w in h.levels().windows(2) {
            assert!(w[1].num_clusters < w[0].num_clusters);
        }
    }

    #[test]
    fn diameters_respect_thresholds() {
        let g = grid_2d(12, 12, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 3);
        let h = build_default(&g);
        for l in h.levels().iter().skip(1) {
            for (c, &d) in l.diameter.iter().enumerate() {
                assert!(
                    d <= l.threshold + 1e-12,
                    "cluster {c} diameter {d} over budget {}",
                    l.threshold
                );
            }
        }
    }

    #[test]
    fn resistance_bound_upper_bounds_exact_resistance_with_exact_input() {
        // With exact per-edge resistances, the diameter bound must sit at
        // or above the true effective resistance (path argument + Rayleigh
        // monotonicity).
        let g = grid_2d(6, 6, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 4);
        let exact = ExactResistance::dense(&g).unwrap();
        let r: Vec<f64> = exact.edge_resistances(&g);
        let h = LrdHierarchy::build(&g, &r, None, 4.0, 64).unwrap();
        for u in 0..36usize {
            for v in (u + 1)..36 {
                let bound = h.resistance_bound(u.into(), v.into());
                let truth = exact.resistance(u.into(), v.into());
                assert!(
                    bound >= truth * 0.999,
                    "bound {bound} < exact {truth} for ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn embedding_vector_matches_levels() {
        let g = grid_2d(5, 5, WeightModel::Unit, 5);
        let h = build_default(&g);
        let v = h.embedding_vector(7.into());
        assert_eq!(v.len(), h.num_levels());
        for (l, &c) in v.iter().enumerate() {
            assert_eq!(c, h.level(l).cluster_of[7]);
        }
        assert_eq!(v[0], 7); // singleton level: own id
    }

    #[test]
    fn filtering_level_monotone_in_target() {
        let g = grid_2d(10, 10, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 6);
        let h = build_default(&g);
        let mut prev = 0;
        for c in [2.0, 4.0, 8.0, 32.0, 128.0, 1e6] {
            let l = h.filtering_level(c);
            assert!(l >= prev, "filtering level decreased at C={c}");
            prev = l;
        }
        // Huge targets reach the coarsest level; tiny ones stay at 0.
        assert_eq!(h.filtering_level(1e9), h.num_levels() - 1);
        assert_eq!(h.filtering_level(2.0), 0);
    }

    #[test]
    fn rejects_bad_inputs() {
        let g = grid_2d(3, 3, WeightModel::Unit, 0);
        let r = vec![1.0; g.num_edges()];
        assert!(LrdHierarchy::build(&g, &r[..3], None, 4.0, 64).is_err());
        assert!(LrdHierarchy::build(&g, &r, None, 1.0, 64).is_err());
        assert!(LrdHierarchy::build(&g, &r, None, f64::NAN, 64).is_err());
        let empty = Graph::from_edges(0, &[]).unwrap();
        assert!(LrdHierarchy::build(&empty, &[], None, 4.0, 64).is_err());
    }

    #[test]
    fn single_node_graph_has_trivial_hierarchy() {
        let g = Graph::from_edges(1, &[]).unwrap();
        let h = LrdHierarchy::build(&g, &[], None, 4.0, 64).unwrap();
        assert_eq!(h.num_levels(), 1);
        assert_eq!(h.resistance_bound(0.into(), 0.into()), 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_hierarchy_invariants_on_random_connected_graphs(
            extra in proptest::collection::vec((0usize..30, 0usize..30, 0.1f64..10.0), 0..60),
            growth in 1.5f64..8.0,
        ) {
            let mut edges: Vec<(usize, usize, f64)> =
                (0..29).map(|i| (i, i + 1, 1.0 + (i % 5) as f64)).collect();
            edges.extend(extra);
            let g = Graph::from_edges(30, &edges).unwrap();
            let r: Vec<f64> = g.edges().iter().map(|e| 1.0 / e.weight).collect();
            let h = LrdHierarchy::build(&g, &r, None, growth, 64).unwrap();
            // Terminates at one cluster, nested partitions, diameters within
            // budget.
            prop_assert_eq!(h.levels().last().unwrap().num_clusters, 1);
            for l in h.levels().iter().skip(1) {
                for &d in &l.diameter {
                    prop_assert!(d <= l.threshold + 1e-9);
                }
            }
            // resistance_bound is symmetric and zero iff identical nodes.
            let b = h.resistance_bound(3.into(), 17.into());
            prop_assert!((b - h.resistance_bound(17.into(), 3.into())).abs() < 1e-12);
            prop_assert!(b > 0.0);
            prop_assert_eq!(h.resistance_bound(5.into(), 5.into()), 0.0);
        }
    }
}
